package grdf

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestMeasureRoundTrip(t *testing.T) {
	st := store.New()
	node := rdf.IRI("http://e/temp1")
	// List 1's temperature: 21.23 in Fahrenheit.
	NewMeasure(st, node, 21.23, "http://grdf.org/uom/fahrenheit")
	v, uom, err := Measure(st, node)
	if err != nil || v != 21.23 || uom != "http://grdf.org/uom/fahrenheit" {
		t.Errorf("Measure = %g %q %v", v, uom, err)
	}
	if !st.Has(rdf.T(node, rdf.RDFType, Value)) {
		t.Error("measure not typed grdf:Value")
	}
	if _, _, err := Measure(st, rdf.IRI("http://e/none")); err == nil {
		t.Error("missing measure read succeeded")
	}
}

func TestObservations(t *testing.T) {
	st := store.New()
	stream := NewFeature(st, rdf.IRI("http://e/stream"), Feature)
	t1 := time.Date(2008, 4, 7, 9, 0, 0, 0, time.UTC)
	t2 := time.Date(2008, 4, 7, 11, 0, 0, 0, time.UTC)

	o2 := NewObservation(st, rdf.IRI("http://e/obs2"), stream, t2)
	SetObservationValue(st, o2, 7.9, "http://grdf.org/uom/ph")
	o1 := NewObservation(st, rdf.IRI("http://e/obs1"), stream, t1)
	SetObservationValue(st, o1, 6.2, "http://grdf.org/uom/ph")

	// Observation is a Feature subclass: reasoning over the ontology types
	// observations as features, "used as such in a transaction".
	data := st.Snapshot()
	data.AddGraph(Ontology())
	m, _ := owl.Materialize(data)
	if !m.Has(rdf.T(o1, rdf.RDFType, Feature)) {
		t.Error("observation not inferred to be a Feature")
	}

	recs, err := ObservationsOf(st, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if !recs[0].At.Equal(t1) || recs[0].Value != 6.2 || !recs[0].HasVal {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[1].ID != o2 || recs[1].UOM != "http://grdf.org/uom/ph" {
		t.Errorf("second record = %+v", recs[1])
	}
}

func TestEnvelopeWithTimePeriod(t *testing.T) {
	st := store.New()
	site := NewFeature(st, rdf.IRI("http://e/site"), Feature)
	env := geom.EnvelopeOf(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 10, Y: 10})
	from := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2008, 12, 31, 0, 0, 0, 0, time.UTC)

	node, err := SetEnvelopeWithTimePeriod(st, site, env, geom.TX83NCF, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(rdf.T(node, rdf.RDFType, EnvelopeWithTimePeriod)) {
		t.Error("node not typed EnvelopeWithTimePeriod")
	}
	// still decodes as an envelope (EnvelopeWithTimePeriod "may be used
	// whenever GRDF:Envelope is valid")
	g, _, err := DecodeGeometry(st, node)
	if err != nil || g.Envelope() != env {
		t.Errorf("decode = %v %v", g, err)
	}
	gotFrom, gotTo, err := TimePeriodOf(st, node)
	if err != nil || !gotFrom.Equal(from) || !gotTo.Equal(to) {
		t.Errorf("period = %v..%v %v", gotFrom, gotTo, err)
	}

	// List 3 cardinality holds under the checker.
	data := st.Snapshot()
	data.AddGraph(Ontology())
	m, _ := owl.Materialize(data)
	if vs := owl.Check(m); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	// a third time position breaks both the reader and the checker
	extra := rdf.IRI("http://e/extraTime")
	NewTimePosition(st, extra, from)
	st.Add(rdf.T(node, HasTimePosition, extra))
	if _, _, err := TimePeriodOf(st, node); err == nil {
		t.Error("3 time positions accepted by reader")
	}
	data = st.Snapshot()
	data.AddGraph(Ontology())
	m, _ = owl.Materialize(data)
	if vs := owl.Check(m); len(vs) == 0 {
		t.Error("cardinality violation not detected")
	}
}

func TestEnvelopeWithTimePeriodRejectsReversed(t *testing.T) {
	st := store.New()
	site := NewFeature(st, rdf.IRI("http://e/site"), Feature)
	env := geom.EnvelopeOf(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 1, Y: 1})
	now := time.Now()
	if _, err := SetEnvelopeWithTimePeriod(st, site, env, "", now, now.Add(-time.Hour)); err == nil {
		t.Error("reversed period accepted")
	}
}

func TestCoverage(t *testing.T) {
	st := store.New()
	sensor := NewFeature(st, rdf.IRI("http://e/sensor"), Feature)
	cov := NewCoverage(st, rdf.IRI("http://e/tempSeries"), sensor)

	base := time.Date(2008, 7, 1, 0, 0, 0, 0, time.UTC)
	// insert out of order; read back sorted
	AddCoverageSample(st, cov, base.Add(2*time.Hour), 34.1, "C")
	AddCoverageSample(st, cov, base, 31.5, "C")
	AddCoverageSample(st, cov, base.Add(time.Hour), 32.8, "C")

	samples, err := CoverageSamples(st, cov)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Value != 31.5 || samples[2].Value != 34.1 {
		t.Errorf("sort order wrong: %+v", samples)
	}
	if !st.Has(rdf.T(sensor, HasCoverage, cov)) {
		t.Error("inverse coverage link missing")
	}
	if !st.Has(rdf.T(cov, CoverageOf, sensor)) {
		t.Error("coverageOf link missing")
	}
}
