package grdf

import (
	"repro/internal/rdf"
)

// Ontology builds the complete GRDF ontology graph: the class and property
// hierarchy of Fig. 1 (feature model + geometry model), the topology model
// of Fig. 2, the temporal sub-ontology, and the OWL restrictions the paper
// spells out in Lists 3 and 5. The result is plain RDF, ready for the triple
// store, the reasoner, the serializers and the G-SACS ontology repository.
func Ontology() *rdf.Graph {
	g := rdf.NewGraph()

	class := func(c rdf.IRI, super ...rdf.IRI) {
		g.Add(rdf.T(c, rdf.RDFType, rdf.OWLClass))
		for _, s := range super {
			g.Add(rdf.T(c, rdf.RDFSSubClassOf, s))
		}
	}
	objProp := func(p rdf.IRI, domain, rang rdf.IRI) {
		g.Add(rdf.T(p, rdf.RDFType, rdf.OWLObjectProperty))
		if domain != "" {
			g.Add(rdf.T(p, rdf.RDFSDomain, domain))
		}
		if rang != "" {
			g.Add(rdf.T(p, rdf.RDFSRange, rang))
		}
	}
	dataProp := func(p rdf.IRI, domain rdf.IRI, rang rdf.IRI) {
		g.Add(rdf.T(p, rdf.RDFType, rdf.OWLDatatypeProperty))
		if domain != "" {
			g.Add(rdf.T(p, rdf.RDFSDomain, domain))
		}
		if rang != "" {
			g.Add(rdf.T(p, rdf.RDFSRange, rang))
		}
	}
	label := func(s rdf.IRI, text string) {
		g.Add(rdf.T(s, rdf.RDFSLabel, rdf.NewLangString(text, "en")))
	}

	// --- root -----------------------------------------------------------------
	class(RootGRDFObject)
	label(RootGRDFObject, "Root GRDF Object")

	// --- feature model (Section 4) ---------------------------------------------
	class(Feature, RootGRDFObject)
	label(Feature, "Feature")
	g.Add(rdf.T(Feature, rdf.RDFSComment, rdf.NewString(
		"An application object such as 'landfill' or 'building'; abstract in the sense that concrete instances are instantiated from it.")))
	class(FeatureCollection, Feature)
	class(BoundingShape, RootGRDFObject)
	class(Envelope, BoundingShape)
	class(EnvelopeWithTimePeriod, Envelope)
	class(Null, RootGRDFObject)
	class(Observation, Feature) // "Observation itself is a Feature type"
	class(Value, RootGRDFObject)
	class(CRS, RootGRDFObject)
	class(Coverage, RootGRDFObject)

	objProp(IsBoundedBy, Feature, BoundingShape)
	objProp(BoundedBy, Feature, Envelope)
	objProp(HasEnvelope, Feature, Envelope)
	objProp(HasCenterLineOf, Feature, Curve)
	objProp(HasCenterOf, Feature, Point)
	objProp(HasEdgeOf, Feature, Curve)
	objProp(HasExtentOf, Feature, Surface)
	objProp(HasGeometry, Feature, Geometry)
	objProp(FeatureMember, FeatureCollection, Feature)
	objProp(HasValue, Feature, Value)
	objProp(ObservedFeature, Observation, Feature)
	objProp(HasCoverage, "", Coverage)
	objProp(CoverageOf, Coverage, "")
	dataProp(HasSRSName, "", rdf.XSDAnyURI)

	// The extent properties are specializations of hasGeometry.
	for _, p := range []rdf.IRI{HasCenterLineOf, HasCenterOf, HasEdgeOf, HasEnvelope, HasExtentOf} {
		g.Add(rdf.T(p, rdf.RDFSSubPropertyOf, HasGeometry))
	}
	// boundedBy specializes isBoundedBy (rectangle extent).
	g.Add(rdf.T(BoundedBy, rdf.RDFSSubPropertyOf, IsBoundedBy))

	// Envelope corners (Section 4: "a pair of coordinates corresponding to
	// the opposite corners of a feature").
	dataProp(LowerCorner, Envelope, rdf.XSDString)
	dataProp(UpperCorner, Envelope, rdf.XSDString)

	// Measure pattern of Section 3.2 (MeasureType's double base becomes a
	// property with range xsd:double).
	dataProp(MeasureValue, Value, rdf.XSDDouble)
	dataProp(UOM, Value, rdf.XSDAnyURI)

	// --- geometry model (Section 5) ---------------------------------------------
	class(Geometry, RootGRDFObject)
	class(Point, Geometry)
	class(Curve, Geometry)
	class(LineString, Curve)
	class(Ring, Geometry)
	class(LinearRing, Ring)
	class(Surface, Geometry)
	class(Polygon, Surface)
	class(Solid, Geometry)
	class(MultiPoint, Geometry)
	class(MultiCurve, Geometry)
	class(MultiSurface, Geometry)
	class(CompositeCurve, Curve) // a composite curve is itself a curve
	class(CompositeSurface, Surface)
	class(ComplexGeometry, Geometry)
	label(Point, "Point")
	g.Add(rdf.T(Point, rdf.RDFSComment, rdf.NewString(
		"The most basic and indecomposable form of geometry.")))

	dataProp(Coordinates, Geometry, rdf.XSDString)
	dataProp(PosList, Geometry, rdf.XSDString)
	objProp(Exterior, Surface, Ring)
	objProp(Interior, Surface, Ring)
	objProp(PointMember, MultiPoint, Point)
	objProp(CurveMember, "", Curve) // List 4: curveMember used by Multi and Composite curves
	objProp(SurfaceMember, "", Surface)
	objProp(SolidMember, Solid, Surface) // solids are built from 2-D members
	objProp(GeometryMember, ComplexGeometry, Geometry)

	// --- topology model (Section 6, Fig. 2) --------------------------------------
	class(Topology, RootGRDFObject)
	class(TopoPrimitive, Topology)
	class(TopoNode, TopoPrimitive)
	class(TopoEdge, TopoPrimitive)
	class(TopoFace, TopoPrimitive)
	class(TopoSolid, TopoPrimitive)
	class(TopoCurve, Topology)
	class(TopoSurface, Topology)
	class(TopoVolume, Topology)
	class(TopoComplex, Topology)

	objProp(HasStartNode, TopoEdge, TopoNode)
	objProp(HasEndNode, TopoEdge, TopoNode)
	objProp(HasEdge, "", TopoEdge)
	objProp(HasFace, "", TopoFace)
	objProp(HasSurface, TopoFace, Surface)
	objProp(HasTopoSolid, TopoFace, TopoSolid)
	objProp(IsolatedIn, TopoNode, TopoFace)
	objProp(RealizedBy, Topology, Geometry)
	objProp(Realizes, Geometry, Topology)
	g.Add(rdf.T(RealizedBy, rdf.OWLInverseOf, Realizes))

	// List 5: Face restrictions — at most 2 TopoSolids, at most 1 Surface,
	// at least 1 Edge.
	addRestriction(g, TopoFace, HasTopoSolid, rdf.OWLMaxCardinality, 2)
	addRestriction(g, TopoFace, HasSurface, rdf.OWLMaxCardinality, 1)
	addRestriction(g, TopoFace, HasEdge, rdf.OWLMinCardinality, 1)

	// --- temporal model ----------------------------------------------------------
	class(TimeObject, RootGRDFObject)
	class(TimePosition, TimeObject)
	objProp(HasTimePosition, "", TimePosition)
	dataProp(TimeValue, TimePosition, rdf.XSDDateTime)

	// List 3: EnvelopeWithTimePeriod carries exactly two time positions.
	addRestriction(g, EnvelopeWithTimePeriod, HasTimePosition, rdf.OWLCardinality, 2)

	return g
}

// addRestriction attaches "cls rdfs:subClassOf [ a owl:Restriction ;
// owl:onProperty prop ; <kind> n ]" to the graph.
func addRestriction(g *rdf.Graph, cls, prop rdf.IRI, kind rdf.IRI, n uint64) {
	restr := rdf.NewBlankNode()
	g.Add(rdf.T(cls, rdf.RDFSSubClassOf, restr))
	g.Add(rdf.T(restr, rdf.RDFType, rdf.OWLRestriction))
	g.Add(rdf.T(restr, rdf.OWLOnProperty, prop))
	g.Add(rdf.T(restr, kind, rdf.NewNonNegativeInteger(n)))
}

// OntologyReport summarizes the ontology structure; experiment E1 prints it
// to reproduce Fig. 1's inventory.
type OntologyReport struct {
	Classes          int
	ObjectProperties int
	DataProperties   int
	SubClassEdges    int
	Restrictions     int
}

// Report computes structural statistics over an ontology graph.
func Report(g *rdf.Graph) OntologyReport {
	var r OntologyReport
	for _, t := range g.Triples() {
		if !t.Predicate.Equal(rdf.RDFType) {
			if t.Predicate.Equal(rdf.RDFSSubClassOf) {
				r.SubClassEdges++
			}
			continue
		}
		switch {
		case t.Object.Equal(rdf.OWLClass):
			r.Classes++
		case t.Object.Equal(rdf.OWLObjectProperty):
			r.ObjectProperties++
		case t.Object.Equal(rdf.OWLDatatypeProperty):
			r.DataProperties++
		case t.Object.Equal(rdf.OWLRestriction):
			r.Restrictions++
		}
	}
	return r
}
