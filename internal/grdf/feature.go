package grdf

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/store"
)

// The feature API: a typed layer that encodes geom values as GRDF triples and
// decodes them back. The encoding follows the paper's data samples (Lists 6
// and 7): geometry nodes typed with the geometry-model classes, coordinates
// carried in the GML tuple syntax, CRS via hasSRSName.

// EncodeGeometry writes the triples describing geo, rooted at node, into st.
// srs (may be empty) is recorded via grdf:hasSRSName.
func EncodeGeometry(st *store.Store, node rdf.Term, geo geom.Geometry, srs string) error {
	addSRS := func(n rdf.Term) {
		if srs != "" {
			st.Add(rdf.T(n, HasSRSName, rdf.NewString(srs)))
		}
	}
	switch v := geo.(type) {
	case geom.Point:
		st.Add(rdf.T(node, rdf.RDFType, Point))
		st.Add(rdf.T(node, Coordinates, rdf.NewString(geom.FormatCoordinates([]geom.Coord{v.C}))))
		addSRS(node)
	case geom.LineString:
		st.Add(rdf.T(node, rdf.RDFType, LineString))
		st.Add(rdf.T(node, Coordinates, rdf.NewString(geom.FormatCoordinates(v.Coords))))
		addSRS(node)
	case geom.LinearRing:
		st.Add(rdf.T(node, rdf.RDFType, LinearRing))
		st.Add(rdf.T(node, Coordinates, rdf.NewString(geom.FormatCoordinates(v.Coords))))
		addSRS(node)
	case geom.Polygon:
		st.Add(rdf.T(node, rdf.RDFType, Polygon))
		ext := rdf.NewBlankNode()
		st.Add(rdf.T(node, Exterior, ext))
		if err := EncodeGeometry(st, ext, v.Exterior, ""); err != nil {
			return err
		}
		for _, h := range v.Holes {
			in := rdf.NewBlankNode()
			st.Add(rdf.T(node, Interior, in))
			if err := EncodeGeometry(st, in, h, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.Envelope:
		if v.Empty {
			st.Add(rdf.T(node, rdf.RDFType, Null))
			return nil
		}
		st.Add(rdf.T(node, rdf.RDFType, Envelope))
		ll, ur := v.Corners()
		st.Add(rdf.T(node, LowerCorner, rdf.NewString(geom.FormatCoordinates([]geom.Coord{ll}))))
		st.Add(rdf.T(node, UpperCorner, rdf.NewString(geom.FormatCoordinates([]geom.Coord{ur}))))
		addSRS(node)
	case geom.MultiPoint:
		st.Add(rdf.T(node, rdf.RDFType, MultiPoint))
		for _, p := range v.Points {
			m := rdf.NewBlankNode()
			st.Add(rdf.T(node, PointMember, m))
			if err := EncodeGeometry(st, m, p, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.MultiCurve:
		st.Add(rdf.T(node, rdf.RDFType, MultiCurve))
		for _, c := range v.Curves {
			m := rdf.NewBlankNode()
			st.Add(rdf.T(node, CurveMember, m))
			if err := EncodeGeometry(st, m, c, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.MultiSurface:
		st.Add(rdf.T(node, rdf.RDFType, MultiSurface))
		for _, s := range v.Surfaces {
			m := rdf.NewBlankNode()
			st.Add(rdf.T(node, SurfaceMember, m))
			if err := EncodeGeometry(st, m, s, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.CompositeCurve:
		st.Add(rdf.T(node, rdf.RDFType, CompositeCurve))
		for _, m := range v.Members {
			mm := rdf.NewBlankNode()
			st.Add(rdf.T(node, CurveMember, mm))
			if err := EncodeGeometry(st, mm, m, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.CompositeSurface:
		st.Add(rdf.T(node, rdf.RDFType, CompositeSurface))
		for _, m := range v.Members {
			mm := rdf.NewBlankNode()
			st.Add(rdf.T(node, SurfaceMember, mm))
			if err := EncodeGeometry(st, mm, m, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.Complex:
		st.Add(rdf.T(node, rdf.RDFType, ComplexGeometry))
		for _, m := range v.Members {
			mm := rdf.NewBlankNode()
			st.Add(rdf.T(node, GeometryMember, mm))
			if err := EncodeGeometry(st, mm, m, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	case geom.Solid:
		st.Add(rdf.T(node, rdf.RDFType, Solid))
		for _, p := range v.Boundary {
			mm := rdf.NewBlankNode()
			st.Add(rdf.T(node, SolidMember, mm))
			if err := EncodeGeometry(st, mm, p, ""); err != nil {
				return err
			}
		}
		addSRS(node)
	default:
		return fmt.Errorf("grdf: cannot encode geometry kind %s", geo.Kind())
	}
	return nil
}

// DecodeGeometry reads the geometry rooted at node back into a geom value.
// The second result is the srsName, when present.
func DecodeGeometry(st *store.Store, node rdf.Term) (geom.Geometry, string, error) {
	srs := ""
	if v, ok := st.FirstObject(node, HasSRSName); ok {
		if lit, isLit := v.(rdf.Literal); isLit {
			srs = lit.Value
		}
	}
	kind, ok := geometryType(st, node)
	if !ok {
		return nil, "", fmt.Errorf("grdf: node %s has no geometry type", node)
	}
	coords := func() ([]geom.Coord, error) {
		v, ok := st.FirstObject(node, Coordinates)
		if !ok {
			if v, ok = st.FirstObject(node, PosList); ok {
				lit, isLit := v.(rdf.Literal)
				if !isLit {
					return nil, fmt.Errorf("grdf: %s posList is not a literal", node)
				}
				return geom.ParsePosList(lit.Value)
			}
			return nil, fmt.Errorf("grdf: %s has no coordinates", node)
		}
		lit, isLit := v.(rdf.Literal)
		if !isLit {
			return nil, fmt.Errorf("grdf: %s coordinates is not a literal", node)
		}
		return geom.ParseCoordinates(lit.Value)
	}
	decodeMembers := func(prop rdf.IRI) ([]geom.Geometry, error) {
		var out []geom.Geometry
		for _, m := range st.Objects(node, prop) {
			g, _, err := DecodeGeometry(st, m)
			if err != nil {
				return nil, err
			}
			out = append(out, g)
		}
		return out, nil
	}

	switch kind {
	case Point:
		cs, err := coords()
		if err != nil {
			return nil, "", err
		}
		return geom.Point{C: cs[0]}, srs, nil
	case LineString, Curve:
		cs, err := coords()
		if err != nil {
			return nil, "", err
		}
		l, err := geom.NewLineString(cs)
		return l, srs, err
	case LinearRing, Ring:
		cs, err := coords()
		if err != nil {
			return nil, "", err
		}
		r, err := geom.NewLinearRing(cs)
		return r, srs, err
	case Polygon, Surface:
		extNode, ok := st.FirstObject(node, Exterior)
		if !ok {
			return nil, "", fmt.Errorf("grdf: polygon %s has no exterior", node)
		}
		extGeo, _, err := DecodeGeometry(st, extNode)
		if err != nil {
			return nil, "", err
		}
		ext, ok := extGeo.(geom.LinearRing)
		if !ok {
			return nil, "", fmt.Errorf("grdf: polygon %s exterior is %s", node, extGeo.Kind())
		}
		var holes []geom.LinearRing
		for _, h := range st.Objects(node, Interior) {
			hg, _, err := DecodeGeometry(st, h)
			if err != nil {
				return nil, "", err
			}
			hr, ok := hg.(geom.LinearRing)
			if !ok {
				return nil, "", fmt.Errorf("grdf: polygon %s interior is %s", node, hg.Kind())
			}
			holes = append(holes, hr)
		}
		return geom.NewPolygon(ext, holes...), srs, nil
	case Envelope, EnvelopeWithTimePeriod:
		lo, okL := st.FirstObject(node, LowerCorner)
		hi, okU := st.FirstObject(node, UpperCorner)
		if !okL || !okU {
			return nil, "", fmt.Errorf("grdf: envelope %s missing corners", node)
		}
		loLit, okL := lo.(rdf.Literal)
		hiLit, okU := hi.(rdf.Literal)
		if !okL || !okU {
			return nil, "", fmt.Errorf("grdf: envelope %s corners are not literals", node)
		}
		lc, err := geom.ParseCoordinates(loLit.Value)
		if err != nil {
			return nil, "", err
		}
		uc, err := geom.ParseCoordinates(hiLit.Value)
		if err != nil {
			return nil, "", err
		}
		return geom.EnvelopeOf(lc[0], uc[0]), srs, nil
	case Null:
		return geom.EmptyEnvelope(), srs, nil
	case MultiPoint:
		ms, err := decodeMembers(PointMember)
		if err != nil {
			return nil, "", err
		}
		var mp geom.MultiPoint
		for _, m := range ms {
			p, ok := m.(geom.Point)
			if !ok {
				return nil, "", fmt.Errorf("grdf: MultiPoint member is %s", m.Kind())
			}
			mp.Points = append(mp.Points, p)
		}
		return mp, srs, nil
	case MultiCurve:
		ms, err := decodeMembers(CurveMember)
		if err != nil {
			return nil, "", err
		}
		var mc geom.MultiCurve
		for _, m := range ms {
			c, ok := m.(geom.LineString)
			if !ok {
				return nil, "", fmt.Errorf("grdf: MultiCurve member is %s", m.Kind())
			}
			mc.Curves = append(mc.Curves, c)
		}
		return mc, srs, nil
	case MultiSurface:
		ms, err := decodeMembers(SurfaceMember)
		if err != nil {
			return nil, "", err
		}
		var out geom.MultiSurface
		for _, m := range ms {
			s, ok := m.(geom.Polygon)
			if !ok {
				return nil, "", fmt.Errorf("grdf: MultiSurface member is %s", m.Kind())
			}
			out.Surfaces = append(out.Surfaces, s)
		}
		return out, srs, nil
	case CompositeCurve:
		ms, err := decodeMembers(CurveMember)
		if err != nil {
			return nil, "", err
		}
		// Member order is not preserved by the triple store; rebuild the
		// chain from endpoint adjacency before validating contiguity.
		ordered, err := orderCurveChain(ms)
		if err != nil {
			return nil, "", fmt.Errorf("grdf: composite curve %s: %w", node, err)
		}
		cc, err := geom.NewCompositeCurve(ordered...)
		return cc, srs, err
	case CompositeSurface:
		ms, err := decodeMembers(SurfaceMember)
		if err != nil {
			return nil, "", err
		}
		var polys []geom.Polygon
		for _, m := range ms {
			p, ok := m.(geom.Polygon)
			if !ok {
				return nil, "", fmt.Errorf("grdf: CompositeSurface member is %s", m.Kind())
			}
			polys = append(polys, p)
		}
		cs, err := geom.NewCompositeSurface(polys...)
		return cs, srs, err
	case ComplexGeometry:
		ms, err := decodeMembers(GeometryMember)
		if err != nil {
			return nil, "", err
		}
		return geom.Complex{Members: ms}, srs, nil
	case Solid:
		ms, err := decodeMembers(SolidMember)
		if err != nil {
			return nil, "", err
		}
		var s geom.Solid
		for _, m := range ms {
			p, ok := m.(geom.Polygon)
			if !ok {
				return nil, "", fmt.Errorf("grdf: Solid member is %s", m.Kind())
			}
			s.Boundary = append(s.Boundary, p)
		}
		return s, srs, nil
	}
	return nil, "", fmt.Errorf("grdf: unsupported geometry class %s", kind)
}

// orderCurveChain arranges curve members into a contiguous chain: the head
// is the member whose start point is no other member's end point, and each
// next member starts where the previous ends.
func orderCurveChain(ms []geom.Geometry) ([]geom.Geometry, error) {
	if len(ms) <= 1 {
		return ms, nil
	}
	lines := make([]geom.LineString, len(ms))
	for i, m := range ms {
		l, ok := m.(geom.LineString)
		if !ok {
			return nil, fmt.Errorf("member %d is %s, want LineString", i, m.Kind())
		}
		lines[i] = l
	}
	ends := map[geom.Coord]bool{}
	for _, l := range lines {
		ends[l.Coords[len(l.Coords)-1]] = true
	}
	startIdx := -1
	for i, l := range lines {
		if !ends[l.Coords[0]] {
			startIdx = i
			break
		}
	}
	if startIdx < 0 {
		startIdx = 0 // closed loop: any member can lead
	}
	byStart := map[geom.Coord]int{}
	for i, l := range lines {
		byStart[l.Coords[0]] = i
	}
	used := make([]bool, len(lines))
	out := make([]geom.Geometry, 0, len(lines))
	cur := startIdx
	for range lines {
		if used[cur] {
			return nil, fmt.Errorf("members do not form a simple chain")
		}
		used[cur] = true
		out = append(out, lines[cur])
		next, ok := byStart[lines[cur].Coords[len(lines[cur].Coords)-1]]
		if !ok {
			break
		}
		if used[next] {
			break
		}
		cur = next
	}
	if len(out) != len(lines) {
		return nil, fmt.Errorf("members do not form a single chain")
	}
	return out, nil
}

// geometryType finds the node's most specific GRDF geometry class.
func geometryType(st *store.Store, node rdf.Term) (rdf.IRI, bool) {
	known := map[rdf.IRI]bool{
		Point: true, Curve: true, LineString: true, Ring: true, LinearRing: true,
		Surface: true, Polygon: true, Solid: true, Envelope: true,
		EnvelopeWithTimePeriod: true, Null: true,
		MultiPoint: true, MultiCurve: true, MultiSurface: true,
		CompositeCurve: true, CompositeSurface: true, ComplexGeometry: true,
	}
	var found rdf.IRI
	specific := map[rdf.IRI]int{ // prefer subclasses over superclasses
		LineString: 2, LinearRing: 2, Polygon: 2, EnvelopeWithTimePeriod: 2,
		CompositeCurve: 2, CompositeSurface: 2,
		Curve: 1, Ring: 1, Surface: 1, Envelope: 1,
	}
	best := -1
	for _, ty := range st.Objects(node, rdf.RDFType) {
		iri, ok := ty.(rdf.IRI)
		if !ok || !known[iri] {
			continue
		}
		rank := specific[iri]
		if rank > best {
			best = rank
			found = iri
		}
	}
	return found, found != ""
}

// NewFeature asserts a feature individual of the given class (the class is
// additionally declared a subclass of grdf:Feature when it is outside the
// GRDF namespace, letting domain ontologies bootstrap as Section 2 intends).
func NewFeature(st *store.Store, id rdf.IRI, class rdf.IRI) rdf.IRI {
	if class == "" {
		class = Feature
	}
	st.Add(rdf.T(id, rdf.RDFType, class))
	if class != Feature && class.Namespace() != NS {
		st.Add(rdf.T(class, rdf.RDFSSubClassOf, Feature))
	}
	return id
}

// SetGeometry attaches geo to the feature via grdf:hasGeometry, returning the
// geometry node.
func SetGeometry(st *store.Store, feature rdf.IRI, geo geom.Geometry, srs string) (rdf.Term, error) {
	node := rdf.Term(rdf.NewBlankNode())
	if err := EncodeGeometry(st, node, geo, srs); err != nil {
		return nil, err
	}
	st.Add(rdf.T(feature, HasGeometry, node))
	return node, nil
}

// SetEnvelope attaches a bounding envelope via grdf:boundedBy.
func SetEnvelope(st *store.Store, feature rdf.IRI, env geom.Envelope, srs string) (rdf.Term, error) {
	node := rdf.Term(rdf.NewBlankNode())
	if err := EncodeGeometry(st, node, env, srs); err != nil {
		return nil, err
	}
	st.Add(rdf.T(feature, BoundedBy, node))
	return node, nil
}

// geometryProps are the properties that can carry a feature's geometry, in
// lookup order.
var geometryProps = []rdf.IRI{
	HasGeometry, BoundedBy, IsBoundedBy, HasEnvelope,
	HasCenterLineOf, HasCenterOf, HasEdgeOf, HasExtentOf,
}

// GeometryOf resolves a feature's geometry: if the term itself decodes as a
// geometry node it is used directly, otherwise the feature's geometry
// properties are tried in order.
func GeometryOf(st *store.Store, term rdf.Term) (geom.Geometry, string, error) {
	if g, srs, err := DecodeGeometry(st, term); err == nil {
		return g, srs, nil
	}
	for _, p := range geometryProps {
		if node, ok := st.FirstObject(term, p); ok {
			if g, srs, err := DecodeGeometry(st, node); err == nil {
				return g, srs, nil
			}
		}
	}
	return nil, "", fmt.Errorf("grdf: %s has no resolvable geometry", term)
}

// EnvelopeOfFeature returns the feature's bounding box: the declared
// grdf:boundedBy envelope when present, otherwise the envelope of its
// geometry.
func EnvelopeOfFeature(st *store.Store, feature rdf.Term) (geom.Envelope, bool) {
	if node, ok := st.FirstObject(feature, BoundedBy); ok {
		if g, _, err := DecodeGeometry(st, node); err == nil {
			return g.Envelope(), true
		}
	}
	if g, _, err := GeometryOf(st, feature); err == nil {
		return g.Envelope(), true
	}
	return geom.EmptyEnvelope(), false
}

// FeaturesOfType returns the features with the given rdf:type asserted.
func FeaturesOfType(st *store.Store, class rdf.IRI) []rdf.Term {
	return st.SubjectsOfType(class)
}
