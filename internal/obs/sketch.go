package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencySketch is a log-linear (HDR-style) histogram over nanosecond
// durations. Values are bucketed by their power-of-two magnitude, with
// sketchSubBits of mantissa resolution inside each power of two, which
// bounds the relative error of any reported quantile by 2^-sketchSubBits
// (~3.1%). Recording is lock-free and wait-free on the fast path; slabs of
// buckets are allocated lazily per power of two, so an idle sketch costs a
// few hundred bytes.
//
// All methods are safe on a nil receiver, matching the rest of the obs
// package: un-instrumented paths pay nothing.

const (
	// sketchSubBits is the number of mantissa bits kept per power of two.
	sketchSubBits = 5
	// sketchSubBuckets is the number of buckets per power of two.
	sketchSubBuckets = 1 << sketchSubBits
	// sketchSlabs covers values up to 2^(sketchSubBits+sketchSlabs) ns.
	// 5+38 = 43 bits ≈ 2.4 hours, far beyond any plausible HTTP latency.
	sketchSlabs = 38
)

type sketchSlab [sketchSubBuckets]atomic.Uint64

// LatencySketch records durations and answers quantile queries.
type LatencySketch struct {
	slabs [sketchSlabs]atomic.Pointer[sketchSlab]
	count atomic.Uint64
	sum   atomic.Uint64 // nanoseconds
	max   atomic.Uint64 // nanoseconds
}

// NewLatencySketch returns an empty sketch.
func NewLatencySketch() *LatencySketch { return &LatencySketch{} }

// sketchIndex maps a nanosecond value to (slab, sub-bucket). Values below
// sketchSubBuckets are exact in slab 0; larger values keep the top
// sketchSubBits bits after the leading one.
func sketchIndex(v uint64) (int, int) {
	if v < sketchSubBuckets {
		return 0, int(v)
	}
	e := bits.Len64(v) - 1 // position of leading one, >= sketchSubBits
	slab := e - sketchSubBits + 1
	sub := int(v>>(uint(e)-sketchSubBits)) - sketchSubBuckets
	if slab >= sketchSlabs {
		slab, sub = sketchSlabs-1, sketchSubBuckets-1
	}
	return slab, sub
}

// sketchUpperEdge is the inverse of sketchIndex: the largest value mapping
// to (slab, sub). Quantiles report this edge, so estimates never undershoot
// by more than one bucket width.
func sketchUpperEdge(slab, sub int) uint64 {
	if slab == 0 {
		return uint64(sub)
	}
	e := slab + sketchSubBits - 1
	base := uint64(sketchSubBuckets+sub) << (uint(e) - sketchSubBits)
	width := uint64(1) << (uint(e) - sketchSubBits)
	return base + width - 1
}

// Record adds one duration. Negative durations count as zero.
func (s *LatencySketch) Record(d time.Duration) {
	if s == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	slab, sub := sketchIndex(v)
	p := s.slabs[slab].Load()
	if p == nil {
		fresh := new(sketchSlab)
		if !s.slabs[slab].CompareAndSwap(nil, fresh) {
			p = s.slabs[slab].Load()
		} else {
			p = fresh
		}
	}
	p[sub].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of recorded durations (0 on nil).
func (s *LatencySketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Sum returns the total recorded time (0 on nil).
func (s *LatencySketch) Sum() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.sum.Load())
}

// Max returns the largest recorded duration (0 on nil).
func (s *LatencySketch) Max() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.max.Load())
}

// Mean returns the arithmetic mean of recorded durations (0 when empty).
func (s *LatencySketch) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.sum.Load() / n)
}

// Quantile returns the duration at quantile q in [0,1]: the upper edge of
// the bucket holding the sample of rank ceil(q*count). Returns 0 on an
// empty sketch. The estimate's relative error is bounded by the bucket
// width, 2^-sketchSubBits of the true value.
func (s *LatencySketch) Quantile(q float64) time.Duration {
	if s == nil {
		return 0
	}
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for slab := 0; slab < sketchSlabs; slab++ {
		p := s.slabs[slab].Load()
		if p == nil {
			continue
		}
		for sub := 0; sub < sketchSubBuckets; sub++ {
			c := p[sub].Load()
			if c == 0 {
				continue
			}
			seen += c
			if seen >= rank {
				edge := sketchUpperEdge(slab, sub)
				if m := s.max.Load(); edge > m {
					// The top occupied bucket's edge can overshoot the
					// true max; clamp so Quantile(1) == Max.
					edge = m
				}
				return time.Duration(edge)
			}
		}
	}
	return time.Duration(s.max.Load())
}

// MergeSketches returns a new sketch holding the union of all inputs
// (nils skipped). Counts are summed bucket-by-bucket; the result is
// independent of the inputs.
func MergeSketches(in ...*LatencySketch) *LatencySketch {
	out := NewLatencySketch()
	for _, s := range in {
		if s == nil {
			continue
		}
		for slab := 0; slab < sketchSlabs; slab++ {
			p := s.slabs[slab].Load()
			if p == nil {
				continue
			}
			for sub := 0; sub < sketchSubBuckets; sub++ {
				c := p[sub].Load()
				if c == 0 {
					continue
				}
				dst := out.slabs[slab].Load()
				if dst == nil {
					dst = new(sketchSlab)
					out.slabs[slab].Store(dst)
				}
				dst[sub].Add(c)
				out.count.Add(c)
				out.sum.Add(c * sketchUpperEdge(slab, sub))
			}
		}
		if m := s.max.Load(); m > out.max.Load() {
			out.max.Store(m)
		}
	}
	return out
}
