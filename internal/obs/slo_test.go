package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// sloClock is an injectable clock for window tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{t: time.Unix(1_700_000_000, 0)} }

func testEngine(clk *sloClock) *SLOEngine {
	return NewSLOEngine(SLOConfig{
		LatencyTarget:      100 * time.Millisecond,
		AvailabilityTarget: 0.99,
		FastWindow:         5 * time.Minute,
		SlowWindow:         time.Hour,
		now:                clk.now,
	})
}

func TestSLOWindowQuantiles(t *testing.T) {
	clk := newSLOClock()
	e := testEngine(clk)
	for i := 0; i < 1000; i++ {
		e.Record("/v1/query", time.Duration(i+1)*time.Millisecond, 200)
	}
	st := e.Status()
	if st.Fast.Count != 1000 || st.Slow.Count != 1000 {
		t.Fatalf("counts fast=%d slow=%d", st.Fast.Count, st.Slow.Count)
	}
	// p99 of 1..1000ms is 990ms; bucket error allowed.
	if rel := math.Abs(st.Fast.P99Ms-990) / 990; rel > 0.07 {
		t.Fatalf("fast p99 %.1fms, want ~990ms", st.Fast.P99Ms)
	}
	if st.Fast.ErrorRate != 0 || st.Fast.BurnRate != 0 {
		t.Fatalf("clean traffic burned budget: %+v", st.Fast)
	}
	if st.LatencyOK {
		t.Fatal("p99 990ms vs 100ms target must breach")
	}
	if !st.AvailabilityOK {
		t.Fatal("no errors: availability must pass")
	}
	if len(st.Routes) != 1 || st.Routes[0].Route != "/v1/query" {
		t.Fatalf("routes %+v", st.Routes)
	}
}

func TestSLOBurnRateAndExpiry(t *testing.T) {
	clk := newSLOClock()
	e := testEngine(clk)
	// 100 requests, 2 server errors: error rate 2%, budget 1%, burn 2x.
	for i := 0; i < 100; i++ {
		status := 200
		if i < 2 {
			status = 500
		}
		e.Record("/v1/query", time.Millisecond, status)
	}
	st := e.Status()
	if math.Abs(st.Fast.BurnRate-2.0) > 1e-9 {
		t.Fatalf("fast burn %.3f, want 2.0", st.Fast.BurnRate)
	}
	if st.AvailabilityOK {
		t.Fatal("burn 2x must fail availability")
	}

	// Past the fast window the errors still burn the slow budget.
	clk.advance(6 * time.Minute)
	st = e.Status()
	if st.Fast.Count != 0 {
		t.Fatalf("fast window should have expired, count=%d", st.Fast.Count)
	}
	if st.Slow.Count != 100 || st.Slow.Errors != 2 {
		t.Fatalf("slow window lost data: %+v", st.Slow)
	}
	if !st.AvailabilityOK || !st.LatencyOK {
		t.Fatal("empty fast window must pass both objectives")
	}

	// Past the slow window everything ages out.
	clk.advance(time.Hour)
	st = e.Status()
	if st.Slow.Count != 0 {
		t.Fatalf("slow window should have expired, count=%d", st.Slow.Count)
	}
}

func TestSLOBucketReuseAfterWrap(t *testing.T) {
	clk := newSLOClock()
	e := testEngine(clk)
	e.Record("/v1/query", 50*time.Millisecond, 200)
	// Advance exactly the ring length (61 one-minute buckets) so the
	// second record lands in the same slot and must reset it.
	clk.advance(61 * time.Minute)
	e.Record("/v1/query", 10*time.Millisecond, 200)
	st := e.Status()
	if st.Slow.Count != 1 {
		t.Fatalf("stale bucket leaked into window: %+v", st.Slow)
	}
}

func TestSLONilEngine(t *testing.T) {
	var e *SLOEngine
	e.Record("/x", time.Second, 500) // must not panic
	st := e.Status()
	if !st.LatencyOK || !st.AvailabilityOK {
		t.Fatal("nil engine must report vacuous pass")
	}
	e.Instrument(NewRegistry())
}

func TestSLOInstrument(t *testing.T) {
	clk := newSLOClock()
	e := testEngine(clk)
	for i := 0; i < 10; i++ {
		e.Record("/v1/query", 5*time.Millisecond, 200)
	}
	e.Record("/v1/query", 5*time.Millisecond, 500)
	reg := NewRegistry()
	e.Instrument(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"grdf_slo_latency_seconds{window=\"fast\"}",
		"grdf_slo_error_rate{window=\"slow\"}",
		"grdf_slo_burn_rate{window=\"fast\"}",
		"grdf_slo_latency_target_seconds 0.1",
		"grdf_slo_availability_breached 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestReadSaturation(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("grdf_http_in_flight_requests",
		"Requests currently being served.").Set(3)
	s := ReadSaturation(reg)
	if s.Goroutines < 1 {
		t.Fatalf("goroutines %d", s.Goroutines)
	}
	if s.HeapAllocBytes == 0 || s.GOMAXPROCS < 1 {
		t.Fatalf("implausible saturation %+v", s)
	}
	if s.InFlightHTTP != 3 {
		t.Fatalf("in-flight %v, want 3", s.InFlightHTTP)
	}
	// nil registry still samples the runtime.
	if ReadSaturation(nil).Goroutines < 1 {
		t.Fatal("nil-registry saturation empty")
	}
}
