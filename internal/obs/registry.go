// Package obs is the reproduction's observability layer: a stdlib-only
// metrics registry with Prometheus text-format exposition, request-scoped
// trace IDs carried via context.Context, log/slog helpers, and HTTP
// middleware that ties the three together.
//
// The G-SACS architecture of Fig. 3 is a *service* — client interface,
// decision engine, query cache, reasoning engine — and the ROADMAP's
// "as fast as the hardware allows" goal is unreachable without per-stage
// measurement. Every layer (HTTP front-end, decision engine, query cache,
// OWL reasoner, SPARQL evaluator, triple store) reports into one Registry,
// scraped at /metrics and snapshotted by grdf-bench.
//
// Design notes:
//
//   - All instruments are lock-free on the hot path (atomics); the registry
//     lock is only taken when a handle is first created or at exposition.
//   - Handles are nil-safe: methods on a nil *Counter / *Gauge / *Histogram
//     are no-ops, and every getter on a nil *Registry returns nil. Components
//     can therefore be instrumented unconditionally and run un-instrumented
//     at zero cost when no registry is configured.
//   - Callback instruments (GaugeFunc / CounterFunc) are read at exposition
//     time, so values that already exist elsewhere (store size, cache depth)
//     cost nothing between scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default latency buckets (seconds). They skew far lower
// than Prometheus' classic defaults because the in-memory hot paths here
// (cache hits, single decisions) complete in microseconds.
var DefBuckets = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Registry holds metric families keyed by name. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid "off switch": all
// getters return nil handles whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family groups all label permutations (series) of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (name, labels) time series.
type series struct {
	labels string // canonical rendered label string, "" when unlabelled
	bits   atomic.Uint64
	fn     func() float64 // callback series read at exposition
	hist   *Histogram
}

func (s *series) value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return math.Float64frombits(s.bits.Load())
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, panicking on a kind
// mismatch — mixing kinds under one name is a programming error that would
// silently corrupt the exposition otherwise.
func (r *Registry) getFamily(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{name: name, help: help, kind: kind, buckets: buckets,
				series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" && help != "" {
		r.mu.Lock()
		f.help = help
		r.mu.Unlock()
	}
	return f
}

// getSeries returns (creating if needed) the series for the canonical label
// string within f.
func (f *family) getSeries(labels string) *series {
	f.mu.RLock()
	s, ok := f.series[labels]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[labels]; ok {
		return s
	}
	s = &series{labels: labels}
	if f.kind == kindHistogram {
		s.hist = newHistogram(f.buckets)
	}
	f.series[labels] = s
	return s
}

// labelString renders variadic key/value pairs into a canonical (sorted,
// escaped) Prometheus label string. Panics on an odd count.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Counter returns the counter for name with the given label pairs
// ("key", "value", ...), creating it on first use. Nil-safe.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindCounter, nil)
	return (*Counter)(f.getSeries(labelString(kv)))
}

// Gauge returns the gauge for name with the given label pairs. Nil-safe.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindGauge, nil)
	return (*Gauge)(f.getSeries(labelString(kv)))
}

// Histogram returns the histogram for name with the given label pairs,
// using buckets (nil means DefBuckets) on first creation of the family.
// Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, kindHistogram, buckets)
	return f.getSeries(labelString(kv)).hist
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// ideal for values maintained elsewhere (store size, cache depth). Calling
// it again for the same (name, labels) replaces the callback. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindGauge, nil)
	s := f.getSeries(labelString(kv))
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a callback counter evaluated at exposition time.
// The callback must be monotonically non-decreasing. Nil-safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, kindCounter, nil)
	s := f.getSeries(labelString(kv))
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Exposition

// WritePrometheus renders every family in Prometheus text format (version
// 0.0.4), families and series sorted for deterministic output. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var sb strings.Builder
	for _, f := range fams {
		f.write(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) write(sb *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*series, 0, len(keys))
	for _, k := range keys {
		snap = append(snap, f.series[k])
	}
	f.mu.RUnlock()

	if f.help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range snap {
		if f.kind == kindHistogram {
			s.hist.write(sb, f.name, s.labels)
			continue
		}
		sb.WriteString(f.name)
		if s.labels != "" {
			sb.WriteByte('{')
			sb.WriteString(s.labels)
			sb.WriteByte('}')
		}
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(s.value()))
		sb.WriteByte('\n')
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors here mean the client went away; nothing useful to do.
		_ = r.WritePrometheus(w)
	})
}

// ---------------------------------------------------------------------------
// Snapshot (machine-readable export for grdf-bench)

// Metric is one exported sample in a Snapshot. For histograms, Value holds
// the observation count, Sum the accumulated total, and Buckets the
// cumulative per-upper-bound counts.
type Metric struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot exports every series as a flat, JSON-friendly sample list,
// sorted by name then labels. Nil-safe (returns nil).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var out []Metric
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			m := Metric{Name: f.name, Kind: f.kind.String(), Labels: parseLabels(k)}
			if f.kind == kindHistogram {
				count, sum, cum := s.hist.snapshot()
				m.Value = float64(count)
				m.Sum = sum
				m.Buckets = cum
			} else {
				m.Value = s.value()
			}
			out = append(out, m)
		}
		f.mu.RUnlock()
	}
	return out
}

// parseLabels inverts labelString for Snapshot export. Escapes are rare in
// practice (role names, routes); unescape the three sequences we emit.
func parseLabels(s string) map[string]string {
	if s == "" {
		return nil
	}
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			break
		}
		key := s[:eq]
		rest := s[eq+2:]
		// find closing unescaped quote
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		val := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(rest[:end])
		out[key] = val
		s = rest[end+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out
}
