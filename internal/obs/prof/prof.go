// Package prof implements burn-triggered continuous profiling: a small ring
// of delta CPU / heap pprof captures, taken on a periodic cadence and —
// more importantly — immediately when the server's overload signals flip
// (the SLO engine's fast-burn verdict, the admission controller's Signal).
// The flamegraph of a collapse is worth little an hour later; this package
// retains the one recorded while the collapse started.
//
// CPU captures are inherently deltas (a short profiling window); heap
// captures are point-in-time snapshots whose metadata carries the allocated
// delta against the previous capture. GET /v1/profiles lists the ring and
// serves raw pprof bytes for `go tool pprof`.
package prof

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime"
	runtimepprof "runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes a Profiler.
type Config struct {
	// Ring bounds retained captures (default 8).
	Ring int
	// CPUWindow is the CPU profiling window per capture (default 2s).
	CPUWindow time.Duration
	// Every enables periodic captures at this cadence (0 disables; burn
	// triggers still fire).
	Every time.Duration
	// MinGap rate-limits triggered captures (default 10s): a flapping
	// signal must not turn the server into a profiler.
	MinGap time.Duration
	// Burn, when set, is polled about once a second; a false→true flip
	// triggers an immediate "fast_burn" capture. Wire it to the SLO
	// engine's fast-burn verdict.
	Burn func() bool
	// Registry, when set, receives the grdf_prof_* metrics.
	Registry *obs.Registry
	// Logger, when set, records one line per capture.
	Logger *slog.Logger
}

// Meta describes one retained capture without its payload bytes.
type Meta struct {
	ID   int       `json:"id"`
	Time time.Time `json:"time"`
	// Reason is "periodic", "fast_burn", "overload" or "manual".
	Reason      string `json:"reason"`
	CPUWindowMS int64  `json:"cpu_window_ms"`
	// CPUBytes/HeapBytes size the gzipped pprof payloads; a zero CPUBytes
	// means the CPU window was skipped (another profiler was running).
	CPUBytes  int    `json:"cpu_bytes"`
	HeapBytes int    `json:"heap_bytes"`
	HeapAlloc uint64 `json:"heap_alloc_bytes"`
	// HeapAllocDelta is the live-heap change since the previous capture.
	HeapAllocDelta int64 `json:"heap_alloc_delta_bytes"`
	Goroutines     int   `json:"goroutines"`
}

// Capture is a retained profile pair.
type Capture struct {
	Meta
	CPU  []byte
	Heap []byte
}

// Profiler owns the capture ring and the trigger discipline.
type Profiler struct {
	cfg Config

	mu          sync.Mutex
	ring        []*Capture
	seq         int
	inFlight    bool
	lastTrigger time.Time
	lastAlloc   uint64
	stop        chan struct{}
	stopOnce    sync.Once

	captures func(reason string) *obs.Counter
	skipped  *obs.Counter
}

// New builds a Profiler; call Start to launch the periodic / burn-watch
// loop and Stop on shutdown.
func New(cfg Config) *Profiler {
	if cfg.Ring <= 0 {
		cfg.Ring = 8
	}
	if cfg.CPUWindow <= 0 {
		cfg.CPUWindow = 2 * time.Second
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = 10 * time.Second
	}
	p := &Profiler{cfg: cfg, stop: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		p.captures = func(reason string) *obs.Counter {
			return reg.Counter("grdf_prof_captures_total",
				"Profile captures retained, by trigger reason.", "reason", reason)
		}
		p.skipped = reg.Counter("grdf_prof_suppressed_total",
			"Capture triggers suppressed (in-flight capture or min-gap).")
	}
	return p
}

// Start launches the background loop when there is periodic or burn-watch
// work to do. Safe to call once.
func (p *Profiler) Start() {
	if p.cfg.Every <= 0 && p.cfg.Burn == nil {
		return
	}
	go p.loop()
}

// Stop ends the background loop (captures already in flight finish).
func (p *Profiler) Stop() { p.stopOnce.Do(func() { close(p.stop) }) }

func (p *Profiler) loop() {
	var periodic <-chan time.Time
	if p.cfg.Every > 0 {
		t := time.NewTicker(p.cfg.Every)
		defer t.Stop()
		periodic = t.C
	}
	var burnTick <-chan time.Time
	if p.cfg.Burn != nil {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		burnTick = t.C
	}
	burning := false
	for {
		select {
		case <-p.stop:
			return
		case <-periodic:
			// Periodic captures ignore MinGap: the cadence is the limit.
			p.start("periodic", false)
		case <-burnTick:
			now := p.cfg.Burn()
			if now && !burning {
				p.Trigger("fast_burn")
			}
			burning = now
		}
	}
}

// Trigger requests an immediate capture (reason "fast_burn", "overload",
// "manual", …). It returns false when suppressed — a capture is already in
// flight or the last triggered one is younger than MinGap. The capture runs
// asynchronously; Trigger never blocks on the CPU window.
func (p *Profiler) Trigger(reason string) bool {
	return p.start(reason, true)
}

func (p *Profiler) start(reason string, gapLimited bool) bool {
	p.mu.Lock()
	if p.inFlight || (gapLimited && !p.lastTrigger.IsZero() && time.Since(p.lastTrigger) < p.cfg.MinGap) {
		p.mu.Unlock()
		if p.skipped != nil {
			p.skipped.Inc()
		}
		return false
	}
	p.inFlight = true
	if gapLimited {
		p.lastTrigger = time.Now()
	}
	p.mu.Unlock()
	go p.capture(reason)
	return true
}

// capture runs one CPU window + heap snapshot and pushes it into the ring.
func (p *Profiler) capture(reason string) {
	meta := Meta{Time: time.Now(), Reason: reason, CPUWindowMS: p.cfg.CPUWindow.Milliseconds()}

	var cpu bytes.Buffer
	// StartCPUProfile fails when another CPU profile is running (e.g. an
	// operator hitting /debug/pprof/profile); keep the heap half.
	if err := runtimepprof.StartCPUProfile(&cpu); err == nil {
		select {
		case <-time.After(p.cfg.CPUWindow):
		case <-p.stop:
		}
		runtimepprof.StopCPUProfile()
	}

	var heap bytes.Buffer
	if hp := runtimepprof.Lookup("heap"); hp != nil {
		_ = hp.WriteTo(&heap, 0)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	meta.CPUBytes = cpu.Len()
	meta.HeapBytes = heap.Len()
	meta.HeapAlloc = ms.HeapAlloc
	meta.Goroutines = runtime.NumGoroutine()

	p.mu.Lock()
	p.seq++
	meta.ID = p.seq
	meta.HeapAllocDelta = int64(ms.HeapAlloc) - int64(p.lastAlloc)
	if p.lastAlloc == 0 {
		meta.HeapAllocDelta = 0
	}
	p.lastAlloc = ms.HeapAlloc
	p.ring = append(p.ring, &Capture{Meta: meta, CPU: cpu.Bytes(), Heap: heap.Bytes()})
	if len(p.ring) > p.cfg.Ring {
		p.ring = p.ring[len(p.ring)-p.cfg.Ring:]
	}
	p.inFlight = false
	p.mu.Unlock()

	if p.captures != nil {
		p.captures(reason).Inc()
	}
	if p.cfg.Logger != nil {
		p.cfg.Logger.Info("profile captured",
			"id", meta.ID, "reason", reason,
			"cpu_bytes", meta.CPUBytes, "heap_bytes", meta.HeapBytes,
			"heap_alloc", meta.HeapAlloc, "goroutines", meta.Goroutines)
	}
}

// List returns the retained captures' metadata, newest first.
func (p *Profiler) List() []Meta {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Meta, 0, len(p.ring))
	for i := len(p.ring) - 1; i >= 0; i-- {
		out = append(out, p.ring[i].Meta)
	}
	return out
}

// Get returns one retained capture with payloads.
func (p *Profiler) Get(id int) (*Capture, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.ring {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// Ring reports the configured capacity.
func (p *Profiler) Ring() int {
	if p == nil {
		return 0
	}
	return p.cfg.Ring
}

// String implements fmt.Stringer for log contexts.
func (p *Profiler) String() string {
	return fmt.Sprintf("prof.Profiler(ring=%d, window=%s)", p.cfg.Ring, p.cfg.CPUWindow)
}
