package prof

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestTriggerCaptures(t *testing.T) {
	p := New(Config{Ring: 4, CPUWindow: 50 * time.Millisecond, Registry: obs.NewRegistry()})
	if !p.Trigger("manual") {
		t.Fatal("first trigger suppressed")
	}
	waitFor(t, 5*time.Second, func() bool { return len(p.List()) == 1 })
	m := p.List()[0]
	if m.Reason != "manual" || m.ID != 1 {
		t.Errorf("unexpected meta: %+v", m)
	}
	if m.HeapBytes == 0 {
		t.Error("heap profile empty")
	}
	if m.Goroutines <= 0 {
		t.Error("goroutine count missing")
	}
	c, ok := p.Get(m.ID)
	if !ok || len(c.Heap) != m.HeapBytes {
		t.Error("Get did not return the capture payload")
	}
}

func TestTriggerMinGapSuppression(t *testing.T) {
	p := New(Config{Ring: 4, CPUWindow: 10 * time.Millisecond, MinGap: time.Hour})
	if !p.Trigger("overload") {
		t.Fatal("first trigger suppressed")
	}
	waitFor(t, 5*time.Second, func() bool { return len(p.List()) == 1 })
	if p.Trigger("overload") {
		t.Error("second trigger inside MinGap was not suppressed")
	}
	if got := len(p.List()); got != 1 {
		t.Errorf("ring holds %d captures, want 1", got)
	}
}

func TestRingBounded(t *testing.T) {
	p := New(Config{Ring: 2, CPUWindow: time.Millisecond, MinGap: time.Nanosecond})
	for i := 0; i < 5; i++ {
		p.Trigger("manual")
		waitFor(t, 5*time.Second, func() bool {
			p.mu.Lock()
			defer p.mu.Unlock()
			return !p.inFlight
		})
	}
	list := p.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d, want 2", len(list))
	}
	if list[0].ID <= list[1].ID {
		t.Errorf("list not newest-first: %+v", list)
	}
}

func TestBurnWatchFires(t *testing.T) {
	var burning atomic.Bool
	p := New(Config{Ring: 4, CPUWindow: time.Millisecond, MinGap: time.Millisecond,
		Burn: func() bool { return burning.Load() }})
	p.Start()
	defer p.Stop()
	burning.Store(true)
	waitFor(t, 10*time.Second, func() bool {
		for _, m := range p.List() {
			if m.Reason == "fast_burn" {
				return true
			}
		}
		return false
	})
}
