package obs

import (
	"runtime"
	"time"
)

// Saturation is a point-in-time snapshot of the process resources that
// exhaust first under load, reported on /healthz so a load generator (or
// an operator) can tell "slow because saturated" from "slow because
// broken".
type Saturation struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCycles       uint32  `json:"gc_cycles"`
	LastGCPauseUs  float64 `json:"last_gc_pause_us"`
	TotalGCPauseMs float64 `json:"total_gc_pause_ms"`
	InFlightHTTP   float64 `json:"in_flight_http"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

// ReadSaturation samples the runtime and, when reg is non-nil, the
// grdf_http_in_flight_requests gauge the HTTP middleware maintains.
func ReadSaturation(reg *Registry) Saturation {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Saturation{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
		TotalGCPauseMs: float64(ms.PauseTotalNs) / float64(time.Millisecond),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	if ms.NumGC > 0 {
		last := ms.PauseNs[(ms.NumGC+255)%256]
		s.LastGCPauseUs = float64(last) / float64(time.Microsecond)
	}
	if reg != nil {
		s.InFlightHTTP = reg.Gauge("grdf_http_in_flight_requests",
			"Requests currently being served.").Value()
	}
	return s
}
