package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Request-scoped tracing. A trace ID is minted (or adopted from the
// X-Trace-Id request header) by the HTTP middleware, stored in the request
// context, echoed in the response header, and attached to every structured
// log line — so one ID follows a query from the client interface through the
// decision engine, cache, reasoner and store, matching the Fig. 3 request
// path end to end. Spans (span.go) time the named stages within a trace.

// TraceHeader is the HTTP header carrying the trace ID in both directions.
const TraceHeader = "X-Trace-Id"

type ctxKey int

const (
	traceIDKey ctxKey = iota
	loggerKey
)

// NewID returns a 16-hex-char random identifier.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; degrade to a
		// fixed marker rather than take the process down over telemetry.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns ctx carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceID returns the trace ID carried by ctx, or "" when absent.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// EnsureTraceID returns ctx with a trace ID, minting one when absent.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewID()
	return WithTraceID(ctx, id), id
}
