package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// HTTP middleware: the client-interface edge of the Fig. 3 service. Every
// request gets a trace ID (minted, or adopted from X-Trace-Id), an
// in-flight gauge increment, a per-route latency observation, a
// status-code-labelled request counter, and one structured log line.

// MiddlewareConfig configures Middleware. Zero-value fields degrade
// gracefully: a nil Registry records nothing, a nil Logger logs nothing,
// a nil Route falls back to the raw URL path.
type MiddlewareConfig struct {
	// Registry receives http metrics (nil disables).
	Registry *Registry
	// Logger receives one line per request (nil disables).
	Logger *slog.Logger
	// Route maps a request to a bounded label value (e.g. the mux pattern).
	// Bounding matters: raw paths with IDs would explode series cardinality.
	Route func(*http.Request) string
	// Panic writes the 500 response after a recovered handler panic, when
	// nothing has been written yet (nil falls back to a plain 500). The
	// recovery itself — counter, stack-trace log, keeping the connection
	// and process alive — happens regardless.
	Panic func(w http.ResponseWriter, r *http.Request, v any)
	// Tracer, when set, opens a root span per request (named after the
	// route), adopting X-Parent-Span as a remote parent so a federation
	// peer's tree hangs under the originating request.
	Tracer *Tracer
	// SLO, when set, receives one (route, latency, status) observation
	// per request for sliding-window objective tracking.
	SLO *SLOEngine
	// SLOSkip, when set, excludes matching routes from SLO accounting.
	// Long-poll endpoints (the replication WAL stream) park on purpose for
	// seconds at a time; counting them would poison the latency quantiles.
	SLOSkip func(route string) bool
}

// statusWriter captures the response status code and bytes written.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Middleware wraps next with panic recovery, tracing, metrics and logging.
// A handler panic is contained to its request: the connection gets a 500
// (via cfg.Panic when set), grdf_http_panics_total increments, and the
// stack is logged — the server keeps serving.
func Middleware(cfg MiddlewareConfig, next http.Handler) http.Handler {
	reg := cfg.Registry
	inFlight := reg.Gauge("grdf_http_in_flight_requests",
		"Requests currently being served.")
	panics := reg.Counter("grdf_http_panics_total",
		"Handler panics recovered by the middleware.")
	logger := cfg.Logger
	if logger == nil {
		logger = NopLogger()
	}
	route := cfg.Route
	if route == nil {
		route = func(r *http.Request) string { return r.URL.Path }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := r.Header.Get(TraceHeader)
		if traceID == "" || len(traceID) > 64 {
			traceID = NewID()
		}
		ctx := WithLogger(WithTraceID(r.Context(), traceID), logger)
		w.Header().Set(TraceHeader, traceID)

		var root *Span
		if cfg.Tracer != nil {
			parent := r.Header.Get(ParentSpanHeader)
			if len(parent) > 64 {
				parent = ""
			}
			ctx, root = cfg.Tracer.StartTrace(ctx, "http "+route(r), parent)
		}

		inFlight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		req := r.WithContext(ctx)
		// The accounting runs deferred so a panicking handler still records
		// its request before the recovery turns it into a 500.
		defer func() {
			if v := recover(); v != nil {
				panics.Inc()
				Logger(ctx).Error("handler panic",
					"route", route(r), "panic", fmt.Sprint(v),
					"stack", string(debug.Stack()))
				if sw.status == 0 {
					// Nothing written yet: the response is still ours.
					if cfg.Panic != nil {
						cfg.Panic(sw, req, v)
					}
					if sw.status == 0 {
						sw.WriteHeader(http.StatusInternalServerError)
					}
				}
			}
			inFlight.Dec()
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			elapsed := time.Since(start)
			rt := route(r)
			if root != nil {
				root.SetAttr("method", r.Method)
				root.SetAttr("status", itoa(sw.status))
				if sw.status >= 500 {
					root.Fail(nil)
				}
				root.End()
			}
			if cfg.SLOSkip == nil || !cfg.SLOSkip(rt) {
				cfg.SLO.Record(rt, elapsed, sw.status)
			}
			reg.Counter("grdf_http_requests_total", "Completed HTTP requests.",
				"route", rt, "code", itoa(sw.status)).Inc()
			reg.Histogram("grdf_http_request_duration_seconds",
				"HTTP request latency by route.", nil, "route", rt).
				ObserveWithExemplar(elapsed.Seconds(), traceID)
			Logger(ctx).Info("http request",
				"method", r.Method,
				"route", rt,
				"path", r.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration_us", elapsed.Microseconds(),
			)
		}()
		next.ServeHTTP(sw, req)
	})
}

// itoa renders small positive ints without strconv allocation games — status
// codes are three digits.
func itoa(v int) string {
	if v < 0 {
		v = 0
	}
	buf := [8]byte{}
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}
