// Package workload aggregates per-query-shape statistics: the server's
// workload-level lens. Every evaluated query lands in a bounded,
// lock-striped table keyed by its parse-time fingerprint (see
// internal/sparql/fingerprint.go), accumulating counts, a latency sketch,
// row totals, planner reorders, plan-quality drift, shed/error/degraded
// outcomes and a trace exemplar. GET /v1/queries serves the table; the
// grdf_workload_* and grdf_plan_misestimate_total metrics export its
// totals.
//
// Cardinality is bounded with the space-saving heavy-hitters scheme: each
// stripe holds at most capacity/stripes entries, and when a new fingerprint
// arrives at a full stripe it replaces the stripe's smallest entry,
// inheriting its count as the admission error bound (reported per entry as
// count_error). Heavy hitters therefore survive churn; one-off shapes
// rotate through the tail.
package workload

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// numStripes spreads fingerprints over independently locked segments so a
// hot table does not serialize the query path.
const numStripes = 16

// DriftWarnRatio is the est-vs-actual ratio past which a fingerprint is
// considered planner-misjudged: a structured warning fires when an entry
// first crosses it, and the entry's drift band reports it from then on.
const DriftWarnRatio = 10

// Config tunes a Table.
type Config struct {
	// Capacity bounds the number of fingerprints tracked across the whole
	// table (default 256, minimum one per stripe).
	Capacity int
	// Registry, when set, receives the grdf_workload_* metrics and the
	// grdf_plan_misestimate_total{band} counter.
	Registry *obs.Registry
	// Logger, when set, receives the structured plan-drift warning the
	// first time a fingerprint crosses DriftWarnRatio.
	Logger *slog.Logger
}

// Observation is one evaluated query, as reported by the SPARQL engine's
// stats sink plus the serving layer's context.
type Observation struct {
	Fingerprint uint64
	// Canonical is the redacted canonical form, stored once per entry as
	// the example query.
	Canonical string
	// Kind is the query form label ("SELECT", "ASK", …).
	Kind    string
	Latency time.Duration
	// RowsScanned and RowsOut total index entries scanned and solutions
	// surviving each join step.
	RowsScanned int64
	RowsOut     int64
	// Reordered marks an evaluation whose planner deviated from textual
	// order.
	Reordered bool
	// MaxMisestimate is the worst per-step est-vs-actual ratio (≥1, or 0
	// when no planned step ran).
	MaxMisestimate float64
	// Err marks a failed evaluation; Degraded a partial (federated) answer.
	Err      bool
	Degraded bool
	// TraceID, when non-empty, becomes the entry's exemplar.
	TraceID string
}

// entry is one fingerprint's accumulated state. Guarded by its stripe lock.
type entry struct {
	fp         uint64
	canonical  string
	kind       string
	count      uint64
	countErr   uint64 // space-saving admission error bound
	errors     uint64
	shed       uint64
	degraded   uint64
	reorders   uint64
	rowsScan   uint64
	rowsOut    uint64
	sketch     *obs.LatencySketch
	maxMis     float64
	misSteps   uint64 // observations at or past DriftWarnRatio
	warned     bool
	lastTrace  string
	lastSeenNS int64
}

type stripe struct {
	mu      sync.Mutex
	entries map[uint64]*entry
}

// Table is the lock-striped per-fingerprint stats table.
type Table struct {
	perStripe int
	stripes   [numStripes]stripe
	logger    *slog.Logger

	observations *obs.Counter
	evictions    *obs.Counter
	sheds        *obs.Counter
	misBand      func(band string) *obs.Counter
}

// New builds a Table and registers its metrics on cfg.Registry (nil skips
// metrics).
func New(cfg Config) *Table {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	per := capacity / numStripes
	if per < 1 {
		per = 1
	}
	t := &Table{perStripe: per, logger: cfg.Logger}
	for i := range t.stripes {
		t.stripes[i].entries = make(map[uint64]*entry, per)
	}
	if reg := cfg.Registry; reg != nil {
		t.observations = reg.Counter("grdf_workload_observations_total",
			"Query evaluations folded into the workload stats table.")
		t.evictions = reg.Counter("grdf_workload_evictions_total",
			"Fingerprints displaced by the space-saving top-K bound.")
		t.sheds = reg.Counter("grdf_workload_sheds_total",
			"Admission-shed requests attributed to a query fingerprint.")
		t.misBand = func(band string) *obs.Counter {
			return reg.Counter("grdf_plan_misestimate_total",
				"Evaluations whose worst plan step missed its cardinality estimate, by drift band.",
				"band", band)
		}
		reg.GaugeFunc("grdf_workload_fingerprints",
			"Distinct query fingerprints currently tracked.",
			func() float64 { return float64(t.Len()) })
	}
	return t
}

func (t *Table) stripeFor(fp uint64) *stripe {
	// The fingerprint is already an FNV-64 hash; its low bits are
	// well-mixed enough to pick a stripe directly.
	return &t.stripes[fp%numStripes]
}

// upsert returns the entry for fp in its locked stripe, admitting (and, at
// capacity, displacing the smallest entry) as needed. The caller must hold
// st.mu and must not retain the entry past unlock.
func (t *Table) upsert(st *stripe, fp uint64, canonical, kind string) *entry {
	if e, ok := st.entries[fp]; ok {
		if e.canonical == "" {
			e.canonical, e.kind = canonical, kind
		}
		return e
	}
	e := &entry{fp: fp, canonical: canonical, kind: kind, sketch: obs.NewLatencySketch()}
	if len(st.entries) >= t.perStripe {
		// Space-saving: displace the minimum-count entry; the newcomer
		// inherits its count so a true heavy hitter can never be held out
		// by a stream of one-off shapes.
		var min *entry
		for _, cand := range st.entries {
			if min == nil || cand.count < min.count {
				min = cand
			}
		}
		delete(st.entries, min.fp)
		e.count, e.countErr = min.count, min.count
		if t.evictions != nil {
			t.evictions.Inc()
		}
	}
	st.entries[fp] = e
	return e
}

// Observe folds one evaluated query into the table.
func (t *Table) Observe(o Observation) {
	if t == nil {
		return
	}
	st := t.stripeFor(o.Fingerprint)
	st.mu.Lock()
	e := t.upsert(st, o.Fingerprint, o.Canonical, o.Kind)
	e.count++
	e.sketch.Record(o.Latency)
	e.rowsScan += uint64(o.RowsScanned)
	e.rowsOut += uint64(o.RowsOut)
	if o.Reordered {
		e.reorders++
	}
	if o.Err {
		e.errors++
	}
	if o.Degraded {
		e.degraded++
	}
	if o.MaxMisestimate > e.maxMis {
		e.maxMis = o.MaxMisestimate
	}
	if o.MaxMisestimate >= DriftWarnRatio {
		e.misSteps++
	}
	if o.TraceID != "" {
		e.lastTrace = o.TraceID
	}
	e.lastSeenNS = time.Now().UnixNano()
	warn := o.MaxMisestimate >= DriftWarnRatio && !e.warned
	if warn {
		e.warned = true
	}
	canonical, worst := e.canonical, e.maxMis
	st.mu.Unlock()

	if t.observations != nil {
		t.observations.Inc()
	}
	if band := misestimateBand(o.MaxMisestimate); band != "" && t.misBand != nil {
		t.misBand(band).Inc()
	}
	if warn && t.logger != nil {
		// The raw signal for future planner fixes: this shape's estimates
		// are off by an order of magnitude.
		t.logger.Warn("plan drift",
			"fingerprint", fmt.Sprintf("%016x", o.Fingerprint),
			"misestimate", fmt.Sprintf("%.1f", worst),
			"query", canonical)
	}
}

// RecordShed attributes one admission-shed request to fp: the request never
// reached the engine, but the heavy hitter causing the shedding must stay
// visible in /v1/queries.
func (t *Table) RecordShed(fp uint64, canonical, kind string) {
	if t == nil {
		return
	}
	st := t.stripeFor(fp)
	st.mu.Lock()
	e := t.upsert(st, fp, canonical, kind)
	e.shed++
	e.lastSeenNS = time.Now().UnixNano()
	st.mu.Unlock()
	if t.sheds != nil {
		t.sheds.Inc()
	}
}

// RecordDegraded attributes one degraded (partial federated) answer to fp.
func (t *Table) RecordDegraded(fp uint64, canonical, kind string) {
	if t == nil {
		return
	}
	st := t.stripeFor(fp)
	st.mu.Lock()
	e := t.upsert(st, fp, canonical, kind)
	e.degraded++
	e.lastSeenNS = time.Now().UnixNano()
	st.mu.Unlock()
}

// misestimateBand buckets a worst-step ratio for the misestimate counter;
// ratios under 2 are in-estimate and uncounted.
func misestimateBand(ratio float64) string {
	switch {
	case ratio >= 100:
		return "100x"
	case ratio >= DriftWarnRatio:
		return "10x"
	case ratio >= 2:
		return "2x"
	}
	return ""
}

// Snapshot is one fingerprint's exported state.
type Snapshot struct {
	// Fingerprint is the zero-padded hex form of the FNV-64 hash.
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind,omitempty"`
	// Example is the redacted canonical query form.
	Example string `json:"example"`
	Count   uint64 `json:"count"`
	// CountError bounds the space-saving admission overestimate: the true
	// count is within [count-count_error, count].
	CountError uint64  `json:"count_error,omitempty"`
	Errors     uint64  `json:"errors,omitempty"`
	Shed       uint64  `json:"shed,omitempty"`
	Degraded   uint64  `json:"degraded,omitempty"`
	Reorders   uint64  `json:"plan_reorders,omitempty"`
	RowsScan   uint64  `json:"rows_scanned"`
	RowsOut    uint64  `json:"rows_out"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	MeanMs     float64 `json:"mean_ms"`
	// MaxMisestimate is the worst est-vs-actual plan ratio seen; DriftBand
	// labels it ("2x", "10x", "100x"; empty below 2).
	MaxMisestimate float64 `json:"max_misestimate,omitempty"`
	DriftBand      string  `json:"drift_band,omitempty"`
	// DriftCount counts evaluations at or past DriftWarnRatio.
	DriftCount  uint64    `json:"drift_count,omitempty"`
	LastTraceID string    `json:"last_trace_id,omitempty"`
	LastSeen    time.Time `json:"last_seen"`
}

func (e *entry) snapshot() Snapshot {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return Snapshot{
		Fingerprint:    fmt.Sprintf("%016x", e.fp),
		Kind:           e.kind,
		Example:        e.canonical,
		Count:          e.count,
		CountError:     e.countErr,
		Errors:         e.errors,
		Shed:           e.shed,
		Degraded:       e.degraded,
		Reorders:       e.reorders,
		RowsScan:       e.rowsScan,
		RowsOut:        e.rowsOut,
		P50Ms:          ms(e.sketch.Quantile(0.50)),
		P90Ms:          ms(e.sketch.Quantile(0.90)),
		P99Ms:          ms(e.sketch.Quantile(0.99)),
		MaxMs:          ms(e.sketch.Max()),
		MeanMs:         ms(e.sketch.Mean()),
		MaxMisestimate: e.maxMis,
		DriftBand:      misestimateBand(e.maxMis),
		DriftCount:     e.misSteps,
		LastTraceID:    e.lastTrace,
		LastSeen:       time.Unix(0, e.lastSeenNS),
	}
}

// TopK returns up to n snapshots ordered by count (descending; ties by
// fingerprint for determinism).
func (t *Table) TopK(n int) []Snapshot {
	if t == nil || n <= 0 {
		return nil
	}
	all := t.snapshots()
	sortSnapshots(all)
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Get returns the snapshot for one fingerprint.
func (t *Table) Get(fp uint64) (Snapshot, bool) {
	if t == nil {
		return Snapshot{}, false
	}
	st := t.stripeFor(fp)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[fp]
	if !ok {
		return Snapshot{}, false
	}
	return e.snapshot(), true
}

// Len counts tracked fingerprints.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		n += len(st.entries)
		st.mu.Unlock()
	}
	return n
}

// Capacity is the table's fingerprint bound.
func (t *Table) Capacity() int {
	if t == nil {
		return 0
	}
	return t.perStripe * numStripes
}

func (t *Table) snapshots() []Snapshot {
	out := make([]Snapshot, 0, 64)
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for _, e := range st.entries {
			out = append(out, e.snapshot())
		}
		st.mu.Unlock()
	}
	return out
}

func sortSnapshots(s []Snapshot) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Count != s[j].Count {
			return s[i].Count > s[j].Count
		}
		return s[i].Fingerprint < s[j].Fingerprint
	})
}
