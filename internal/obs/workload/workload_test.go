package workload

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func obsFor(fp uint64, d time.Duration) Observation {
	return Observation{
		Fingerprint: fp,
		Canonical:   fmt.Sprintf("SELECT ?v0 WHERE {BGP[?v0 <http://ex/p%d> $iri.]}", fp),
		Kind:        "SELECT",
		Latency:     d,
		RowsScanned: 10,
		RowsOut:     3,
	}
}

func TestTableAccumulates(t *testing.T) {
	reg := obs.NewRegistry()
	tab := New(Config{Capacity: 64, Registry: reg})
	for i := 0; i < 100; i++ {
		tab.Observe(obsFor(7, time.Millisecond))
	}
	tab.Observe(Observation{Fingerprint: 7, Latency: time.Millisecond, Err: true, Reordered: true, TraceID: "t-123"})
	tab.RecordShed(7, "", "")
	snap, ok := tab.Get(7)
	if !ok {
		t.Fatal("fingerprint 7 missing")
	}
	if snap.Count != 101 || snap.Errors != 1 || snap.Shed != 1 || snap.Reorders != 1 {
		t.Errorf("unexpected snapshot: %+v", snap)
	}
	if snap.LastTraceID != "t-123" {
		t.Errorf("trace exemplar not retained: %+v", snap)
	}
	if snap.P50Ms <= 0 || snap.P99Ms < snap.P50Ms {
		t.Errorf("implausible quantiles: p50=%v p99=%v", snap.P50Ms, snap.P99Ms)
	}
	if snap.RowsScan != 1000 || snap.RowsOut != 300 {
		t.Errorf("row totals wrong: %+v", snap)
	}
}

func TestTableBounded(t *testing.T) {
	tab := New(Config{Capacity: 64})
	// A heavy hitter first, then a long tail of one-off shapes.
	for i := 0; i < 500; i++ {
		tab.Observe(obsFor(1, time.Millisecond))
	}
	for fp := uint64(2); fp < 5000; fp++ {
		tab.Observe(obsFor(fp, time.Millisecond))
	}
	if n, cap := tab.Len(), tab.Capacity(); n > cap {
		t.Fatalf("table exceeded its bound: %d > %d", n, cap)
	}
	// The space-saving discipline must keep the heavy hitter on top.
	top := tab.TopK(1)
	if len(top) != 1 || top[0].Fingerprint != fmt.Sprintf("%016x", uint64(1)) {
		t.Fatalf("heavy hitter displaced: %+v", top)
	}
	if top[0].Count < 500 {
		t.Errorf("heavy hitter count dropped: %+v", top[0])
	}
}

func TestTopKOrdering(t *testing.T) {
	tab := New(Config{Capacity: 64})
	for fp := uint64(1); fp <= 5; fp++ {
		for i := uint64(0); i < fp*10; i++ {
			tab.Observe(obsFor(fp, time.Millisecond))
		}
	}
	top := tab.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	if top[0].Count < top[1].Count || top[1].Count < top[2].Count {
		t.Errorf("TopK not descending: %v %v %v", top[0].Count, top[1].Count, top[2].Count)
	}
}

func TestMisestimateBandsAndDrift(t *testing.T) {
	reg := obs.NewRegistry()
	tab := New(Config{Capacity: 64, Registry: reg})
	tab.Observe(Observation{Fingerprint: 9, Latency: time.Millisecond, MaxMisestimate: 1.5})
	snap, _ := tab.Get(9)
	if snap.DriftBand != "" {
		t.Errorf("in-estimate observation got band %q", snap.DriftBand)
	}
	tab.Observe(Observation{Fingerprint: 9, Latency: time.Millisecond, MaxMisestimate: 40})
	snap, _ = tab.Get(9)
	if snap.DriftBand != "10x" || snap.MaxMisestimate != 40 || snap.DriftCount != 1 {
		t.Errorf("drift not tracked: %+v", snap)
	}
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "grdf_plan_misestimate_total" {
			found = true
		}
	}
	if !found {
		t.Error("grdf_plan_misestimate_total not registered after a misestimate")
	}
}

func TestTableRaceClean(t *testing.T) {
	tab := New(Config{Capacity: 32, Registry: obs.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				fp := uint64(g*37+i) % 200
				switch i % 3 {
				case 0:
					tab.Observe(obsFor(fp, time.Duration(i)*time.Microsecond))
				case 1:
					tab.RecordShed(fp, "", "")
				default:
					tab.TopK(10)
					tab.Get(fp)
					tab.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() > tab.Capacity() {
		t.Fatalf("bound violated under concurrency: %d > %d", tab.Len(), tab.Capacity())
	}
}
