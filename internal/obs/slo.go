package obs

import (
	"sort"
	"sync"
	"time"
)

// SLOEngine tracks per-route latency and availability against configured
// service-level objectives over two sliding windows (a fast window that
// catches sudden regressions and a slow window that tracks sustained
// budget burn, per the multi-window burn-rate alerting recipe). Latency
// is held in log-bucketed LatencySketch histograms inside a ring of
// fixed-duration time buckets, so window queries are a merge over the
// buckets covering the window — O(buckets), no per-request allocation,
// and old traffic ages out at bucket granularity.

// SLOConfig configures an SLOEngine. Zero fields take defaults.
type SLOConfig struct {
	// LatencyTarget is the objective for LatencyQuantile (default 100ms).
	LatencyTarget time.Duration
	// LatencyQuantile is the quantile the latency objective applies to
	// (default 0.99).
	LatencyQuantile float64
	// AvailabilityTarget is the fraction of requests that must not fail
	// (default 0.999). A request fails when its status code is >= 500.
	AvailabilityTarget float64
	// FastWindow is the short alerting window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the long budget window (default 1h). Must be a
	// multiple of the bucket duration, SlowWindow/sloBuckets.
	SlowWindow time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

const sloBuckets = 60

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 100 * time.Millisecond
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile >= 1 {
		c.LatencyQuantile = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// sloBucket is one time slice of one route's traffic.
type sloBucket struct {
	epoch  int64 // bucket index since the unix epoch; -1 when empty
	sketch *LatencySketch
	total  uint64
	errors uint64
}

// sloSeries is the ring of time buckets for one route.
type sloSeries struct {
	mu      sync.Mutex
	buckets []sloBucket
}

// SLOEngine is safe for concurrent use. A nil engine records nothing.
type SLOEngine struct {
	cfg       SLOConfig
	bucketDur time.Duration

	mu     sync.RWMutex
	routes map[string]*sloSeries
}

// NewSLOEngine returns an engine with cfg (zero fields defaulted).
func NewSLOEngine(cfg SLOConfig) *SLOEngine {
	cfg = cfg.withDefaults()
	return &SLOEngine{
		cfg:       cfg,
		bucketDur: cfg.SlowWindow / sloBuckets,
		routes:    make(map[string]*sloSeries),
	}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *SLOEngine) Config() SLOConfig {
	if e == nil {
		return SLOConfig{}.withDefaults()
	}
	return e.cfg
}

func (e *SLOEngine) series(route string) *sloSeries {
	e.mu.RLock()
	s := e.routes[route]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s = e.routes[route]; s == nil {
		// One extra bucket beyond the slow window so the bucket currently
		// being written never evicts one still inside the window.
		s = &sloSeries{buckets: make([]sloBucket, sloBuckets+1)}
		for i := range s.buckets {
			s.buckets[i].epoch = -1
		}
		e.routes[route] = s
	}
	return s
}

// Record accounts one request: d is its latency, status its HTTP status
// code. Safe on a nil engine. Route labels must be bounded (the gsacs
// middleware passes its routeLabel), since each route owns a bucket ring.
func (e *SLOEngine) Record(route string, d time.Duration, status int) {
	if e == nil {
		return
	}
	epoch := e.cfg.now().UnixNano() / int64(e.bucketDur)
	s := e.series(route)
	slot := int(epoch % int64(len(s.buckets)))

	s.mu.Lock()
	b := &s.buckets[slot]
	if b.epoch != epoch {
		// The slot belongs to an expired window; start it fresh.
		b.epoch = epoch
		b.sketch = NewLatencySketch()
		b.total, b.errors = 0, 0
	}
	sk := b.sketch
	b.total++
	if status >= 500 {
		b.errors++
	}
	s.mu.Unlock()

	sk.Record(d)
}

// WindowStats summarises one window of one route (or all routes merged).
type WindowStats struct {
	Window    string  `json:"window"`
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	P999Ms    float64 `json:"p999_ms"`
	MaxMs     float64 `json:"max_ms"`
	// BurnRate is the error-budget burn rate: error rate divided by the
	// budget (1 - availability target). 1.0 burns the budget exactly at
	// the rate it refills; >1 exhausts it early.
	BurnRate float64 `json:"burn_rate"`
}

// collect merges the buckets of s covering window, as of now.
func (e *SLOEngine) collect(s *sloSeries, window time.Duration) (sk []*LatencySketch, total, errs uint64) {
	nowEpoch := e.cfg.now().UnixNano() / int64(e.bucketDur)
	span := int64(window / e.bucketDur)
	if span < 1 {
		span = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch < 0 || b.epoch > nowEpoch || nowEpoch-b.epoch >= span {
			continue
		}
		sk = append(sk, b.sketch)
		total += b.total
		errs += b.errors
	}
	return sk, total, errs
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (e *SLOEngine) window(name string, window time.Duration, series []*sloSeries) WindowStats {
	var sketches []*LatencySketch
	var total, errs uint64
	for _, s := range series {
		sk, t, er := e.collect(s, window)
		sketches = append(sketches, sk...)
		total += t
		errs += er
	}
	merged := MergeSketches(sketches...)
	w := WindowStats{Window: name, Count: total, Errors: errs}
	if total > 0 {
		w.ErrorRate = float64(errs) / float64(total)
		w.BurnRate = w.ErrorRate / (1 - e.cfg.AvailabilityTarget)
	}
	w.P50Ms = durMs(merged.Quantile(0.50))
	w.P90Ms = durMs(merged.Quantile(0.90))
	w.P99Ms = durMs(merged.Quantile(0.99))
	w.P999Ms = durMs(merged.Quantile(0.999))
	w.MaxMs = durMs(merged.Max())
	return w
}

// RouteStatus is the per-route block of SLOStatus.
type RouteStatus struct {
	Route string      `json:"route"`
	Fast  WindowStats `json:"fast"`
	Slow  WindowStats `json:"slow"`
}

// SLOStatus is the JSON shape served at /v1/slo.
type SLOStatus struct {
	LatencyTargetMs    float64       `json:"latency_target_ms"`
	LatencyQuantile    float64       `json:"latency_quantile"`
	AvailabilityTarget float64       `json:"availability_target"`
	FastWindow         string        `json:"fast_window"`
	SlowWindow         string        `json:"slow_window"`
	Fast               WindowStats   `json:"fast"`
	Slow               WindowStats   `json:"slow"`
	LatencyOK          bool          `json:"latency_ok"`
	AvailabilityOK     bool          `json:"availability_ok"`
	Routes             []RouteStatus `json:"routes"`
}

// quantileMs picks the configured objective quantile out of w.
func (e *SLOEngine) quantileMs(w WindowStats) float64 {
	switch {
	case e.cfg.LatencyQuantile <= 0.50:
		return w.P50Ms
	case e.cfg.LatencyQuantile <= 0.90:
		return w.P90Ms
	case e.cfg.LatencyQuantile <= 0.99:
		return w.P99Ms
	default:
		return w.P999Ms
	}
}

// Status computes the full SLO report. Verdicts are judged on the fast
// window: LatencyOK when the objective quantile is under target (vacuously
// true with no traffic), AvailabilityOK when the fast burn rate is <= 1.
func (e *SLOEngine) Status() SLOStatus {
	if e == nil {
		e = NewSLOEngine(SLOConfig{})
	}
	e.mu.RLock()
	names := make([]string, 0, len(e.routes))
	for name := range e.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	all := make([]*sloSeries, 0, len(names))
	byName := make([]*sloSeries, len(names))
	for i, name := range names {
		byName[i] = e.routes[name]
		all = append(all, e.routes[name])
	}
	e.mu.RUnlock()

	st := SLOStatus{
		LatencyTargetMs:    durMs(e.cfg.LatencyTarget),
		LatencyQuantile:    e.cfg.LatencyQuantile,
		AvailabilityTarget: e.cfg.AvailabilityTarget,
		FastWindow:         e.cfg.FastWindow.String(),
		SlowWindow:         e.cfg.SlowWindow.String(),
		Fast:               e.window("fast", e.cfg.FastWindow, all),
		Slow:               e.window("slow", e.cfg.SlowWindow, all),
		Routes:             make([]RouteStatus, 0, len(names)),
	}
	st.LatencyOK = st.Fast.Count == 0 ||
		e.quantileMs(st.Fast) <= st.LatencyTargetMs
	st.AvailabilityOK = st.Fast.BurnRate <= 1
	for i, name := range names {
		one := []*sloSeries{byName[i]}
		st.Routes = append(st.Routes, RouteStatus{
			Route: name,
			Fast:  e.window("fast", e.cfg.FastWindow, one),
			Slow:  e.window("slow", e.cfg.SlowWindow, one),
		})
	}
	return st
}

// Instrument registers grdf_slo_* metrics on reg, computed on scrape from
// the engine's windows. Gauges carry a window label ("fast"/"slow");
// targets and breach indicators are unlabelled.
func (e *SLOEngine) Instrument(reg *Registry) {
	if e == nil || reg == nil {
		return
	}
	reg.Gauge("grdf_slo_latency_target_seconds",
		"Configured latency objective.").Set(e.cfg.LatencyTarget.Seconds())
	reg.Gauge("grdf_slo_latency_quantile",
		"Quantile the latency objective applies to.").Set(e.cfg.LatencyQuantile)
	reg.Gauge("grdf_slo_availability_target",
		"Configured availability objective.").Set(e.cfg.AvailabilityTarget)
	for _, w := range []struct {
		name string
		dur  time.Duration
	}{{"fast", e.cfg.FastWindow}, {"slow", e.cfg.SlowWindow}} {
		w := w
		stats := func() WindowStats {
			e.mu.RLock()
			all := make([]*sloSeries, 0, len(e.routes))
			for _, s := range e.routes {
				all = append(all, s)
			}
			e.mu.RUnlock()
			return e.window(w.name, w.dur, all)
		}
		reg.GaugeFunc("grdf_slo_latency_seconds",
			"Objective-quantile latency over the window.",
			func() float64 { return e.quantileMs(stats()) / 1e3 },
			"window", w.name)
		reg.GaugeFunc("grdf_slo_error_rate",
			"Fraction of requests failing (status >= 500) over the window.",
			func() float64 { return stats().ErrorRate },
			"window", w.name)
		reg.GaugeFunc("grdf_slo_burn_rate",
			"Error-budget burn rate over the window (1.0 = budget spent "+
				"exactly as it refills).",
			func() float64 { return stats().BurnRate },
			"window", w.name)
	}
	reg.GaugeFunc("grdf_slo_latency_breached",
		"1 when the fast-window objective-quantile latency exceeds target.",
		func() float64 {
			if st := e.Status(); !st.LatencyOK {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("grdf_slo_availability_breached",
		"1 when the fast-window burn rate exceeds 1.",
		func() float64 {
			if st := e.Status(); !st.AvailabilityOK {
				return 1
			}
			return 0
		})
}
