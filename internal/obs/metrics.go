package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// addFloat atomically adds delta to the float64 stored as bits in u.
func addFloat(u *atomic.Uint64, delta float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-op), so un-instrumented components pay nothing.
type Counter series

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas panic.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter decrease by %v", delta))
	}
	addFloat(&c.bits, delta)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return (*series)(c).value()
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge series

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return (*series)(g).value()
}

// Histogram counts observations into fixed upper-bound buckets, tracking
// sum and count. Observe is lock-free. Nil-safe.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the accumulated total of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns (count, sum, cumulative-bucket-map keyed by formatted
// upper bound including "+Inf").
func (h *Histogram) snapshot() (uint64, float64, map[string]uint64) {
	cum := make(map[string]uint64, len(h.bounds)+1)
	var running uint64
	for i, ub := range h.bounds {
		running += h.counts[i].Load()
		cum[formatFloat(ub)] = running
	}
	count := h.count.Load()
	cum["+Inf"] = count
	return count, h.Sum(), cum
}

// write renders the histogram in Prometheus text format, merging the series
// labels with the le bucket label.
func (h *Histogram) write(sb *strings.Builder, name, labels string) {
	bucket := func(le string, v uint64) {
		sb.WriteString(name)
		sb.WriteString("_bucket{")
		if labels != "" {
			sb.WriteString(labels)
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "le=%q} %d\n", le, v)
	}
	var running uint64
	for i, ub := range h.bounds {
		running += h.counts[i].Load()
		bucket(formatFloat(ub), running)
	}
	count := h.count.Load()
	bucket("+Inf", count)
	suffix := func(kind, val string) {
		sb.WriteString(name)
		sb.WriteString(kind)
		if labels != "" {
			sb.WriteByte('{')
			sb.WriteString(labels)
			sb.WriteByte('}')
		}
		sb.WriteByte(' ')
		sb.WriteString(val)
		sb.WriteByte('\n')
	}
	suffix("_sum", formatFloat(h.Sum()))
	suffix("_count", formatFloat(float64(count)))
}
