package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// addFloat atomically adds delta to the float64 stored as bits in u.
func addFloat(u *atomic.Uint64, delta float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-op), so un-instrumented components pay nothing.
type Counter series

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas panic.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter decrease by %v", delta))
	}
	addFloat(&c.bits, delta)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return (*series)(c).value()
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge series

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return (*series)(g).value()
}

// exemplar links one sampled observation to the trace that produced it, in
// the OpenMetrics sense: an outlier bucket on a dashboard becomes a click
// through to the span tree at /v1/traces/{id}.
type exemplar struct {
	traceID string
	value   float64
}

// Histogram counts observations into fixed upper-bound buckets, tracking
// sum and count. Observe is lock-free. Nil-safe.
type Histogram struct {
	bounds    []float64 // sorted upper bounds, exclusive of +Inf
	counts    []atomic.Uint64
	count     atomic.Uint64
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[exemplar] // len(bounds)+1; last is +Inf
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// bucketIndex returns the bucket v falls into (len(bounds) means +Inf).
func (h *Histogram) bucketIndex(v float64) int {
	for i, ub := range h.bounds {
		if v <= ub {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := h.bucketIndex(v); i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveWithExemplar records one sample and, when traceID is non-empty,
// replaces the bucket's exemplar with (traceID, v). Last writer wins — an
// exemplar is a sample, not an aggregate, so no coordination is needed.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucketIndex(v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	if traceID != "" && i < len(h.exemplars) {
		h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the accumulated total of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns (count, sum, cumulative-bucket-map keyed by formatted
// upper bound including "+Inf").
func (h *Histogram) snapshot() (uint64, float64, map[string]uint64) {
	cum := make(map[string]uint64, len(h.bounds)+1)
	var running uint64
	for i, ub := range h.bounds {
		running += h.counts[i].Load()
		cum[formatFloat(ub)] = running
	}
	count := h.count.Load()
	cum["+Inf"] = count
	return count, h.Sum(), cum
}

// write renders the histogram in Prometheus text format, merging the series
// labels with the le bucket label. Bucket lines whose bucket holds an
// exemplar gain an OpenMetrics-style `# {trace_id="..."} value` suffix.
func (h *Histogram) write(sb *strings.Builder, name, labels string) {
	bucket := func(le string, v uint64, ex *exemplar) {
		sb.WriteString(name)
		sb.WriteString("_bucket{")
		if labels != "" {
			sb.WriteString(labels)
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "le=%q} %d", le, v)
		if ex != nil {
			fmt.Fprintf(sb, " # {trace_id=%q} %s", ex.traceID, formatFloat(ex.value))
		}
		sb.WriteByte('\n')
	}
	var running uint64
	for i, ub := range h.bounds {
		running += h.counts[i].Load()
		bucket(formatFloat(ub), running, h.exemplars[i].Load())
	}
	count := h.count.Load()
	bucket("+Inf", count, h.exemplars[len(h.bounds)].Load())
	suffix := func(kind, val string) {
		sb.WriteString(name)
		sb.WriteString(kind)
		if labels != "" {
			sb.WriteByte('{')
			sb.WriteString(labels)
			sb.WriteByte('}')
		}
		sb.WriteByte(' ')
		sb.WriteString(val)
		sb.WriteByte('\n')
	}
	suffix("_sum", formatFloat(h.Sum()))
	suffix("_count", formatFloat(float64(count)))
}
