package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("reqs_total", "").Value() != 3 {
		t.Error("counter handle not shared")
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", "b", "2", "a", "1")
	b := r.Counter("m", "", "a", "1", "b", "2")
	a.Inc()
	if b.Value() != 1 {
		t.Error("label order produced distinct series")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m{a="1",b="2"} 1`) {
		t.Errorf("exposition:\n%s", sb.String())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, "route", "/q")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{route="/q",le="0.01"} 1`,
		`lat_seconds_bucket{route="/q",le="0.1"} 2`,
		`lat_seconds_bucket{route="/q",le="1"} 3`,
		`lat_seconds_bucket{route="/q",le="+Inf"} 4`,
		`lat_seconds_count{route="/q"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if s := h.Sum(); s < 5.55 || s > 5.56 {
		t.Errorf("Sum = %v", s)
	}
}

func TestCallbackInstruments(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("live", "callback gauge", func() float64 { return n })
	r.CounterFunc("total", "callback counter", func() float64 { return n + 1 })
	n = 42
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 42") || !strings.Contains(sb.String(), "total 43") {
		t.Errorf("callbacks not read at exposition:\n%s", sb.String())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.GaugeFunc("d", "", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	var g *Gauge
	g.Set(1)
	g.Dec()
	var h *Histogram
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles leaked values")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", nil, "worker", "w").Observe(0.001)
			}
		}()
	}
	// Scrape concurrently with writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Errorf("counter = %v", got)
	}
	if got := r.Histogram("h_seconds", "", nil, "worker", "w").Count(); got != 8000 {
		t.Errorf("histogram count = %v", got)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help", "k", "v").Add(2)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"labels":{"k":"v"}`) {
		t.Errorf("snapshot json: %s", blob)
	}
	for _, m := range snap {
		if m.Name == "h_seconds" {
			if m.Value != 1 || m.Buckets["1"] != 1 || m.Buckets["+Inf"] != 1 {
				t.Errorf("histogram snapshot: %+v", m)
			}
		}
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Error("fresh context has trace ID")
	}
	ctx, id := EnsureTraceID(ctx)
	if len(id) != 16 || TraceID(ctx) != id {
		t.Errorf("trace id = %q", id)
	}
	ctx2, id2 := EnsureTraceID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Error("EnsureTraceID re-minted on traced context")
	}
	if NewID() == NewID() {
		t.Error("NewID collision")
	}
}

func TestLoggerCarriesTraceID(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, slog.LevelInfo)
	ctx := WithLogger(WithTraceID(context.Background(), "abc123"), base)
	Logger(ctx).Info("hello")
	if !strings.Contains(buf.String(), `"trace_id":"abc123"`) {
		t.Errorf("log line missing trace id: %s", buf.String())
	}
	// Without a logger in context, Logger must not explode.
	Logger(context.Background()).Info("dropped")
}

func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if TraceID(r.Context()) == "" {
			t.Error("handler saw no trace ID")
		}
		if r.URL.Path == "/boom" {
			http.Error(w, "nope", http.StatusForbidden)
			return
		}
		_, _ = w.Write([]byte("ok"))
	})
	h := Middleware(MiddlewareConfig{
		Registry: reg,
		Logger:   logger,
		Route: func(r *http.Request) string {
			if strings.HasPrefix(r.URL.Path, "/boom") {
				return "/boom"
			}
			return "/ok"
		},
	}, inner)

	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/fine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get(TraceHeader)
	if traceID == "" {
		t.Error("no trace ID response header")
	}
	if !strings.Contains(buf.String(), traceID) {
		t.Errorf("request log missing trace id %s: %s", traceID, buf.String())
	}

	// Client-supplied trace IDs are propagated.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/boom", nil)
	req.Header.Set(TraceHeader, "feedfacecafebeef")
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceHeader); got != "feedfacecafebeef" {
		t.Errorf("trace ID not adopted: %q", got)
	}

	if got := reg.Counter("grdf_http_requests_total", "", "route", "/ok", "code", "200").Value(); got != 1 {
		t.Errorf("200 counter = %v", got)
	}
	if got := reg.Counter("grdf_http_requests_total", "", "route", "/boom", "code", "403").Value(); got != 1 {
		t.Errorf("403 counter = %v", got)
	}
	if got := reg.Histogram("grdf_http_request_duration_seconds", "", nil, "route", "/ok").Count(); got != 1 {
		t.Errorf("latency observations = %v", got)
	}
	if got := reg.Gauge("grdf_http_in_flight_requests", "").Value(); got != 0 {
		t.Errorf("in-flight = %v", got)
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		in   int
		want string
	}{{200, "200"}, {404, "404"}, {0, "0"}, {-1, "0"}} {
		if got := itoa(tc.in); got != tc.want {
			t.Errorf("itoa(%d) = %q", tc.in, got)
		}
	}
}
