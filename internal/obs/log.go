package obs

import (
	"context"
	"io"
	"log/slog"
)

// slog plumbing: one JSON logger per process, enriched per-request with the
// trace ID so every log line of a request can be joined on trace_id.

// NewLogger returns a JSON slog.Logger writing to w at the given level.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// library code when no logger is configured.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// nopHandler discards all records. (slog.DiscardHandler needs go1.24; the
// module targets go1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// WithLogger returns ctx carrying l for retrieval by Logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the logger carried by ctx, enriched with the context's
// trace ID; falls back to a no-op logger so callers never nil-check.
func Logger(ctx context.Context) *slog.Logger {
	l, ok := ctx.Value(loggerKey).(*slog.Logger)
	if !ok {
		return NopLogger()
	}
	if id := TraceID(ctx); id != "" {
		return l.With("trace_id", id)
	}
	return l
}
