package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Hierarchical span tracing. A request owns one trace: the HTTP middleware
// (or any other entry point) starts a root span via Tracer.StartTrace, and
// every layer below — decision engine, query cache, SPARQL join executor,
// federation fan-out, WAL — opens child spans with StartSpan(ctx, name).
// The parent/child relationship rides on the context, so no layer needs a
// tracer handle: an un-traced context yields nil spans whose methods no-op.
//
// When the root span ends, the completed span tree is published into the
// tracer's lock-striped ring buffer of recent traces (served at /v1/traces),
// and — when the root exceeds the slow threshold — logged wholesale as a
// structured slow-query record.

// ParentSpanHeader carries the caller's current span ID across process
// boundaries (federation peers), so a peer's root span parents correctly
// under the originating request next to the X-Trace-Id join key.
const ParentSpanHeader = "X-Parent-Span"

// maxSpansPerTrace bounds one trace's memory: a pathological query must not
// turn the trace buffer into an allocation amplifier. Spans beyond the cap
// are counted, not recorded.
const maxSpansPerTrace = 512

// SpanData is the immutable record of one completed span.
type SpanData struct {
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	TraceID  string    `json:"trace_id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	// DurationUS is the span's monotonic wall time in microseconds.
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	// Counters carry per-span integrals: rows scanned, triples matched,
	// cache hits, retries — whatever the instrumented stage accumulates.
	Counters map[string]int64 `json:"counters,omitempty"`
	Failed   bool             `json:"failed,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// activeTrace accumulates the completed spans of one in-flight request.
type activeTrace struct {
	tracer  *Tracer // nil for detached (collector-only) traces
	traceID string

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

func (at *activeTrace) record(sd SpanData) {
	at.mu.Lock()
	if len(at.spans) >= maxSpansPerTrace {
		at.dropped++
	} else {
		at.spans = append(at.spans, sd)
	}
	at.mu.Unlock()
}

// Completed snapshots the spans recorded so far, in completion order. The
// EXPLAIN ANALYZE handler reads this mid-request, before the root span ends.
func (at *activeTrace) Completed() []SpanData {
	if at == nil {
		return nil
	}
	at.mu.Lock()
	out := make([]SpanData, len(at.spans))
	copy(out, at.spans)
	at.mu.Unlock()
	return out
}

// Span is one in-flight stage of a traced request. A nil *Span is valid and
// inert, so instrumented code never branches on "is tracing on".
type Span struct {
	trace  *activeTrace
	isRoot bool
	start  time.Time // monotonic anchor

	mu   sync.Mutex
	data SpanData
}

type spanCtx struct {
	trace *activeTrace
	span  *Span // current span (parent of children started from this ctx)
}

const spanKey ctxKey = 2

// activeSpanCtx returns the span context carried by ctx, or nil.
func activeSpanCtx(ctx context.Context) *spanCtx {
	sc, _ := ctx.Value(spanKey).(*spanCtx)
	return sc
}

// ActiveTrace returns the trace accumulator carried by ctx (nil when the
// request is not traced). Completed() on the result is always safe.
func ActiveTrace(ctx context.Context) *activeTrace {
	if sc := activeSpanCtx(ctx); sc != nil {
		return sc.trace
	}
	return nil
}

// CurrentSpanID returns the ID of the innermost open span on ctx, or "".
// It is the value to send as X-Parent-Span when calling out to a peer.
func CurrentSpanID(ctx context.Context) string {
	sc := activeSpanCtx(ctx)
	if sc == nil || sc.span == nil {
		return ""
	}
	return sc.span.data.SpanID
}

// newSpan builds a span bound to at with the given parent ID.
func newSpan(at *activeTrace, name, parentID string, isRoot bool) *Span {
	return &Span{
		trace:  at,
		isRoot: isRoot,
		start:  time.Now(),
		data: SpanData{
			SpanID:   NewID(),
			ParentID: parentID,
			TraceID:  at.traceID,
			Name:     name,
			Start:    time.Now(),
		},
	}
}

// StartSpan opens a child of the current span on ctx. When ctx carries no
// trace, it returns ctx unchanged and a nil span — every Span method is
// nil-safe, so callers never branch. The returned context parents further
// spans under the new one; End completes it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sc := activeSpanCtx(ctx)
	if sc == nil {
		return ctx, nil
	}
	parent := ""
	if sc.span != nil {
		parent = sc.span.data.SpanID
	}
	sp := newSpan(sc.trace, name, parent, false)
	return context.WithValue(ctx, spanKey, &spanCtx{trace: sc.trace, span: sp}), sp
}

// StartDetachedTrace begins a collector-only trace: spans record into an
// accumulator readable via ActiveTrace(ctx).Completed(), but nothing is
// published to any ring buffer. It powers EXPLAIN ANALYZE on servers that
// run without a tracer. The root span still must be ended.
func StartDetachedTrace(ctx context.Context, name string) (context.Context, *Span) {
	ctx, id := EnsureTraceID(ctx)
	at := &activeTrace{traceID: id}
	sp := newSpan(at, name, "", true)
	return context.WithValue(ctx, spanKey, &spanCtx{trace: at, span: sp}), sp
}

// SetAttr attaches a bounded string attribute. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// Add accumulates delta into the named per-span counter. Nil-safe.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Counters == nil {
		s.data.Counters = make(map[string]int64, 4)
	}
	s.data.Counters[counter] += delta
	s.mu.Unlock()
}

// Fail marks the span failed, recording err (nil keeps any earlier message).
// A failed child does not implicitly fail its parents: a degraded federated
// request keeps a healthy root. Nil-safe.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Failed = true
	if err != nil {
		s.data.Error = err.Error()
	}
	s.mu.Unlock()
}

// ID returns the span's identifier ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// End completes the span, records it into its trace, and — for a root span —
// publishes the finished trace. It returns the elapsed time. Ending a span
// twice records it once; the second call only returns the elapsed time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.data.DurationUS != 0 || s.trace == nil {
		s.mu.Unlock()
		return d
	}
	s.data.DurationUS = d.Microseconds()
	if s.data.DurationUS == 0 {
		s.data.DurationUS = 1 // sub-microsecond spans still count as ended
	}
	sd := s.data
	s.mu.Unlock()
	s.trace.record(sd)
	if s.isRoot && s.trace.tracer != nil {
		s.trace.tracer.publish(s.trace, sd, d)
	}
	return d
}

// ---------------------------------------------------------------------------
// Tracer: ring buffer of recent traces + slow-query log

// TraceData is one completed trace: the root summary plus every recorded
// span (completion order; the tree is reconstructed from ParentID links).
type TraceData struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationUS int64      `json:"duration_us"`
	Failed     bool       `json:"failed,omitempty"`
	Spans      []SpanData `json:"spans"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// TraceSummary is the /v1/traces listing row.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Spans      int       `json:"spans"`
	Failed     bool      `json:"failed,omitempty"`
}

// traceStripes fixes the lock striping width (power of two).
const traceStripes = 16

type traceStripe struct {
	mu   sync.Mutex
	ring []*TraceData // fixed-capacity ring, nil slots until warm
	next int
}

// Tracer retains the last N completed traces in a lock-striped in-memory
// ring buffer and emits the slow-query log. Safe for concurrent use.
type Tracer struct {
	stripes [traceStripes]traceStripe

	slowMu   sync.RWMutex
	slow     time.Duration
	slowLog  *slog.Logger
	capacity int

	mTraces  *Counter
	mSlow    *Counter
	mDropped *Counter
}

// NewTracer returns a tracer retaining about capacity completed traces
// (rounded up to a multiple of the stripe count; 0 retains none — spans
// still run, feeding EXPLAIN ANALYZE and the slow-query log).
func NewTracer(capacity int) *Tracer {
	t := &Tracer{capacity: capacity}
	if capacity > 0 {
		per := (capacity + traceStripes - 1) / traceStripes
		for i := range t.stripes {
			t.stripes[i].ring = make([]*TraceData, per)
		}
	}
	return t
}

// Capacity returns the configured trace retention.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// SetSlowQueryLog arms the slow-query log: any trace whose root span runs
// longer than threshold is logged to l with its full span tree. A zero
// threshold (or nil logger) disarms it.
func (t *Tracer) SetSlowQueryLog(threshold time.Duration, l *slog.Logger) {
	if t == nil {
		return
	}
	t.slowMu.Lock()
	t.slow = threshold
	t.slowLog = l
	t.slowMu.Unlock()
}

// Instrument exports the tracer's own accounting into reg (nil-safe).
func (t *Tracer) Instrument(reg *Registry) *Tracer {
	if t == nil {
		return nil
	}
	t.mTraces = reg.Counter("grdf_traces_total", "Completed root spans recorded by the tracer.")
	t.mSlow = reg.Counter("grdf_slow_queries_total",
		"Traces whose root span exceeded the slow-query threshold.")
	t.mDropped = reg.Counter("grdf_trace_spans_dropped_total",
		"Spans discarded past the per-trace cap.")
	reg.GaugeFunc("grdf_trace_buffer_capacity", "Configured trace retention.",
		func() float64 { return float64(t.capacity) })
	return t
}

// StartTrace begins a traced request: it ensures a trace ID on ctx, opens
// the root span (parentID may carry a remote parent from X-Parent-Span), and
// binds the accumulator to the tracer so End publishes the finished trace.
// Nil-safe: a nil tracer degrades to a detached trace.
func (t *Tracer) StartTrace(ctx context.Context, name, parentID string) (context.Context, *Span) {
	ctx, id := EnsureTraceID(ctx)
	at := &activeTrace{tracer: t, traceID: id}
	sp := newSpan(at, name, parentID, true)
	return context.WithValue(ctx, spanKey, &spanCtx{trace: at, span: sp}), sp
}

// publish stores a completed trace into its ring stripe and runs the
// slow-query check. Called exactly once per root span End.
func (t *Tracer) publish(at *activeTrace, root SpanData, d time.Duration) {
	at.mu.Lock()
	spans := make([]SpanData, len(at.spans))
	copy(spans, at.spans)
	dropped := at.dropped
	at.mu.Unlock()

	td := &TraceData{
		TraceID:      at.traceID,
		Root:         root.Name,
		Start:        root.Start,
		DurationUS:   root.DurationUS,
		Failed:       root.Failed,
		Spans:        spans,
		DroppedSpans: dropped,
	}
	t.mTraces.Inc()
	if dropped > 0 {
		t.mDropped.Add(float64(dropped))
	}

	if t.capacity > 0 {
		st := &t.stripes[stripeOf(at.traceID)]
		st.mu.Lock()
		st.ring[st.next] = td
		st.next = (st.next + 1) % len(st.ring)
		st.mu.Unlock()
	}

	t.slowMu.RLock()
	slow, logTo := t.slow, t.slowLog
	t.slowMu.RUnlock()
	if slow > 0 && d > slow && logTo != nil {
		t.mSlow.Inc()
		logTo.Warn("slow query",
			"trace_id", td.TraceID,
			"root", td.Root,
			"duration_us", td.DurationUS,
			"threshold", slow.String(),
			"spans", len(td.Spans),
			"tree", renderTree(td))
	}
}

// stripeOf hashes a trace ID onto a stripe (FNV-1a over the hex chars).
func stripeOf(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % traceStripes)
}

// Traces lists the retained traces, newest first, capped at limit (<=0 means
// all retained).
func (t *Tracer) Traces(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	var all []*TraceData
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for _, td := range st.ring {
			if td != nil {
				all = append(all, td)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	out := make([]TraceSummary, len(all))
	for i, td := range all {
		out[i] = TraceSummary{
			TraceID:    td.TraceID,
			Root:       td.Root,
			Start:      td.Start,
			DurationUS: td.DurationUS,
			Spans:      len(td.Spans),
			Failed:     td.Failed,
		}
	}
	return out
}

// Trace returns the retained trace with the given ID.
func (t *Tracer) Trace(id string) (*TraceData, bool) {
	if t == nil || t.capacity == 0 {
		return nil, false
	}
	st := &t.stripes[stripeOf(id)]
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, td := range st.ring {
		if td != nil && td.TraceID == id {
			return td, true
		}
	}
	return nil, false
}

// renderTree flattens a trace into an indented one-line-per-span string for
// the slow-query log (human-scannable without a JSON decoder).
func renderTree(td *TraceData) string {
	children := make(map[string][]SpanData)
	for _, sd := range td.Spans {
		children[sd.ParentID] = append(children[sd.ParentID], sd)
	}
	var sb []byte
	var walk func(sd SpanData, depth int)
	walk = func(sd SpanData, depth int) {
		for i := 0; i < depth; i++ {
			sb = append(sb, ' ', ' ')
		}
		sb = append(sb, sd.Name...)
		sb = append(sb, ' ')
		sb = appendInt(sb, sd.DurationUS)
		sb = append(sb, "us"...)
		if sd.Failed {
			sb = append(sb, " FAILED"...)
		}
		sb = append(sb, '\n')
		for _, c := range children[sd.SpanID] {
			walk(c, depth+1)
		}
	}
	// Roots: spans whose parent is "" or not recorded locally (remote parent).
	local := make(map[string]bool, len(td.Spans))
	for _, sd := range td.Spans {
		local[sd.SpanID] = true
	}
	for _, sd := range td.Spans {
		if sd.ParentID == "" || !local[sd.ParentID] {
			walk(sd, 0)
		}
	}
	return string(sb)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, buf[i:]...)
}
