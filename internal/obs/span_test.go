package obs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNilSafety: every Span method must no-op on nil, and StartSpan on an
// untraced context must return the context unchanged with a nil span — the
// contract that lets instrumented code skip "is tracing on" branches.
func TestSpanNilSafety(t *testing.T) {
	ctx := context.Background()
	out, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatalf("StartSpan on untraced ctx returned %v, want nil span", sp)
	}
	if out != ctx {
		t.Error("StartSpan on untraced ctx did not return the context unchanged")
	}
	sp.SetAttr("k", "v")
	sp.Add("c", 1)
	sp.Fail(errors.New("x"))
	if sp.ID() != "" {
		t.Errorf("nil span ID = %q, want empty", sp.ID())
	}
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if at := ActiveTrace(ctx); at != nil {
		t.Errorf("ActiveTrace on untraced ctx = %v, want nil", at)
	}
	if id := CurrentSpanID(ctx); id != "" {
		t.Errorf("CurrentSpanID on untraced ctx = %q, want empty", id)
	}
	var nilTracer *Tracer
	if c := nilTracer.Capacity(); c != 0 {
		t.Errorf("nil tracer capacity = %d", c)
	}
	nilTracer.SetSlowQueryLog(time.Second, nil)
	if got := nilTracer.Traces(5); got != nil {
		t.Errorf("nil tracer Traces = %v", got)
	}
}

// TestSpanTreeParentage builds a three-level tree through one trace and
// checks the recorded ParentID links and the counters/attrs round-trip.
func TestSpanTreeParentage(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartTrace(context.Background(), "http /v1/query", "")
	if got := CurrentSpanID(ctx); got != root.ID() {
		t.Fatalf("CurrentSpanID = %q, want root %q", got, root.ID())
	}

	cctx, child := StartSpan(ctx, "sparql.eval")
	child.SetAttr("kind", "select")
	_, grand := StartSpan(cctx, "sparql.bgp.step")
	grand.Add("rows_scanned", 41)
	grand.Add("rows_scanned", 1)
	grand.End()
	child.End()
	// Ending a span twice must not duplicate its record.
	child.End()
	root.End()

	td, ok := tr.Trace(TraceID(ctx))
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3: %+v", len(td.Spans), td.Spans)
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
		if sd.TraceID != td.TraceID {
			t.Errorf("span %s trace id %q, want %q", sd.Name, sd.TraceID, td.TraceID)
		}
		if sd.DurationUS <= 0 {
			t.Errorf("span %s duration %d, want > 0", sd.Name, sd.DurationUS)
		}
	}
	if byName["http /v1/query"].ParentID != "" {
		t.Error("root span has a parent")
	}
	if byName["sparql.eval"].ParentID != byName["http /v1/query"].SpanID {
		t.Error("sparql.eval not parented under the root")
	}
	if byName["sparql.bgp.step"].ParentID != byName["sparql.eval"].SpanID {
		t.Error("sparql.bgp.step not parented under sparql.eval")
	}
	if byName["sparql.bgp.step"].Counters["rows_scanned"] != 42 {
		t.Errorf("counters = %v, want rows_scanned 42", byName["sparql.bgp.step"].Counters)
	}
	if byName["sparql.eval"].Attrs["kind"] != "select" {
		t.Errorf("attrs = %v", byName["sparql.eval"].Attrs)
	}
	if td.Root != "http /v1/query" || td.DurationUS <= 0 {
		t.Errorf("trace summary = %+v", td)
	}
}

// TestSpanRemoteParent: a root span started with a remote parent (the
// X-Parent-Span path) must record that parent ID even though no local span
// carries it.
func TestSpanRemoteParent(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartTrace(context.Background(), "http /v1/query", "feedbeef01234567")
	root.End()
	td, ok := tr.Trace(TraceID(ctx))
	if !ok {
		t.Fatal("trace not retained")
	}
	if td.Spans[0].ParentID != "feedbeef01234567" {
		t.Errorf("remote parent = %q", td.Spans[0].ParentID)
	}
}

// TestDetachedTrace: spans accumulate and are readable mid-flight via
// ActiveTrace(ctx).Completed(), but nothing reaches any ring buffer.
func TestDetachedTrace(t *testing.T) {
	ctx, root := StartDetachedTrace(context.Background(), "explain.analyze")
	_, sp := StartSpan(ctx, "sparql.bgp.step")
	sp.End()
	got := ActiveTrace(ctx).Completed()
	if len(got) != 1 || got[0].Name != "sparql.bgp.step" {
		t.Fatalf("Completed() = %+v, want the one finished child", got)
	}
	root.End()
	if got := ActiveTrace(ctx).Completed(); len(got) != 2 {
		t.Fatalf("after root End: %d spans, want 2", len(got))
	}
}

// TestTracerCapacityZero: a zero-capacity tracer runs spans (explain=analyze
// and the slow log depend on it) but retains nothing.
func TestTracerCapacityZero(t *testing.T) {
	tr := NewTracer(0)
	ctx, root := tr.StartTrace(context.Background(), "root", "")
	_, sp := StartSpan(ctx, "child")
	sp.End()
	if got := len(ActiveTrace(ctx).Completed()); got != 1 {
		t.Fatalf("completed spans = %d, want 1", got)
	}
	root.End()
	if got := tr.Traces(0); len(got) != 0 {
		t.Fatalf("Traces on capacity-0 tracer = %+v", got)
	}
	if _, ok := tr.Trace(TraceID(ctx)); ok {
		t.Error("Trace lookup hit on capacity-0 tracer")
	}
}

// TestTracerRingEviction fills the ring well past capacity and checks
// retention stays bounded, newest-first ordering, and by-ID lookup for a
// retained trace.
func TestTracerRingEviction(t *testing.T) {
	const capacity = 32
	tr := NewTracer(capacity)
	var lastID string
	for i := 0; i < 10*capacity; i++ {
		ctx, root := tr.StartTrace(context.Background(), fmt.Sprintf("req-%d", i), "")
		root.End()
		lastID = TraceID(ctx)
	}
	got := tr.Traces(0)
	// Striping rounds capacity up to a multiple of the stripe count.
	max := ((capacity + 15) / 16) * 16
	if len(got) == 0 || len(got) > max {
		t.Fatalf("retained %d traces, want 1..%d", len(got), max)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start.After(got[i-1].Start) {
			t.Fatal("Traces not sorted newest-first")
		}
	}
	if limited := tr.Traces(5); len(limited) != 5 {
		t.Errorf("Traces(5) returned %d", len(limited))
	}
	if _, ok := tr.Trace(lastID); !ok {
		t.Error("most recent trace not retrievable by ID")
	}
	if _, ok := tr.Trace("0000000000000000"); ok {
		t.Error("lookup hit for a never-recorded ID")
	}
}

// TestSpanCapAndDrop: spans past maxSpansPerTrace are counted, not recorded,
// and the drop shows up on the published trace.
func TestSpanCapAndDrop(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartTrace(context.Background(), "root", "")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "leaf")
		sp.End()
	}
	root.End()
	td, ok := tr.Trace(TraceID(ctx))
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != maxSpansPerTrace {
		t.Errorf("recorded %d spans, want the %d cap", len(td.Spans), maxSpansPerTrace)
	}
	// root + extra leaves over the cap were dropped.
	if td.DroppedSpans != 11 {
		t.Errorf("dropped = %d, want 11", td.DroppedSpans)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines — children
// racing on shared traces, whole traces racing into the same stripes — and is
// meaningful under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartTrace(context.Background(), "req", "")
				var inner sync.WaitGroup
				for c := 0; c < 4; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						_, sp := StartSpan(ctx, "child")
						sp.Add("n", int64(c))
						sp.End()
					}(c)
				}
				inner.Wait()
				root.End()
				_ = tr.Traces(10)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Traces(0); len(got) == 0 {
		t.Fatal("no traces retained after concurrent load")
	}
}

// TestSlowQueryLog arms the slow-query log with a microscopic threshold and
// checks the record carries the trace ID and the rendered tree; a disarmed
// tracer must stay quiet.
func TestSlowQueryLog(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(16)
	tr.SetSlowQueryLog(time.Nanosecond, logger)

	ctx, root := tr.StartTrace(context.Background(), "http /v1/query", "")
	_, sp := StartSpan(ctx, "sparql.eval")
	sp.Fail(errors.New("boom"))
	sp.End()
	time.Sleep(2 * time.Millisecond)
	root.End()

	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query record: %q", out)
	}
	if !strings.Contains(out, TraceID(ctx)) {
		t.Error("record missing the trace id")
	}
	if !strings.Contains(out, "sparql.eval") || !strings.Contains(out, "FAILED") {
		t.Errorf("rendered tree missing span lines: %q", out)
	}

	buf.Reset()
	tr.SetSlowQueryLog(0, nil)
	_, root2 := tr.StartTrace(context.Background(), "quiet", "")
	time.Sleep(time.Millisecond)
	root2.End()
	if buf.Len() != 0 {
		t.Errorf("disarmed tracer still logged: %q", buf.String())
	}
}

// TestTracerInstrument checks the tracer's own accounting metrics.
func TestTracerInstrument(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16).Instrument(reg)
	_, root := tr.StartTrace(context.Background(), "r", "")
	root.End()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "grdf_traces_total 1") {
		t.Errorf("grdf_traces_total missing:\n%s", out)
	}
	if !strings.Contains(out, "grdf_trace_buffer_capacity 16") {
		t.Errorf("grdf_trace_buffer_capacity missing:\n%s", out)
	}
}

// TestHistogramExemplar: a histogram observation tagged with a trace ID must
// surface as an OpenMetrics-style exemplar on its bucket line.
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("grdf_http_request_duration_seconds", "t", nil, "route", "/v1/query")
	h.ObserveWithExemplar(0.003, "abcdef0123456789")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="abcdef0123456789"}`) {
		t.Fatalf("no exemplar in exposition:\n%s", out)
	}
	// The exemplar must sit on a bucket line, after the bucket's own value.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "trace_id=") && !strings.Contains(line, "_bucket") {
			t.Errorf("exemplar on a non-bucket line: %q", line)
		}
	}
	// A plain Observe must not invent exemplars on other histograms.
	reg2 := NewRegistry()
	reg2.Histogram("h2", "t", nil).Observe(0.1)
	sb.Reset()
	if err := reg2.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id=") {
		t.Error("plain Observe produced an exemplar")
	}
}
