package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSLOFastBurnTransitions walks the fast-burn verdict through the exact
// sequence the admission controller's Signal consumes: healthy → breached
// while the error burst is inside the fast window → diluted below the burn
// threshold by clean traffic → recovered once the burst ages out. The clock
// is injected, so each transition is pinned to a window boundary rather than
// to test timing.
func TestSLOFastBurnTransitions(t *testing.T) {
	clk := newSLOClock()
	e := testEngine(clk) // availability target 0.99 → 1% error budget

	// Healthy baseline.
	for i := 0; i < 100; i++ {
		e.Record("/v1/query", time.Millisecond, 200)
	}
	if st := e.Status(); !st.AvailabilityOK {
		t.Fatalf("clean traffic breached: %+v", st.Fast)
	}

	// A burst of 5xx inside one bucket: 10 errors over 110 requests is a
	// ~9%% error rate against a 1%% budget — burn ≈ 9, breached.
	for i := 0; i < 10; i++ {
		e.Record("/v1/query", time.Millisecond, 500)
	}
	st := e.Status()
	if st.AvailabilityOK || st.Fast.BurnRate <= 1 {
		t.Fatalf("burst did not breach: burn=%.2f ok=%v", st.Fast.BurnRate, st.AvailabilityOK)
	}

	// Clean traffic in a later bucket dilutes the rate below the budget
	// while the errors are still inside the window: 10/1610 < 1%.
	clk.advance(time.Minute)
	for i := 0; i < 1500; i++ {
		e.Record("/v1/query", time.Millisecond, 200)
	}
	st = e.Status()
	if !st.AvailabilityOK {
		t.Fatalf("diluted burn still breached: burn=%.2f errors=%d count=%d",
			st.Fast.BurnRate, st.Fast.Errors, st.Fast.Count)
	}
	if st.Fast.Errors != 10 {
		t.Fatalf("errors aged out early: %+v", st.Fast)
	}

	// Past the fast window the burst is gone entirely and the verdict is
	// clean even with no fresh traffic — the signal must decay on its own,
	// or a recovered server would shed forever.
	clk.advance(6 * time.Minute)
	st = e.Status()
	if st.Fast.Count != 0 || !st.AvailabilityOK {
		t.Fatalf("fast window failed to expire: %+v", st.Fast)
	}
}

// TestReadSaturationUnderChurn hammers the in-flight gauge from many
// goroutines while concurrent readers sample saturation — the exact overlap
// the admission signal cache produces against live middleware. Run under
// -race this pins the absence of unsynchronized access; the value assertions
// pin that a mid-churn read is a coherent snapshot, not garbage.
func TestReadSaturationUnderChurn(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("grdf_http_in_flight_requests", "Requests currently being served.")
	const writers, readers, iters = 8, 4, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	errc := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := ReadSaturation(reg)
				if s.Goroutines < 1 || s.HeapAllocBytes == 0 {
					select {
					case errc <- "implausible runtime stats mid-churn":
					default:
					}
					return
				}
				// The gauge only ever steps ±1 around zero.
				if s.InFlightHTTP < 0 || s.InFlightHTTP > writers {
					select {
					case errc <- "in-flight gauge read outside churn envelope":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if msg, ok := <-errc; ok {
		t.Fatal(msg)
	}
	if got := ReadSaturation(reg).InFlightHTTP; got != 0 {
		t.Fatalf("in-flight settled at %v, want 0", got)
	}
}
