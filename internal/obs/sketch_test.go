package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// sketchTolerance is the allowed relative error of a quantile estimate:
// one bucket width (2^-sketchSubBits) plus slack for the rank falling on
// a bucket edge.
const sketchTolerance = 2.0 / sketchSubBuckets

// checkQuantiles records samples and asserts each estimated quantile is
// within sketchTolerance of the exact order statistic.
func checkQuantiles(t *testing.T, name string, samples []time.Duration) {
	t.Helper()
	s := NewLatencySketch()
	for _, d := range samples {
		s.Record(d)
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		rank := int(q*float64(len(sorted)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		exact := float64(sorted[rank-1])
		got := float64(s.Quantile(q))
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s q=%v: got %v, want 0", name, q, got)
			}
			continue
		}
		if rel := math.Abs(got-exact) / exact; rel > sketchTolerance {
			t.Errorf("%s q=%v: got %v, exact %v, rel err %.4f > %.4f",
				name, q, time.Duration(got), time.Duration(exact),
				rel, sketchTolerance)
		}
	}
	if s.Count() != uint64(len(samples)) {
		t.Errorf("%s: count %d, want %d", name, s.Count(), len(samples))
	}
	if s.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: max %v, want %v", name, s.Max(), sorted[len(sorted)-1])
	}
	if q1 := s.Quantile(1); q1 != s.Max() {
		t.Errorf("%s: Quantile(1)=%v, want max %v", name, q1, s.Max())
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10000

	uniform := make([]time.Duration, n)
	for i := range uniform {
		uniform[i] = time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
	}
	checkQuantiles(t, "uniform", uniform)

	// Lognormal-ish: exp of a normal — the shape real latencies take.
	logn := make([]time.Duration, n)
	for i := range logn {
		v := math.Exp(rng.NormFloat64()*0.8 + math.Log(5e6)) // median ~5ms
		logn[i] = time.Duration(v)
	}
	checkQuantiles(t, "lognormal", logn)

	// Bimodal: fast cache hits plus a slow 5% tail — the distribution
	// where mean-based summaries lie and quantiles matter.
	bimodal := make([]time.Duration, n)
	for i := range bimodal {
		if rng.Float64() < 0.95 {
			bimodal[i] = time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond)))
		} else {
			bimodal[i] = 300*time.Millisecond + time.Duration(rng.Int63n(int64(100*time.Millisecond)))
		}
	}
	checkQuantiles(t, "bimodal", bimodal)
}

func TestSketchSmallAndEdgeValues(t *testing.T) {
	s := NewLatencySketch()
	if s.Quantile(0.99) != 0 || s.Count() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	// Values below sketchSubBuckets ns are exact.
	for v := time.Duration(0); v < sketchSubBuckets; v++ {
		one := NewLatencySketch()
		one.Record(v)
		if got := one.Quantile(0.5); got != v {
			t.Fatalf("value %d: quantile %d", v, got)
		}
	}
	s.Record(-time.Second) // negative clamps to zero, doesn't panic
	if s.Count() != 1 || s.Quantile(0.5) != 0 {
		t.Fatalf("negative record: count=%d q50=%v", s.Count(), s.Quantile(0.5))
	}
	// A value beyond the top slab clamps instead of indexing out of range.
	s.Record(10 * time.Hour)
	if s.Max() != 10*time.Hour {
		t.Fatalf("max %v", s.Max())
	}
}

func TestSketchNilSafe(t *testing.T) {
	var s *LatencySketch
	s.Record(time.Second)
	if s.Count() != 0 || s.Quantile(0.9) != 0 || s.Max() != 0 ||
		s.Sum() != 0 || s.Mean() != 0 {
		t.Fatal("nil sketch must be inert")
	}
}

func TestMergeSketches(t *testing.T) {
	a, b := NewLatencySketch(), NewLatencySketch()
	for i := 0; i < 500; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i+500) * time.Millisecond)
	}
	m := MergeSketches(a, nil, b)
	if m.Count() != 1000 {
		t.Fatalf("merged count %d", m.Count())
	}
	// Median of 0..999ms is ~500ms; allow bucket error.
	got := float64(m.Quantile(0.5))
	want := float64(500 * time.Millisecond)
	if math.Abs(got-want)/want > 2*sketchTolerance {
		t.Fatalf("merged median %v", time.Duration(got))
	}
	if m.Max() != b.Max() {
		t.Fatalf("merged max %v, want %v", m.Max(), b.Max())
	}
	// Merging must not alias the inputs.
	m.Record(time.Hour)
	if a.Count() != 500 || b.Count() != 500 {
		t.Fatal("merge aliased input sketches")
	}
}

func TestSketchConcurrentRecord(t *testing.T) {
	s := NewLatencySketch()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s.Record(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Count() != 8000 {
		t.Fatalf("count %d, want 8000", s.Count())
	}
}
