package integration

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/gml"
	"repro/internal/ntriples"
	"repro/internal/rdfxml"
	"repro/internal/sparql"
	"repro/internal/turtle"
)

// The parsers must never panic, whatever bytes arrive — they either parse
// or return an error. These properties drive each parser with arbitrary
// fuzz-like input from testing/quick.

func noPanic(t *testing.T, name string, fn func(string)) {
	t.Helper()
	prop := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s panicked on %q: %v", name, s, r)
				ok = false
			}
		}()
		fn(s)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTurtleParserNeverPanics(t *testing.T) {
	noPanic(t, "turtle", func(s string) { _, _ = turtle.ParseString(s) })
}

func TestNTriplesParserNeverPanics(t *testing.T) {
	noPanic(t, "ntriples", func(s string) { _, _ = ntriples.ParseString(s) })
}

func TestRDFXMLParserNeverPanics(t *testing.T) {
	noPanic(t, "rdfxml", func(s string) { _, _ = rdfxml.ParseString(s) })
}

func TestGMLParserNeverPanics(t *testing.T) {
	noPanic(t, "gml", func(s string) { _, _ = gml.ParseString(s) })
}

func TestSparqlParserNeverPanics(t *testing.T) {
	noPanic(t, "sparql", func(s string) { _, _ = sparql.ParseQuery(s, nil) })
}

func TestCoordinateParsersNeverPanic(t *testing.T) {
	noPanic(t, "coordinates", func(s string) { _, _ = geom.ParseCoordinates(s) })
	noPanic(t, "posList", func(s string) { _, _ = geom.ParsePosList(s) })
}

// Structured garbage: near-miss documents around each grammar.
func TestNearMissDocuments(t *testing.T) {
	turtleDocs := []string{
		"@prefix : <http", "a a a", "<s> <p> <o> ; .", "() () () .",
		"@base . <x> <y> <z> .", `"unterminated`, "<a> <b> (((((", "[[[[",
		"<a> <b> 'x'@ .", "<a> <b> 1.2.3 .", "PREFIX : <u> :a :b :c",
	}
	for _, d := range turtleDocs {
		if _, err := turtle.ParseString(d); err == nil {
			// not all near-misses are errors; just require no panic
			_ = err
		}
	}
	sparqlDocs := []string{
		"SELECT (", "SELECT ?x WHERE { BIND } ", "ASK { VALUES }",
		"SELECT ?x WHERE { ?s ?p ?o } GROUP", "CONSTRUCT {} WHERE {} LIMIT -1",
		"SELECT ?x WHERE { FILTER EXISTS }", "SELECT ?x WHERE { ?s <p ?o }",
	}
	for _, d := range sparqlDocs {
		if _, err := sparql.ParseQuery(d, nil); err == nil {
			t.Errorf("near-miss query parsed: %q", d)
		}
	}
}
