// Package integration exercises whole-system pipelines across package
// boundaries: serialization cycles, GML ingestion through the secure
// middleware, the HTTP mutation path, and reasoning over aggregated
// multi-source data.
package integration

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/gml"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/ntriples"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/turtle"
)

// TestSerializationCycle pushes the full scenario dataset through
// Turtle → N-Triples → RDF/XML → Turtle and requires the ground triples to
// survive every hop.
func TestSerializationCycle(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 8, Sites: 6})
	original := sc.Merged.Graph()

	ttl := turtle.Format(original, nil)
	g1, err := turtle.ParseString(ttl)
	if err != nil {
		t.Fatalf("turtle parse: %v", err)
	}
	nt := ntriples.Format(g1)
	g2, err := ntriples.ParseString(nt)
	if err != nil {
		t.Fatalf("ntriples parse: %v", err)
	}
	xml := rdfxml.Format(g2, nil)
	g3, err := rdfxml.ParseString(xml)
	if err != nil {
		t.Fatalf("rdfxml parse: %v", err)
	}
	back := turtle.Format(g3, nil)
	g4, err := turtle.ParseString(back)
	if err != nil {
		t.Fatalf("turtle reparse: %v", err)
	}
	if g4.Len() != original.Len() {
		t.Fatalf("triples %d -> %d after cycle", original.Len(), g4.Len())
	}
	for _, tr := range original.Triples() {
		if tr.Subject.Kind() == rdf.KindBlank || tr.Object.Kind() == rdf.KindBlank {
			continue // blank labels may be rewritten
		}
		if !g4.Has(tr) {
			t.Errorf("lost triple: %s", tr)
		}
	}
}

// TestGMLThroughSecureMiddleware ingests a GML document, loads it behind
// G-SACS with a property-scoped policy and verifies the filtered SPARQL
// surface.
func TestGMLThroughSecureMiddleware(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
  <gml:featureMember>
    <app:ChemSite gml:id="plantA">
      <app:hasSiteName>Plant A</app:hasSiteName>
      <app:hasContactPhone>972-555-0000</app:hasContactPhone>
      <gml:boundedBy>
        <gml:Envelope srsName="http://grdf.org/crs/TX83-NCF">
          <gml:lowerCorner>2530000 7100000</gml:lowerCorner>
          <gml:upperCorner>2530500 7100500</gml:upperCorner>
        </gml:Envelope>
      </gml:boundedBy>
    </app:ChemSite>
  </gml:featureMember>
</gml:FeatureCollection>`
	col, err := gml.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	data := store.New()
	if _, err := gml.ToGRDF(data, col, rdf.AppNS); err != nil {
		t.Fatal(err)
	}

	role := rdf.IRI(seconto.NS + "Inspector")
	policies := &seconto.Set{Rules: []seconto.Rule{{
		ID: seconto.NS + "InspectorView", Subject: role,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: true,
		Properties: []rdf.IRI{rdf.IRI(grdf.NS + "boundedBy"), datagen.HasSiteName},
	}}}
	engine := gsacs.New(policies, data, gsacs.Options{})

	res, err := engine.Query(role, seconto.ActionView,
		`SELECT ?n WHERE { ?s app:hasSiteName ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || !res.Bindings[0]["n"].Equal(rdf.NewString("Plant A")) {
		t.Errorf("name query = %v", res.Bindings)
	}
	res, err = engine.Query(role, seconto.ActionView,
		`SELECT ?p WHERE { ?s app:hasContactPhone ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 0 {
		t.Errorf("contact leaked through GML ingestion path: %v", res.Bindings)
	}
	// Geometry survives end-to-end: the envelope decodes from the view.
	view := engine.View(role, seconto.ActionView)
	site := rdf.IRI(rdf.AppNS + "plantA")
	if env, ok := grdf.EnvelopeOfFeature(view, site); !ok || env.Width() != 500 {
		t.Errorf("envelope from view = %+v %t", env, ok)
	}
}

// TestHTTPMutationPath exercises POST /insert and /delete through the G-SACS
// HTTP front-end with authorization outcomes.
func TestHTTPMutationPath(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 8, Sites: 3})
	admin := rdf.IRI(seconto.NS + "Admin")
	sc.Policies.Rules = append(sc.Policies.Rules, seconto.Rule{
		ID: seconto.NS + "AdminModify", Subject: admin,
		Action: seconto.ActionModify, Resource: datagen.ChemSite, Permit: true,
	})
	engine := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{})
	srv := httptest.NewServer(gsacs.NewServer(engine, nil))
	defer srv.Close()

	site := sc.Chemical.Sites[0].IRI
	triple := rdf.T(site, datagen.HasSiteName, rdf.NewString("HTTP Renamed")).String() + "\n"

	post := func(path, body string) int {
		resp, err := srv.Client().Post(srv.URL+path, "application/n-triples", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Unauthorized role → 403.
	if code := post("/insert?role=MainRep", triple); code != 403 {
		t.Errorf("main repair insert = %d, want 403", code)
	}
	// Admin → applied.
	if code := post("/insert?role=Admin", triple); code != 200 {
		t.Errorf("admin insert = %d, want 200", code)
	}
	if !engine.Data().Has(rdf.T(site, datagen.HasSiteName, rdf.NewString("HTTP Renamed"))) {
		t.Error("HTTP insert did not land")
	}
	// GET on a POST endpoint → 405; malformed body → 400.
	resp, err := srv.Client().Get(srv.URL + "/insert?role=Admin")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET insert = %d", resp.StatusCode)
	}
	if code := post("/insert?role=Admin", "not ntriples"); code != 400 {
		t.Errorf("malformed insert = %d", code)
	}
	_ = url.QueryEscape // imported for parity with other suites
}

// TestAggregationInferencePipeline reproduces the intro's defense scenario
// in miniature: two sources in different formats are merged, reasoned over,
// and answer a question neither could alone.
func TestAggregationInferencePipeline(t *testing.T) {
	// Source 1 (RDF/XML): a tracked vehicle sighting.
	const trackingXML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:app="http://grdf.org/app#"
         xmlns:grdf="http://grdf.org/ontology/grdf#">
  <app:Sighting rdf:about="http://grdf.org/app#s1">
    <app:vehiclePlate>TX-1111</app:vehiclePlate>
    <grdf:hasGeometry>
      <grdf:Point rdf:about="http://grdf.org/app#s1_geom">
        <grdf:coordinates>100,100</grdf:coordinates>
      </grdf:Point>
    </grdf:hasGeometry>
  </app:Sighting>
</rdf:RDF>`
	// Source 2 (Turtle): a criminal record tied to the same plate.
	const recordsTTL = `
@prefix app: <http://grdf.org/app#> .
app:rec9 a app:CriminalRecord ;
    app:vehiclePlate "TX-1111" ;
    app:offense "smuggling" .
app:Sighting rdfs:subClassOf grdf:Feature .
app:CriminalRecord rdfs:subClassOf grdf:Feature .
`
	g1, err := rdfxml.ParseString(trackingXML)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := turtle.ParseString(recordsTTL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := grdf.Aggregate([]grdf.Source{
		{Name: "tracking", Store: store.FromGraph(g1)},
		{Name: "records", Store: store.FromGraph(g2)},
	}, grdf.AggregateOptions{Reason: true, Ontology: grdf.Ontology()})
	if err != nil {
		t.Fatal(err)
	}
	eng := grdf.NewEngine(res.Merged)
	// Join across sources on the plate.
	out, err := eng.Query(`
SELECT ?offense WHERE {
  ?sighting a app:Sighting .
  ?sighting app:vehiclePlate ?plate .
  ?rec a app:CriminalRecord .
  ?rec app:vehiclePlate ?plate .
  ?rec app:offense ?offense .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bindings) != 1 || !out.Bindings[0]["offense"].Equal(rdf.NewString("smuggling")) {
		t.Errorf("cross-source join = %v", out.Bindings)
	}
	// Inference: both records are features now.
	features, err := eng.Query(`SELECT ?f WHERE { ?f a grdf:Feature }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(features.Bindings) != 2 {
		t.Errorf("features after reasoning = %d", len(features.Bindings))
	}
}

// TestReasonerPluggability swaps reasoners behind the gsacs.Reasoner
// interface and shows the decision difference on a subclass-targeted policy.
func TestReasonerPluggability(t *testing.T) {
	data := store.New()
	site := rdf.IRI("http://e/site")
	deepClass := rdf.IRI("http://e/DeepChemSite")
	midClass := rdf.IRI("http://e/MidChemSite")
	data.Add(rdf.T(site, rdf.RDFType, deepClass))
	data.Add(rdf.T(deepClass, rdf.RDFSSubClassOf, midClass))
	data.Add(rdf.T(midClass, rdf.RDFSSubClassOf, datagen.ChemSite))

	role := rdf.IRI(seconto.NS + "R")
	policies := &seconto.Set{Rules: []seconto.Rule{{
		ID: seconto.NS + "P", Subject: role,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: true,
	}}}

	// Syntactic engine: one-level subclass check misses the 2-hop chain.
	plain := gsacs.New(policies, data, gsacs.Options{})
	if plain.Decide(role, seconto.ActionView, site).Allowed {
		t.Error("syntactic engine resolved a 2-hop subclass chain (unexpected)")
	}
	// OWL engine: transitivity closes the chain.
	r := owl.NewReasoner()
	r.AddAll(data.Triples())
	reasoned := gsacs.New(policies, data, gsacs.Options{Reasoner: r})
	if !reasoned.Decide(role, seconto.ActionView, site).Allowed {
		t.Error("OWL engine failed to resolve the subclass chain")
	}
}
