// Package rdfxml implements an RDF/XML parser and serializer covering the
// syntax the GRDF paper uses in its listings: rdf:Description and typed node
// elements, rdf:about / rdf:ID / rdf:nodeID, rdf:resource, rdf:datatype,
// xml:lang, property attributes, nested node elements, and
// rdf:parseType="Resource" | "Literal" | "Collection".
package rdfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// rdfNS is the RDF syntax namespace used in XML attribute matching.
const rdfNS = rdf.RDFNS

// xmlNS is the reserved XML namespace (xml:lang, xml:base).
const xmlNS = "http://www.w3.org/XML/1998/namespace"

// Parser decodes RDF/XML.
type Parser struct {
	dec      *xml.Decoder
	graph    *rdf.Graph
	base     string
	blankSeq int
}

// Parse decodes a complete RDF/XML document from r.
func Parse(r io.Reader) (*rdf.Graph, error) {
	p := &Parser{dec: xml.NewDecoder(r), graph: rdf.NewGraph()}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

// ParseString decodes a complete RDF/XML document from a string.
func ParseString(doc string) (*rdf.Graph, error) {
	return Parse(strings.NewReader(doc))
}

func (p *Parser) fresh() rdf.BlankNode {
	p.blankSeq++
	return rdf.BlankNode(fmt.Sprintf("rx%d", p.blankSeq))
}

func (p *Parser) run() error {
	for {
		tok, err := p.dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("rdfxml: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if se.Name.Space == rdfNS && se.Name.Local == "RDF" {
			p.applyBase(se)
			if err := p.parseNodeElementList(); err != nil {
				return err
			}
			continue
		}
		// A document whose root is itself a node element.
		if _, err := p.parseNodeElement(se); err != nil {
			return err
		}
	}
}

func (p *Parser) applyBase(se xml.StartElement) {
	for _, a := range se.Attr {
		if a.Name.Space == xmlNS && a.Name.Local == "base" {
			p.base = a.Value
		}
	}
}

// parseNodeElementList consumes children of rdf:RDF until its end element.
func (p *Parser) parseNodeElementList() error {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return fmt.Errorf("rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if _, err := p.parseNodeElement(t); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

// parseNodeElement parses a node element whose StartElement has just been
// read, consuming through its matching end element, and returns the subject
// term it denotes.
func (p *Parser) parseNodeElement(se xml.StartElement) (rdf.Term, error) {
	var subject rdf.Term
	var lang string
	var propAttrs []xml.Attr

	for _, a := range se.Attr {
		switch {
		case a.Name.Space == rdfNS && a.Name.Local == "about":
			subject = rdf.IRI(p.resolve(a.Value))
		case a.Name.Space == rdfNS && a.Name.Local == "ID":
			subject = rdf.IRI(p.resolve("#" + a.Value))
		case a.Name.Space == rdfNS && a.Name.Local == "nodeID":
			subject = rdf.BlankNode(a.Value)
		case a.Name.Space == xmlNS && a.Name.Local == "lang":
			lang = a.Value
		case a.Name.Space == xmlNS, a.Name.Space == "xmlns", a.Name.Local == "xmlns":
			// namespace machinery; ignore
		case a.Name.Space == rdfNS && a.Name.Local == "parseType":
			return nil, fmt.Errorf("rdfxml: parseType not allowed on node element %s", se.Name.Local)
		default:
			propAttrs = append(propAttrs, a)
		}
	}
	if subject == nil {
		subject = p.fresh()
	}

	// Typed node element: element name other than rdf:Description asserts type.
	if !(se.Name.Space == rdfNS && se.Name.Local == "Description") {
		p.graph.Add(rdf.T(subject, rdf.RDFType, rdf.IRI(se.Name.Space+expandLocal(se.Name))))
	}

	// Property attributes become literal-valued statements.
	for _, a := range propAttrs {
		if a.Name.Space == "" {
			// Attribute without namespace: not a property per spec; skip.
			continue
		}
		lit := rdf.NewString(a.Value)
		if lang != "" {
			lit = rdf.NewLangString(a.Value, lang)
		}
		p.graph.Add(rdf.T(subject, rdf.IRI(a.Name.Space+expandLocal(a.Name)), lit))
	}

	// Children are property elements. rdf:li children number themselves
	// rdf:_1, rdf:_2, … per the container membership rules.
	liCount := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return nil, fmt.Errorf("rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == rdfNS && t.Name.Local == "li" {
				liCount++
				t.Name.Local = fmt.Sprintf("_%d", liCount)
			}
			if err := p.parsePropertyElement(subject, t, lang); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return subject, nil
		}
	}
}

// parsePropertyElement parses one property element of subject.
func (p *Parser) parsePropertyElement(subject rdf.Term, se xml.StartElement, lang string) error {
	pred := rdf.IRI(se.Name.Space + expandLocal(se.Name))

	var resource, nodeID, datatype, parseType string
	var propAttrs []xml.Attr
	for _, a := range se.Attr {
		switch {
		case a.Name.Space == rdfNS && a.Name.Local == "resource":
			resource = a.Value
		case a.Name.Space == rdfNS && a.Name.Local == "nodeID":
			nodeID = a.Value
		case a.Name.Space == rdfNS && a.Name.Local == "datatype":
			datatype = a.Value
		case a.Name.Space == rdfNS && a.Name.Local == "parseType":
			parseType = a.Value
		case a.Name.Space == xmlNS && a.Name.Local == "lang":
			lang = a.Value
		case a.Name.Space == xmlNS, a.Name.Space == "xmlns", a.Name.Local == "xmlns":
		default:
			propAttrs = append(propAttrs, a)
		}
	}

	switch parseType {
	case "Resource":
		// Implicit blank node with nested property elements.
		inner := p.fresh()
		p.graph.Add(rdf.T(subject, pred, inner))
		liCount := 0
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return fmt.Errorf("rdfxml: %w", err)
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if t.Name.Space == rdfNS && t.Name.Local == "li" {
					liCount++
					t.Name.Local = fmt.Sprintf("_%d", liCount)
				}
				if err := p.parsePropertyElement(inner, t, lang); err != nil {
					return err
				}
			case xml.EndElement:
				return nil
			}
		}
	case "Literal":
		raw, err := p.rawInner()
		if err != nil {
			return err
		}
		p.graph.Add(rdf.T(subject, pred, rdf.Literal{Value: raw, Datatype: rdf.RDFXMLLiteral}))
		return nil
	case "Collection":
		var items []rdf.Term
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return fmt.Errorf("rdfxml: %w", err)
			}
			switch t := tok.(type) {
			case xml.StartElement:
				item, err := p.parseNodeElement(t)
				if err != nil {
					return err
				}
				items = append(items, item)
			case xml.EndElement:
				p.graph.Add(rdf.T(subject, pred, p.graph.List(items)))
				return nil
			}
		}
	case "":
		// fall through to the standard forms below
	default:
		return fmt.Errorf("rdfxml: unsupported parseType %q", parseType)
	}

	if resource != "" || nodeID != "" {
		var obj rdf.Term
		if resource != "" {
			obj = rdf.IRI(p.resolve(resource))
		} else {
			obj = rdf.BlankNode(nodeID)
		}
		p.graph.Add(rdf.T(subject, pred, obj))
		// Property attributes on a resource property element describe the object.
		for _, a := range propAttrs {
			if a.Name.Space == "" {
				continue
			}
			p.graph.Add(rdf.T(obj, rdf.IRI(a.Name.Space+expandLocal(a.Name)), rdf.NewString(a.Value)))
		}
		return p.skipToEnd()
	}

	// Otherwise: text content (literal) or one nested node element.
	var text strings.Builder
	sawElement := false
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return fmt.Errorf("rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			sawElement = true
			obj, err := p.parseNodeElement(t)
			if err != nil {
				return err
			}
			p.graph.Add(rdf.T(subject, pred, obj))
		case xml.EndElement:
			if !sawElement {
				val := text.String()
				// An empty property element with property attributes denotes
				// a blank node described by those attributes.
				if strings.TrimSpace(val) == "" && len(propAttrs) > 0 {
					inner := p.fresh()
					p.graph.Add(rdf.T(subject, pred, inner))
					for _, a := range propAttrs {
						if a.Name.Space == "" {
							continue
						}
						p.graph.Add(rdf.T(inner, rdf.IRI(a.Name.Space+expandLocal(a.Name)), rdf.NewString(a.Value)))
					}
					return nil
				}
				lit := rdf.Literal{Value: val, Datatype: rdf.XSDString}
				if datatype != "" {
					lit.Datatype = rdf.IRI(p.resolve(datatype))
				} else if lang != "" {
					lit = rdf.NewLangString(val, lang)
				}
				p.graph.Add(rdf.T(subject, pred, lit))
			}
			return nil
		}
	}
}

// rawInner captures the raw XML content of the current element (for
// parseType="Literal") until its end element.
func (p *Parser) rawInner() (string, error) {
	var sb strings.Builder
	depth := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return "", fmt.Errorf("rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			sb.WriteString("<" + t.Name.Local + ">")
		case xml.EndElement:
			if depth == 0 {
				return sb.String(), nil
			}
			depth--
			sb.WriteString("</" + t.Name.Local + ">")
		case xml.CharData:
			sb.Write(t)
		}
	}
}

// skipToEnd consumes tokens until the current element's end element.
func (p *Parser) skipToEnd() error {
	depth := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return fmt.Errorf("rdfxml: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

func (p *Parser) resolve(ref string) string {
	if ref == "" {
		return p.base
	}
	if strings.HasPrefix(ref, "#") {
		return strings.TrimSuffix(p.base, "#") + ref
	}
	if strings.Contains(ref, "://") || strings.HasPrefix(ref, "urn:") || p.base == "" {
		return ref
	}
	idx := strings.LastIndexByte(p.base, '/')
	if idx < 0 {
		return p.base + ref
	}
	return p.base[:idx+1] + ref
}

// expandLocal works around encoding/xml splitting a QName into space+local:
// when the namespace does not end in '#' or '/', RDF/XML concatenation still
// applies directly (e.g. GML's namespace has no trailing separator).
func expandLocal(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	last := n.Space[len(n.Space)-1]
	if last == '#' || last == '/' {
		return n.Local
	}
	return "#" + n.Local
}
