package rdfxml

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

const header = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xmlns:grdf="http://grdf.org/ontology/grdf#"
         xmlns:seconto="http://grdf.org/ontology/seconto#"
         xmlns:app="http://grdf.org/app#">`

func mustParse(t *testing.T, doc string) *rdf.Graph {
	t.Helper()
	g, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v\ndoc:\n%s", err, doc)
	}
	return g
}

func TestParseDescriptionWithResource(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <grdf:hasEnvelope rdf:resource="http://e/env"/>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.GRDFNS+"hasEnvelope"), rdf.IRI("http://e/env"))) {
		t.Errorf("missing triple:\n%s", g)
	}
}

func TestParseTypedNodeElement(t *testing.T) {
	doc := header + `
  <app:ChemSite rdf:about="http://grdf.org/app#NTEnergy">
    <app:hasSiteName>North Texas Energy</app:hasSiteName>
  </app:ChemSite>
</rdf:RDF>`
	g := mustParse(t, doc)
	s := rdf.IRI(rdf.AppNS + "NTEnergy")
	if !g.Has(rdf.T(s, rdf.RDFType, rdf.IRI(rdf.AppNS+"ChemSite"))) {
		t.Errorf("typed node element type missing:\n%s", g)
	}
	if !g.Has(rdf.T(s, rdf.IRI(rdf.AppNS+"hasSiteName"), rdf.NewString("North Texas Energy"))) {
		t.Errorf("literal property missing:\n%s", g)
	}
}

func TestParseDatatypeAndLang(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:count rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</app:count>
    <rdfs:label xml:lang="en">two</rdfs:label>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"count"), rdf.NewNonNegativeInteger(2))) {
		t.Errorf("typed literal missing:\n%s", g)
	}
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.RDFSLabel, rdf.NewLangString("two", "en"))) {
		t.Errorf("lang literal missing:\n%s", g)
	}
}

func TestParseNestedNodeElement(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <grdf:boundedBy>
      <grdf:Envelope rdf:about="http://e/env">
        <grdf:coordinates>1,2 3,4</grdf:coordinates>
      </grdf:Envelope>
    </grdf:boundedBy>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.GRDFNS+"boundedBy"), rdf.IRI("http://e/env"))) {
		t.Errorf("nested link missing:\n%s", g)
	}
	if !g.Has(rdf.T(rdf.IRI("http://e/env"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Envelope"))) {
		t.Errorf("nested type missing:\n%s", g)
	}
}

func TestParseNodeID(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:nodeID="b7">
    <app:x>1</app:x>
  </rdf:Description>
  <rdf:Description rdf:about="http://e/s">
    <app:ref rdf:nodeID="b7"/>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"ref"), rdf.BlankNode("b7"))) {
		t.Errorf("nodeID reference missing:\n%s", g)
	}
	if !g.Has(rdf.T(rdf.BlankNode("b7"), rdf.IRI(rdf.AppNS+"x"), rdf.NewString("1"))) {
		t.Errorf("nodeID subject missing:\n%s", g)
	}
}

func TestParseParseTypeResource(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:inner rdf:parseType="Resource">
      <app:a>1</app:a>
      <app:b>2</app:b>
    </app:inner>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	inner, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"inner"))
	if !ok || inner.Kind() != rdf.KindBlank {
		t.Fatalf("inner = %v", inner)
	}
	if v, _ := g.FirstObject(inner, rdf.IRI(rdf.AppNS+"a")); !v.Equal(rdf.NewString("1")) {
		t.Errorf("nested a = %v", v)
	}
}

func TestParseParseTypeCollection(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:members rdf:parseType="Collection">
      <rdf:Description rdf:about="http://e/a"/>
      <rdf:Description rdf:about="http://e/b"/>
    </app:members>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	head, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"members"))
	if !ok {
		t.Fatal("members missing")
	}
	items, err := g.ReadList(head)
	if err != nil || len(items) != 2 {
		t.Fatalf("list = %v, %v", items, err)
	}
}

func TestParseParseTypeLiteral(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:xml rdf:parseType="Literal"><b>bold</b> text</app:xml>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	o, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"xml"))
	if !ok {
		t.Fatal("xml literal missing")
	}
	lit := o.(rdf.Literal)
	if lit.Datatype != rdf.RDFXMLLiteral || !strings.Contains(lit.Value, "<b>bold</b>") {
		t.Errorf("literal = %+v", lit)
	}
}

func TestParsePropertyAttributes(t *testing.T) {
	doc := header + `
  <app:ChemSite rdf:about="http://e/s" app:hasSiteId="004221"/>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"hasSiteId"), rdf.NewString("004221"))) {
		t.Errorf("property attribute missing:\n%s", g)
	}
}

func TestParseEmptyPropertyWithAttrs(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:loc app:x="1" app:y="2"/>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	inner, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"loc"))
	if !ok || inner.Kind() != rdf.KindBlank {
		t.Fatalf("inner = %v", inner)
	}
	if v, _ := g.FirstObject(inner, rdf.IRI(rdf.AppNS+"x")); !v.Equal(rdf.NewString("1")) {
		t.Errorf("x = %v", v)
	}
}

func TestParseXMLBase(t *testing.T) {
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:app="http://grdf.org/app#"
         xml:base="http://base.org/doc">
  <rdf:Description rdf:ID="frag">
    <app:p rdf:resource="#other"/>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://base.org/doc#frag"), rdf.IRI(rdf.AppNS+"p"), rdf.IRI("http://base.org/doc#other"))) {
		t.Errorf("base resolution wrong:\n%s", g)
	}
}

// --- The paper's listings, as corrected RDF/XML ------------------------------

// List 3: EnvelopeWithTimePeriod with a cardinality-2 restriction on
// temporal#hasTimePosition.
const list3 = header + `
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#EnvelopeWithTimePeriod">
    <rdfs:subClassOf>
      <owl:Restriction>
        <owl:cardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</owl:cardinality>
        <owl:onProperty>
          <owl:ObjectProperty rdf:about="http://grdf.org/ontology/temporal#hasTimePosition"/>
        </owl:onProperty>
      </owl:Restriction>
    </rdfs:subClassOf>
  </owl:Class>
</rdf:RDF>`

func TestParseList3EnvelopeWithTimePeriod(t *testing.T) {
	g := mustParse(t, list3)
	cls := rdf.IRI(rdf.GRDFNS + "EnvelopeWithTimePeriod")
	if !g.Has(rdf.T(cls, rdf.RDFType, rdf.OWLClass)) {
		t.Error("owl:Class assertion missing")
	}
	restr, ok := g.FirstObject(cls, rdf.RDFSSubClassOf)
	if !ok {
		t.Fatal("subClassOf missing")
	}
	if card, _ := g.FirstObject(restr, rdf.OWLCardinality); !card.Equal(rdf.NewNonNegativeInteger(2)) {
		t.Errorf("cardinality = %v", card)
	}
	onProp, ok := g.FirstObject(restr, rdf.OWLOnProperty)
	if !ok || !onProp.Equal(rdf.IRI(rdf.GRDFTemporalNS+"hasTimePosition")) {
		t.Errorf("onProperty = %v", onProp)
	}
}

// List 8: the 'main repair' policy.
const list8 = header + `
  <seconto:Subject rdf:about="http://grdf.org/ontology/seconto#MainRep">
    <seconto:hasPolicy rdf:resource="http://grdf.org/ontology/seconto#MainRepPolicy1"/>
  </seconto:Subject>
  <seconto:Policy rdf:about="http://grdf.org/ontology/seconto#MainRepPolicy1">
    <seconto:hasAction rdf:resource="http://grdf.org/ontology/seconto#View"/>
    <seconto:hasCondition rdf:resource="http://grdf.org/ontology/seconto#CondSites"/>
    <seconto:hasPolicyDecision rdf:resource="http://grdf.org/ontology/seconto#Permit"/>
    <seconto:hasResource rdf:resource="http://grdf.org/app#ChemSite"/>
  </seconto:Policy>
  <seconto:ConditionValue rdf:about="http://grdf.org/ontology/seconto#CondSites">
    <seconto:condValDefinition rdf:parseType="Resource">
      <seconto:hasPropertyAccess rdf:resource="http://grdf.org/ontology/grdf#boundedBy"/>
    </seconto:condValDefinition>
  </seconto:ConditionValue>
</rdf:RDF>`

func TestParseList8Policy(t *testing.T) {
	g := mustParse(t, list8)
	pol := rdf.IRI(rdf.SecOntoNS + "MainRepPolicy1")
	if !g.Has(rdf.T(rdf.IRI(rdf.SecOntoNS+"MainRep"), rdf.IRI(rdf.SecOntoNS+"hasPolicy"), pol)) {
		t.Error("hasPolicy missing")
	}
	for _, pair := range [][2]rdf.IRI{
		{rdf.IRI(rdf.SecOntoNS + "hasAction"), rdf.IRI(rdf.SecOntoNS + "View")},
		{rdf.IRI(rdf.SecOntoNS + "hasPolicyDecision"), rdf.IRI(rdf.SecOntoNS + "Permit")},
		{rdf.IRI(rdf.SecOntoNS + "hasResource"), rdf.IRI(rdf.AppNS + "ChemSite")},
	} {
		if !g.Has(rdf.T(pol, pair[0], pair[1])) {
			t.Errorf("missing %s -> %s", pair[0], pair[1])
		}
	}
	cond := rdf.IRI(rdf.SecOntoNS + "CondSites")
	def, ok := g.FirstObject(cond, rdf.IRI(rdf.SecOntoNS+"condValDefinition"))
	if !ok {
		t.Fatal("condValDefinition missing")
	}
	if v, _ := g.FirstObject(def, rdf.IRI(rdf.SecOntoNS+"hasPropertyAccess")); !v.Equal(rdf.IRI(rdf.GRDFNS + "boundedBy")) {
		t.Errorf("hasPropertyAccess = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<rdf:RDF xmlns:rdf="` + rdf.RDFNS + `"><rdf:Description rdf:parseType="Resource"/></rdf:RDF>`,
		header + `<rdf:Description rdf:about="http://e/s"><app:p rdf:parseType="Wat">x</app:p></rdf:Description></rdf:RDF>`,
		`<unclosed`,
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.RDFType, rdf.IRI(rdf.AppNS+"ChemSite")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"hasSiteName"), rdf.NewString("North Texas <Energy> & Co")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"hasChemicalInfo"), rdf.BlankNode("info")),
		rdf.T(rdf.BlankNode("info"), rdf.IRI(rdf.AppNS+"hasChemName"), rdf.NewString("Sulfuric Acid")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"count"), rdf.NewInteger(3)),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.RDFSLabel, rdf.NewLangString("site", "en")),
	)
	out := Format(g, nil)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !back.Equal(g) {
		t.Errorf("round trip mismatch.\nout:\n%s\nhave:\n%s\nwant:\n%s", out, back, g)
	}
}

func TestWriteTypedElementShorthand(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI(rdf.GRDFNS+"p1"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Point")),
	)
	out := Format(g, nil)
	if !strings.Contains(out, "<grdf:Point rdf:about=") {
		t.Errorf("typed element shorthand missing:\n%s", out)
	}
}

func TestWriteUnboundNamespacePredicate(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://unbound.example/ns#p"), rdf.NewString("v")),
	)
	out := Format(g, nil)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !back.Equal(g) {
		t.Errorf("unbound namespace round trip failed:\n%s\ngot:\n%s", out, back)
	}
}

func TestParseContainers(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:members>
      <rdf:Bag>
        <rdf:li>one</rdf:li>
        <rdf:li>two</rdf:li>
        <rdf:li rdf:resource="http://e/three"/>
      </rdf:Bag>
    </app:members>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	bag, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"members"))
	if !ok {
		t.Fatal("bag missing")
	}
	if !g.Has(rdf.T(bag, rdf.RDFType, rdf.IRI(rdf.RDFNS+"Bag"))) {
		t.Error("Bag type missing")
	}
	if v, _ := g.FirstObject(bag, rdf.IRI(rdf.RDFNS+"_1")); !v.Equal(rdf.NewString("one")) {
		t.Errorf("_1 = %v", v)
	}
	if v, _ := g.FirstObject(bag, rdf.IRI(rdf.RDFNS+"_2")); !v.Equal(rdf.NewString("two")) {
		t.Errorf("_2 = %v", v)
	}
	if v, _ := g.FirstObject(bag, rdf.IRI(rdf.RDFNS+"_3")); !v.Equal(rdf.IRI("http://e/three")) {
		t.Errorf("_3 = %v", v)
	}
}

func TestParseLiInsideParseTypeResource(t *testing.T) {
	doc := header + `
  <rdf:Description rdf:about="http://e/s">
    <app:inner rdf:parseType="Resource">
      <rdf:li>x</rdf:li>
      <rdf:li>y</rdf:li>
    </app:inner>
  </rdf:Description>
</rdf:RDF>`
	g := mustParse(t, doc)
	inner, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"inner"))
	if !ok {
		t.Fatal("inner missing")
	}
	if v, _ := g.FirstObject(inner, rdf.IRI(rdf.RDFNS+"_2")); !v.Equal(rdf.NewString("y")) {
		t.Errorf("_2 = %v", v)
	}
}
