package rdfxml

import (
	"bufio"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Write serializes g as RDF/XML. Namespaces present in prefixes (nil = the
// common GRDF set) are declared on the rdf:RDF root when used. Subjects are
// emitted as typed node elements when they have exactly one rdf:type whose
// IRI is compactable, otherwise as rdf:Description elements. Output order is
// deterministic.
func Write(w io.Writer, g *rdf.Graph, prefixes *rdf.Prefixes) error {
	if prefixes == nil {
		prefixes = rdf.CommonPrefixes()
	}
	bw := bufio.NewWriter(w)

	type nsBinding struct{ prefix, ns string }
	var bindings []nsBinding
	prefixes.Each(func(prefix, ns string) {
		bindings = append(bindings, nsBinding{prefix, ns})
	})

	// Which namespaces are used?
	usedNS := map[string]bool{rdf.RDFNS: true}
	noteIRI := func(iri rdf.IRI) {
		for _, b := range bindings {
			if strings.HasPrefix(string(iri), b.ns) {
				usedNS[b.ns] = true
			}
		}
	}
	for _, t := range g.Triples() {
		if s, ok := t.Subject.(rdf.IRI); ok {
			noteIRI(s)
		}
		noteIRI(t.Predicate.(rdf.IRI))
		switch o := t.Object.(type) {
		case rdf.IRI:
			noteIRI(o)
		case rdf.Literal:
			if o.Datatype != "" {
				noteIRI(o.Datatype)
			}
		}
	}

	bw.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	bw.WriteString(`<rdf:RDF xmlns:rdf="` + rdf.RDFNS + `"`)
	for _, b := range bindings {
		if b.ns == rdf.RDFNS || !usedNS[b.ns] {
			continue
		}
		bw.WriteString("\n         xmlns:" + b.prefix + `="` + b.ns + `"`)
	}
	bw.WriteString(">\n")

	// Group triples by subject.
	bySubject := map[rdf.Term][]rdf.Triple{}
	var subjects []rdf.Term
	for _, t := range g.Triples() {
		if _, ok := bySubject[t.Subject]; !ok {
			subjects = append(subjects, t.Subject)
		}
		bySubject[t.Subject] = append(bySubject[t.Subject], t)
	}
	sort.Slice(subjects, func(i, j int) bool {
		return subjects[i].String() < subjects[j].String()
	})

	for _, s := range subjects {
		ts := bySubject[s]
		sort.Slice(ts, func(i, j int) bool {
			pi, pj := ts[i].Predicate.String(), ts[j].Predicate.String()
			if pi != pj {
				return pi < pj
			}
			return ts[i].Object.String() < ts[j].Object.String()
		})

		// Pick a node element name: a single compactable rdf:type, else
		// rdf:Description.
		elem := "rdf:Description"
		var typeObj rdf.Term
		typeCount := 0
		for _, t := range ts {
			if t.Predicate.Equal(rdf.RDFType) {
				typeCount++
				typeObj = t.Object
			}
		}
		var consumedType rdf.Term
		if typeCount == 1 {
			if iri, ok := typeObj.(rdf.IRI); ok {
				if q := qname(iri, prefixes); q != "" {
					elem = q
					consumedType = typeObj
				}
			}
		}

		bw.WriteString("  <" + elem)
		switch sv := s.(type) {
		case rdf.IRI:
			bw.WriteString(` rdf:about="` + escapeAttr(string(sv)) + `"`)
		case rdf.BlankNode:
			bw.WriteString(` rdf:nodeID="` + escapeAttr(string(sv)) + `"`)
		}
		bw.WriteString(">\n")

		for _, t := range ts {
			if consumedType != nil && t.Predicate.Equal(rdf.RDFType) && t.Object.Equal(consumedType) {
				continue
			}
			pq := qname(t.Predicate.(rdf.IRI), prefixes)
			if pq == "" {
				// Predicate outside every bound namespace: synthesize a
				// one-off binding inline.
				ns := t.Predicate.(rdf.IRI).Namespace()
				local := t.Predicate.(rdf.IRI).LocalName()
				pq = "x:" + local
				bw.WriteString(`    <` + pq + ` xmlns:x="` + escapeAttr(ns) + `"`)
				writePropertyRest(bw, t, pq)
				continue
			}
			bw.WriteString("    <" + pq)
			writePropertyRest(bw, t, pq)
		}
		bw.WriteString("  </" + elem + ">\n")
	}
	bw.WriteString("</rdf:RDF>\n")
	return bw.Flush()
}

// writePropertyRest finishes a property element whose opening "<name" has
// been written.
func writePropertyRest(bw *bufio.Writer, t rdf.Triple, pq string) {
	switch o := t.Object.(type) {
	case rdf.IRI:
		bw.WriteString(` rdf:resource="` + escapeAttr(string(o)) + `"/>` + "\n")
	case rdf.BlankNode:
		bw.WriteString(` rdf:nodeID="` + escapeAttr(string(o)) + `"/>` + "\n")
	case rdf.Literal:
		switch {
		case o.Lang != "":
			bw.WriteString(` xml:lang="` + escapeAttr(o.Lang) + `">`)
		case o.Datatype != "" && o.Datatype != rdf.XSDString:
			bw.WriteString(` rdf:datatype="` + escapeAttr(string(o.Datatype)) + `">`)
		default:
			bw.WriteString(">")
		}
		bw.WriteString(escapeText(o.Value))
		bw.WriteString("</" + pq + ">\n")
	}
}

// Format renders the graph as an RDF/XML string.
func Format(g *rdf.Graph, prefixes *rdf.Prefixes) string {
	var sb strings.Builder
	_ = Write(&sb, g, prefixes)
	return sb.String()
}

// qname compacts an IRI to prefix:local when the local part is XML-name-safe.
func qname(iri rdf.IRI, prefixes *rdf.Prefixes) string {
	c := prefixes.Compact(iri)
	if strings.HasPrefix(c, "<") {
		return ""
	}
	idx := strings.IndexByte(c, ':')
	local := c[idx+1:]
	if local == "" || !validXMLName(local) {
		return ""
	}
	return c
}

func validXMLName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
