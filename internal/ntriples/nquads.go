package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// N-Quads support: the line-oriented dataset format. A quad is a triple plus
// an optional graph label; label-less lines land in the default graph. This
// is how multi-source GRDF deployments (the paper's clearinghouses) exchange
// datasets with provenance intact.

// ReadQuads parses an N-Quads document into a dataset.
func ReadQuads(r io.Reader) (*store.Dataset, error) {
	ds := store.NewDataset()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		q, err := parseQuadLine(text, line)
		if err != nil {
			return nil, err
		}
		if q.Graph == nil {
			ds.Default().Add(q.Triple)
			continue
		}
		g, ok := q.Graph.(rdf.IRI)
		if !ok {
			return nil, &ParseError{Line: line, Msg: "graph label must be an IRI"}
		}
		st, _ := ds.Graph(g, true)
		st.Add(q.Triple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ParseQuadsString parses an N-Quads document from a string.
func ParseQuadsString(doc string) (*store.Dataset, error) {
	return ReadQuads(strings.NewReader(doc))
}

// parseQuadLine reuses the N-Triples term parser and accepts an optional
// fourth term before the dot.
func parseQuadLine(line string, lineNo int) (rdf.Quad, error) {
	r := &Reader{line: lineNo}
	pos := 0
	subj, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Quad{}, err
	}
	pos = skipWS(line, pos)
	pred, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Quad{}, err
	}
	pos = skipWS(line, pos)
	obj, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Quad{}, err
	}
	pos = skipWS(line, pos)
	var graph rdf.Term
	if pos < len(line) && line[pos] != '.' {
		graph, pos, err = r.parseTerm(line, pos)
		if err != nil {
			return rdf.Quad{}, err
		}
		pos = skipWS(line, pos)
	}
	if pos >= len(line) || line[pos] != '.' {
		return rdf.Quad{}, &ParseError{Line: lineNo, Msg: fmt.Sprintf("expected '.' terminator, got %q", rest(line, pos))}
	}
	if tail := strings.TrimSpace(line[pos+1:]); tail != "" && !strings.HasPrefix(tail, "#") {
		return rdf.Quad{}, &ParseError{Line: lineNo, Msg: fmt.Sprintf("trailing content %q", tail)}
	}
	t, err := rdf.NewTriple(subj, pred, obj)
	if err != nil {
		return rdf.Quad{}, &ParseError{Line: lineNo, Msg: err.Error()}
	}
	return rdf.Quad{Triple: t, Graph: graph}, nil
}

// WriteQuads serializes a dataset as N-Quads in deterministic order: default
// graph first, then named graphs sorted by name.
func WriteQuads(w io.Writer, ds *store.Dataset) error {
	bw := bufio.NewWriter(w)
	emit := func(ts []rdf.Triple, graph rdf.Term) error {
		lines := make([]string, 0, len(ts))
		for _, t := range ts {
			q := rdf.Quad{Triple: t, Graph: graph}
			lines = append(lines, q.String())
		}
		sort.Strings(lines)
		for _, l := range lines {
			if _, err := bw.WriteString(l + "\n"); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(ds.Default().Triples(), nil); err != nil {
		return err
	}
	for _, name := range ds.GraphNames() {
		st, _ := ds.Graph(name, false)
		if err := emit(st.Triples(), name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatQuads renders a dataset as an N-Quads string.
func FormatQuads(ds *store.Dataset) string {
	var sb strings.Builder
	_ = WriteQuads(&sb, ds)
	return sb.String()
}
