// Package ntriples implements the N-Triples line-oriented RDF interchange
// format (reader and writer). It is the lowest common denominator codec used
// by the test suite to round-trip graphs and by the benchmark harness to load
// bulk data.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/rdf"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Reader parses N-Triples documents.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple, or io.EOF at end of input.
func (r *Reader) Read() (rdf.Triple, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := r.parseLine(line)
		if err != nil {
			return rdf.Triple{}, err
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{}, io.EOF
}

// ReadAll reads every triple into a graph.
func (r *Reader) ReadAll() (*rdf.Graph, error) {
	g := rdf.NewGraph()
	for {
		t, err := r.Read()
		if err == io.EOF {
			return g, nil
		}
		if err != nil {
			return g, err
		}
		g.Add(t)
	}
}

// ParseString parses a complete N-Triples document from a string.
func ParseString(doc string) (*rdf.Graph, error) {
	return NewReader(strings.NewReader(doc)).ReadAll()
}

func (r *Reader) errf(format string, args ...any) error {
	return &ParseError{Line: r.line, Msg: fmt.Sprintf(format, args...)}
}

func (r *Reader) parseLine(line string) (rdf.Triple, error) {
	pos := 0
	subj, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Triple{}, err
	}
	pos = skipWS(line, pos)
	pred, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Triple{}, err
	}
	pos = skipWS(line, pos)
	obj, pos, err := r.parseTerm(line, pos)
	if err != nil {
		return rdf.Triple{}, err
	}
	pos = skipWS(line, pos)
	if pos >= len(line) || line[pos] != '.' {
		return rdf.Triple{}, r.errf("expected '.' terminator, got %q", rest(line, pos))
	}
	if tail := strings.TrimSpace(line[pos+1:]); tail != "" && !strings.HasPrefix(tail, "#") {
		return rdf.Triple{}, r.errf("trailing content %q", tail)
	}
	t, err := rdf.NewTriple(subj, pred, obj)
	if err != nil {
		return rdf.Triple{}, r.errf("%v", err)
	}
	return t, nil
}

func (r *Reader) parseTerm(line string, pos int) (rdf.Term, int, error) {
	if pos >= len(line) {
		return nil, pos, r.errf("unexpected end of line")
	}
	switch line[pos] {
	case '<':
		end := strings.IndexByte(line[pos:], '>')
		if end < 0 {
			return nil, pos, r.errf("unterminated IRI")
		}
		iri := line[pos+1 : pos+end]
		return rdf.IRI(unescape(iri)), pos + end + 1, nil
	case '_':
		if pos+1 >= len(line) || line[pos+1] != ':' {
			return nil, pos, r.errf("malformed blank node at %q", rest(line, pos))
		}
		end := pos + 2
		for end < len(line) && !isWS(line[end]) {
			end++
		}
		label := line[pos+2 : end]
		if label == "" {
			return nil, pos, r.errf("empty blank node label")
		}
		return rdf.BlankNode(label), end, nil
	case '"':
		val, next, err := r.parseQuoted(line, pos)
		if err != nil {
			return nil, pos, err
		}
		lit := rdf.Literal{Value: val, Datatype: rdf.XSDString}
		if next < len(line) && line[next] == '@' {
			end := next + 1
			for end < len(line) && !isWS(line[end]) && line[end] != '.' {
				end++
			}
			lit = rdf.NewLangString(val, line[next+1:end])
			return lit, end, nil
		}
		if next+1 < len(line) && line[next] == '^' && line[next+1] == '^' {
			if next+2 >= len(line) || line[next+2] != '<' {
				return nil, pos, r.errf("malformed datatype IRI")
			}
			end := strings.IndexByte(line[next+2:], '>')
			if end < 0 {
				return nil, pos, r.errf("unterminated datatype IRI")
			}
			lit.Datatype = rdf.IRI(line[next+3 : next+2+end])
			return lit, next + 2 + end + 1, nil
		}
		return lit, next, nil
	default:
		return nil, pos, r.errf("unexpected character %q", line[pos])
	}
}

// parseQuoted parses a double-quoted string starting at pos (line[pos]=='"')
// and returns the unescaped value and the index after the closing quote.
func (r *Reader) parseQuoted(line string, pos int) (string, int, error) {
	var sb strings.Builder
	i := pos + 1
	for i < len(line) {
		c := line[i]
		switch c {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 >= len(line) {
				return "", i, r.errf("dangling escape")
			}
			i++
			switch line[i] {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'u', 'U':
				width := 4
				if line[i] == 'U' {
					width = 8
				}
				if i+width >= len(line) {
					return "", i, r.errf("truncated \\%c escape", line[i])
				}
				var cp rune
				if _, err := fmt.Sscanf(line[i+1:i+1+width], "%x", &cp); err != nil {
					return "", i, r.errf("bad unicode escape: %v", err)
				}
				sb.WriteRune(cp)
				i += width
			default:
				return "", i, r.errf("unknown escape \\%c", line[i])
			}
			i++
		default:
			_, size := utf8.DecodeRuneInString(line[i:])
			sb.WriteString(line[i : i+size])
			i += size
		}
	}
	return "", i, r.errf("unterminated string literal")
}

func unescape(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
			width := 4
			if s[i+1] == 'U' {
				width = 8
			}
			if i+2+width <= len(s) {
				var cp rune
				if _, err := fmt.Sscanf(s[i+2:i+2+width], "%x", &cp); err == nil {
					sb.WriteRune(cp)
					i += 2 + width
					continue
				}
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func skipWS(line string, pos int) int {
	for pos < len(line) && isWS(line[pos]) {
		pos++
	}
	return pos
}

func isWS(c byte) bool { return c == ' ' || c == '\t' }

func rest(line string, pos int) string {
	if pos >= len(line) {
		return ""
	}
	if len(line)-pos > 20 {
		return line[pos:pos+20] + "…"
	}
	return line[pos:]
}

// Write serializes the graph to w, one triple per line, in stable sorted
// order so that output is deterministic.
func Write(w io.Writer, g *rdf.Graph) error {
	lines := make([]string, 0, g.Len())
	for _, t := range g.Triples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format renders the graph as an N-Triples string.
func Format(g *rdf.Graph) string {
	var sb strings.Builder
	// Write to a strings.Builder cannot fail.
	_ = Write(&sb, g)
	return sb.String()
}
