package ntriples

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary byte strings at the N-Triples parser. The
// invariant is purely defensive: no panic, no hang, and every triple of a
// successfully parsed document survives a Format/ParseString round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"<http://a> <http://b> <http://c> .\n",
		`<http://a> <http://b> "lit"@en .` + "\n",
		`<http://a> <http://b> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .` + "\n",
		"_:b0 <http://p> _:b1 .\n# comment\n",
		`<http://a> <http://b> "esc\"q\nnl" .` + "\n",
		"<http://a> <http://b> .\n",  // missing object
		"<http://a <http://b> <c> .", // broken IRI
		"\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<14 {
			return // bound per-input work; length adds no parser states
		}
		g, err := ParseString(doc)
		if err != nil || g == nil {
			return
		}
		back, err := ParseString(Format(g))
		if err != nil {
			t.Fatalf("round trip rejected our own output: %v\nsource: %q", err, doc)
		}
		if got, want := len(back.Triples()), len(g.Triples()); got != want {
			t.Fatalf("round trip kept %d of %d triples\nsource: %q", got, want, doc)
		}
	})
}

// FuzzReader feeds the streaming Reader the same inputs line-split, checking
// it never panics and errors deterministically.
func FuzzReader(f *testing.F) {
	f.Add("<http://a> <http://b> <http://c> .\n_:x <http://p> \"v\" .\n")
	f.Add("junk line\n<http://a> <http://b> <http://c> .\n")
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<14 {
			return
		}
		r := NewReader(strings.NewReader(doc))
		for i := 0; i < 1<<12; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}
