package ntriples

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestParseBasic(t *testing.T) {
	doc := `
# a comment
<http://e/s> <http://e/p> <http://e/o> .
<http://e/s> <http://e/p> "plain" .
<http://e/s> <http://e/p> "tagged"@en .
<http://e/s> <http://e/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://e/p> _:b2 .
`
	g, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewLangString("tagged", "en"))) {
		t.Error("lang literal missing")
	}
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewInteger(42))) {
		t.Error("typed literal missing")
	}
	if !g.Has(rdf.T(rdf.BlankNode("b1"), rdf.IRI("http://e/p"), rdf.BlankNode("b2"))) {
		t.Error("blank node triple missing")
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "line1\nline2\t\"quoted\" back\\slash" .` + "\n" +
		`<http://e/s> <http://e/p> "étude \U0001F600" .` + "\n"
	g, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want1 := "line1\nline2\t\"quoted\" back\\slash"
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewString(want1))) {
		t.Errorf("escape handling wrong:\n%s", g)
	}
	want2 := "étude 😀"
	if !g.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewString(want2))) {
		t.Errorf("unicode escape handling wrong:\n%s", g)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,        // missing dot
		`<http://e/s> <http://e/p> .`,                   // missing object
		`<http://e/s <http://e/p> <http://e/o> .`,       // unterminated IRI
		`"lit" <http://e/p> <http://e/o> .`,             // literal subject
		`<http://e/s> _:b <http://e/o> .`,               // blank predicate
		`<http://e/s> <http://e/p> "unterminated .`,     // unterminated literal
		`<http://e/s> <http://e/p> "x"^^bad .`,          // bad datatype
		`<http://e/s> <http://e/p> <http://e/o> . junk`, // trailing junk
		`<http://e/s> <http://e/p> "\q" .`,              // unknown escape
		`? <http://e/p> <http://e/o> .`,                 // bad start char
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
}

func TestParseErrorLineNumber(t *testing.T) {
	doc := "<http://e/s> <http://e/p> <http://e/o> .\nbad line\n"
	_, err := ParseString(doc)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only comments\n\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/b"), rdf.IRI("http://e/p"), rdf.NewString("2")),
		rdf.T(rdf.IRI("http://e/a"), rdf.IRI("http://e/p"), rdf.NewString("1")),
	)
	out := Format(g)
	if !strings.HasPrefix(out, `<http://e/a>`) {
		t.Errorf("output not sorted:\n%s", out)
	}
	g2 := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/a"), rdf.IRI("http://e/p"), rdf.NewString("1")),
		rdf.T(rdf.IRI("http://e/b"), rdf.IRI("http://e/p"), rdf.NewString("2")),
	)
	if Format(g2) != out {
		t.Error("output order depends on insertion order")
	}
}

func TestRoundTrip(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/s"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Feature")),
		rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.GRDFNS+"coordinates"), rdf.NewString("2533822.17,7108248.82")),
		rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.AppNS+"hasObjectID"), rdf.NewInteger(11070)),
		rdf.T(rdf.BlankNode("x"), rdf.RDFSLabel, rdf.NewLangString("flux", "fr")),
		rdf.T(rdf.IRI("http://e/s"), rdf.RDFSComment, rdf.NewString("tabs\tand\nnewlines")),
	)
	back, err := ParseString(Format(g))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !back.Equal(g) {
		t.Errorf("round trip mismatch:\nhave:\n%s\nwant:\n%s", back, g)
	}
}

// Property: any graph of simple string literals survives a round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		g := rdf.NewGraph()
		for i, v := range vals {
			if i > 20 {
				break
			}
			g.Add(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewString(v)))
		}
		back, err := ParseString(Format(g))
		return err == nil && back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuadsRoundTrip(t *testing.T) {
	doc := `
<http://e/s> <http://e/p> "default graph" .
<http://e/s> <http://e/p> "in hydro" <http://g/hydro> .
<http://e/s2> <http://e/p> <http://e/o> <http://g/chem> .
# comment
`
	ds, err := ParseQuadsString(doc)
	if err != nil {
		t.Fatalf("ParseQuads: %v", err)
	}
	if ds.Default().Len() != 1 {
		t.Errorf("default graph = %d", ds.Default().Len())
	}
	names := ds.GraphNames()
	if len(names) != 2 {
		t.Fatalf("graphs = %v", names)
	}
	hydro, _ := ds.Graph(rdf.IRI("http://g/hydro"), false)
	if hydro.Len() != 1 || !hydro.Has(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewString("in hydro"))) {
		t.Errorf("hydro graph wrong: %s", hydro)
	}
	out := FormatQuads(ds)
	back, err := ParseQuadsString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if back.Len() != ds.Len() {
		t.Errorf("round trip %d -> %d\n%s", ds.Len(), back.Len(), out)
	}
	if FormatQuads(back) != out {
		t.Error("serialization not canonical")
	}
}

func TestQuadsErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> "x" "graph-literal" .`, // literal graph label
		`<http://e/s> <http://e/p> "x" <http://g> extra .`,
		`<http://e/s> <http://e/p> .`,
		`<http://e/s> <http://e/p> "x" <http://g>`,
	}
	for _, doc := range bad {
		if _, err := ParseQuadsString(doc); err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
	// blank node graph labels are rejected (we keep labels as IRIs)
	if _, err := ParseQuadsString(`<http://e/s> <http://e/p> "x" _:g .`); err == nil {
		t.Error("blank graph label accepted")
	}
}
