package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"time"

	"repro/internal/admission"
	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/seconto"
)

// E20Admission closes the loop E17 opened. E17 (BENCH_LOAD) measured the
// failure mode of an ungated server: past the knee, every request is
// admitted, queues grow without bound, and the corrected p99 collapses into
// seconds while goodput stalls. This experiment re-runs the same offered-load
// sweep with the admission controller in front — AIMD concurrency limits per
// route class, a deadline-bounded queue that sheds with 429 + Retry-After,
// and priority tiers — and records what overload looks like when refusal is
// a first-class answer:
//
//   - at every offered rate, admitted requests keep a bounded corrected p99
//     (the queue deadline caps how much waiting can become latency);
//   - goodput at 2x the knee stays at the knee's plateau instead of
//     collapsing — the controller converts excess offered load into fast
//     sheds, not queueing;
//   - under the same overload, high-priority traffic (the paper's
//     EmergencyResponse role) is answered at >= 99% while best-effort
//     absorbs the sheds.
func E20Admission(requests int) *Table {
	if requests <= 0 {
		requests = 200
	}
	t := &Table{
		ID: "E20",
		Title: "Adaptive admission control under overload: goodput, admitted p99 " +
			"and priority tiers vs the E17 ungated collapse",
		Columns: []string{"arm", "offered rps", "achieved", "goodput",
			"admitted p99", "shed", "shed%", "slo"},
	}
	const (
		sloLatency = 250 * time.Millisecond
		sloAvail   = 0.999
	)

	row := func(name string, rps float64, rep load.Report) {
		verdict := "PASS"
		if !rep.SLO.Pass {
			verdict = "FAIL"
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.1f", rep.AchievedRPS),
			fmt.Sprintf("%.1f", rep.GoodputRPS),
			fmt.Sprintf("%.2fms", rep.Corrected.P99Ms),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%.1f%%", rep.ShedRate*100),
			verdict)
	}

	// The admission-on sweep over the same fixed rates as E17/BENCH_LOAD.
	// The e20 server runs the engine uncached so the knee sits inside the
	// sweep on any plausible hardware; the overload comparison below still
	// calibrates its own rate rather than trusting the fixed steps.
	var plateau float64
	for _, rps := range []float64{100, 200, 400, 800} {
		rep, err := e20Arm(rps, requests, true, sloLatency, sloAvail)
		if err != nil {
			t.AddNote("admission arm %v rps failed: %v", rps, err)
			return t
		}
		row("admission", rps, rep)
		if rep.SLO.Pass && rep.GoodputRPS > plateau {
			plateau = rep.GoodputRPS
		}
	}

	// Calibrate this machine's actual capacity with a short ungated blast,
	// then offer twice that — guaranteed overload wherever the knee is.
	capacity, err := e20Capacity(sloLatency, sloAvail)
	if err != nil {
		t.AddNote("capacity calibration failed: %v", err)
		return t
	}
	overloadRPS := 2 * capacity

	over, err := e20Arm(overloadRPS, requests, true, sloLatency, sloAvail)
	if err != nil {
		t.AddNote("admission overload arm failed: %v", err)
		return t
	}
	row("admission", overloadRPS, over)
	base, err := e20Arm(overloadRPS, requests, false, sloLatency, sloAvail)
	if err != nil {
		t.AddNote("ungated baseline failed: %v", err)
		return t
	}
	row("ungated", overloadRPS, base)

	t.AddNote("calibrated capacity ~%.0f rps (ungated goodput under blast); overload arms offer 2x", capacity)
	t.AddNote("admission at %.0f rps offered (2x capacity): admitted p99 %.1fms (target <= %v), goodput %.1f rps vs sweep plateau %.1f (held: %s)",
		overloadRPS, over.Corrected.P99Ms, sloLatency, over.GoodputRPS, plateau,
		mark(over.Corrected.P99Ms <= float64(sloLatency)/float64(time.Millisecond) &&
			over.GoodputRPS >= plateau*0.9))
	t.AddNote("ungated at %.0f rps offered: corrected p99 %.1fms, goodput %.1f — the queue-collapse mode admission exists to prevent",
		overloadRPS, base.Corrected.P99Ms, base.GoodputRPS)

	// Priority tiers under the same overload: 25% of the offered load rides
	// the EmergencyResponse role (High on the server), 75% tags itself low.
	highRate, lowRate, shed, err := e20Priority(overloadRPS, requests, sloLatency, sloAvail)
	if err != nil {
		t.AddNote("priority arm failed: %v", err)
		return t
	}
	t.AddNote("priority tiers at %.0f rps offered: EmergencyResponse answered %.2f%% (>= 99%%: %s), best-effort answered %.2f%% (%d sheds)",
		overloadRPS, highRate*100, mark(highRate >= 0.99), lowRate*100, shed)
	t.AddNote("sheds answer in microseconds with Retry-After and are excluded from the latency distributions; p99 is admitted traffic only")
	return t
}

// e20Capacity measures the machine's ungated goodput for the Sec 7.1 mix
// with a short open-loop blast far past any plausible knee.
func e20Capacity(sloLatency time.Duration, sloAvail float64) (float64, error) {
	srv := e20Server(false, sloLatency, sloAvail)
	defer srv.Close()
	arms, err := load.ScenarioArms(load.MixConfig{BaseURL: srv.URL, Client: srv.Client()})
	if err != nil {
		return 0, err
	}
	// Bounded concurrency: an unbounded blast would push the server into
	// the very collapse we are calibrating around and goodput would measure
	// the collapse, not the capacity. 32 workers drain at the service rate.
	res, err := load.Run(context.Background(), load.Config{
		RPS:         2000,
		Duration:    500 * time.Millisecond,
		MaxInFlight: 32,
		Arms:        arms,
		SLO:         load.SLO{Latency: sloLatency, Availability: sloAvail},
	})
	if err != nil {
		return 0, err
	}
	c := res.Report().GoodputRPS
	if c < 50 {
		c = 50
	}
	return c, nil
}

// e20Server starts a fresh in-process server over the Sec 7.1 scenario,
// optionally fronted by an admission controller defending the experiment's
// 250ms SLO. Unlike E17 the engine runs with the query cache off: every
// request pays the full decision-engine walk, which pins the capacity knee
// low enough that the open-loop generator in the same process can genuinely
// over-drive it.
func e20Server(withAdmission bool, sloLatency time.Duration, sloAvail float64) *httptest.Server {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 61, Sites: 12})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	engine := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
	slo := obs.NewSLOEngine(obs.SLOConfig{
		LatencyTarget:      sloLatency,
		AvailabilityTarget: sloAvail,
	})
	opts := []gsacs.ServerOption{gsacs.WithSLO(slo)}
	if withAdmission {
		// The SLO is judged on the p99 of queue wait + service, so the AIMD
		// loop defends a p98 service target of 1/5 the SLO — the queue
		// deadline plus the defended tail then fit the end-to-end budget
		// with headroom for the quantile gap. On a CPU-bound engine,
		// "service time" is mostly run-queue sharing: wall latency scales
		// with TOTAL in-flight across every class pool, which the per-class
		// windows cannot see. MaxLimit pins the aggregate to a few requests
		// per processor so one pool's healthy-looking concurrency cannot
		// inflate another pool's tail, and the loop is tuned smooth (small
		// probes, soft backoff, short period) because at this per-request
		// cost a probe burst is itself a visible latency spike.
		opts = append(opts, gsacs.WithAdmission(gsacs.AdmissionConfig{
			Controller: admission.NewController(admission.Config{
				MaxLimit:        4 * runtime.GOMAXPROCS(0),
				QueueDeadline:   100 * time.Millisecond,
				LatencyTarget:   sloLatency / 5,
				LatencyQuantile: 0.98,
				AdjustEvery:     100 * time.Millisecond,
				ProbeStep:       1,
				BackoffRatio:    0.8,
				Signal:          admission.DefaultSignal(slo, nil),
			}),
			PriorityHeader: "X-Priority",
		}))
	}
	return httptest.NewServer(gsacs.NewServer(engine, nil, opts...))
}

// e20Duration sizes one fixed-rate trial: nominally requests/rps, floored so
// the AIMD controller (250ms adjustment period) gets several control cycles
// even on small -requests runs, capped so the full sweep stays tractable.
func e20Duration(rps float64, requests int) time.Duration {
	d := time.Duration(float64(requests) / rps * float64(time.Second))
	if d < 1500*time.Millisecond {
		d = 1500 * time.Millisecond
	}
	if d > 6*time.Second {
		d = 6 * time.Second
	}
	return d
}

// e20Arm runs the standard Sec 7.1 mix at one offered rate.
func e20Arm(rps float64, requests int, withAdmission bool, sloLatency time.Duration, sloAvail float64) (load.Report, error) {
	srv := e20Server(withAdmission, sloLatency, sloAvail)
	defer srv.Close()
	arms, err := load.ScenarioArms(load.MixConfig{
		BaseURL: srv.URL,
		Client:  srv.Client(),
	})
	if err != nil {
		return load.Report{}, err
	}
	res, err := load.Run(context.Background(), load.Config{
		RPS:      rps,
		Duration: e20Duration(rps, requests),
		Arms:     arms,
		SLO:      load.SLO{Latency: sloLatency, Availability: sloAvail},
	})
	if err != nil {
		return load.Report{}, err
	}
	return res.Report(), nil
}

// e20Priority overloads one admission-gated server with a 25/75 split of
// high-tier (EmergencyResponse role) and self-tagged best-effort traffic and
// returns each tier's answered rate plus the total shed count.
func e20Priority(rps float64, requests int, sloLatency time.Duration, sloAvail float64) (high, low float64, shed uint64, err error) {
	srv := e20Server(true, sloLatency, sloAvail)
	defer srv.Close()
	client := srv.Client()

	// Both tiers issue the heavy Sec 7.1 aggregation walk: the contention
	// must be over the same query pool, or the light tier would simply fit
	// inside spare capacity and prove nothing.
	const aggQuery = `SELECT ?site ?name ?chem WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
  ?site app:hasChemicalInfo ?info .
  ?info app:chemical ?rec .
  ?rec app:hasChemName ?chem .
}`
	arm := func(name, role, priority string, weight int) load.Arm {
		u := srv.URL + "/v1/query?role=" + url.QueryEscape(role) + "&q=" + url.QueryEscape(aggQuery)
		return load.Arm{Name: name, Weight: weight,
			Do: func(ctx context.Context) (load.Outcome, error) {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
				if err != nil {
					return load.Error, err
				}
				if priority != "" {
					req.Header.Set("X-Priority", priority)
				}
				resp, err := client.Do(req)
				if err != nil {
					return load.Error, err
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					return load.Shed, nil
				case resp.StatusCode == http.StatusOK:
					return load.OK, nil
				default:
					return load.Error, fmt.Errorf("status %d", resp.StatusCode)
				}
			}}
	}
	res, err := load.Run(context.Background(), load.Config{
		RPS:      rps,
		Duration: e20Duration(rps, requests),
		Arms: []load.Arm{
			arm("high:EmergencyResponse", "EmergencyResponse", "", 1),
			arm("low:Hazmat", "Hazmat", "low", 3),
		},
		SLO: load.SLO{Latency: sloLatency, Availability: sloAvail},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	rep := res.Report()
	rate := func(name string) float64 {
		for _, a := range rep.Arms {
			if a.Name == name && a.Requests > 0 {
				return float64(a.OK+a.Degraded) / float64(a.Requests)
			}
		}
		return 0
	}
	return rate("high:EmergencyResponse"), rate("low:Hazmat"), rep.Shed, nil
}
