package experiments

import (
	"fmt"
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/store"
)

// E9Reasoning reproduces the "deduce new data" claim: materialization yields
// strictly more query answers, at measured cost, across dataset sizes.
func E9Reasoning(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{10, 50, 200}
	}
	t := &Table{
		ID:    "E9",
		Title: "Logical inference over GRDF data (conclusion claim)",
		Columns: []string{"sites", "asserted", "inferred", "time",
			"answers before", "answers after"},
	}
	for _, n := range sizes {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 37, Sites: n})
		data := sc.Merged.Snapshot()
		data.AddGraph(grdf.Ontology())
		// A cross-domain query: all grdf:Features with any geometry. Before
		// reasoning nothing is typed grdf:Feature directly.
		query := `SELECT ?f WHERE { ?f a grdf:Feature }`
		before := answerCount(data, query)

		start := time.Now()
		materialized, stats := owl.Materialize(data)
		elapsed := time.Since(start)
		after := answerCount(materialized, query)

		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", stats.Asserted),
			fmt.Sprintf("%d", stats.Inferred),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", before),
			fmt.Sprintf("%d", after))
	}
	t.AddNote("expected shape: answers-before is 0 (domain types only), answers-after equals the full feature count; inferred grows linearly with data")
	return t
}

func answerCount(st *store.Store, query string) int {
	e := sparql.NewEngine(st)
	res, err := e.Query(query)
	if err != nil {
		return -1
	}
	return len(res.Bindings)
}

// E10StoreSparql measures the substrate: load and query throughput across
// dataset sizes.
func E10StoreSparql(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{10, 100, 400}
	}
	t := &Table{
		ID:    "E10",
		Title: "Substrate scaling: store load and SPARQL",
		Columns: []string{"sites", "triples", "load", "triples/s",
			"pattern match", "sparql join"},
	}
	for _, n := range sizes {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 41, Sites: n})
		triples := sc.Merged.Triples()

		start := time.Now()
		st := store.New()
		st.AddAll(triples)
		load := time.Since(start)

		start = time.Now()
		const matchReps = 100
		for i := 0; i < matchReps; i++ {
			st.Count(nil, datagen.HasSiteName, nil)
		}
		match := time.Since(start) / matchReps

		e := sparql.NewEngine(st)
		q := `SELECT ?s ?n WHERE { ?s a app:ChemSite . ?s app:hasSiteName ?n }`
		start = time.Now()
		const queryReps = 20
		for i := 0; i < queryReps; i++ {
			if _, err := e.Query(q); err != nil {
				t.AddNote("query error: %v", err)
				break
			}
		}
		join := time.Since(start) / queryReps

		rate := float64(len(triples)) / load.Seconds()
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(triples)),
			load.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", rate),
			match.Round(time.Microsecond).String(),
			join.Round(time.Microsecond).String())
	}
	t.AddNote("expected shape: load rate roughly constant; indexed pattern match stays flat as data grows")
	return t
}

// E11Alignment reproduces Section 2's alignment discussion: precision and
// recall on synthetic concept-renaming benchmarks over the GRDF ontology.
func E11Alignment() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Ontology alignment (Sec 2 / Kokla & Kavouras)",
		Columns: []string{"benchmark", "precision", "recall", "F1", "pairs"},
	}
	run := func(name string, renames map[string]string, syn map[string]string) {
		variant, gold := renameOntology(renames)
		a := align.Align(grdf.Ontology(), variant, align.Options{Synonyms: syn})
		m := align.Evaluate(a, gold)
		t.AddRow(name,
			fmt.Sprintf("%.2f", m.Precision),
			fmt.Sprintf("%.2f", m.Recall),
			fmt.Sprintf("%.2f", m.F1),
			fmt.Sprintf("%d/%d", m.Correct, m.Expected))
	}
	run("identical names", nil, nil)
	run("case/sep variants", map[string]string{
		"Feature": "feature", "LineString": "line_string",
		"MultiSurface": "multi-surface", "TopoSolid": "topo_solid",
	}, nil)
	renames := map[string]string{
		"Feature": "GeoFeature", "Curve": "Arc", "Surface": "Area",
		"Point": "Location", "Envelope": "BoundingBox", "Observation": "Measurement",
	}
	run("renamed, no synonyms", renames, nil)
	run("renamed, with synonyms", renames, map[string]string{
		"arc": "curve", "area": "surface", "location": "point",
		"measurement": "observation", "bounding": "envelope", "box": "", "geo": "",
	})
	t.AddNote("expected shape: near-perfect on identical/case variants; synonyms recover most renamed concepts")
	return t
}

// renameOntology derives a domain ontology from GRDF by renaming class local
// names, returning the variant and the gold alignment.
func renameOntology(renames map[string]string) (*rdf.Graph, map[rdf.IRI]rdf.IRI) {
	const domainNS = "http://domain.example/onto#"
	src := grdf.Ontology()
	out := rdf.NewGraph()
	gold := map[rdf.IRI]rdf.IRI{}
	rename := func(iri rdf.IRI) rdf.IRI {
		local := iri.LocalName()
		if alt, ok := renames[local]; ok {
			local = alt
		}
		return rdf.IRI(domainNS + local)
	}
	for _, tr := range src.Match(nil, rdf.RDFType, rdf.OWLClass) {
		iri := tr.Subject.(rdf.IRI)
		ren := rename(iri)
		out.Add(rdf.T(ren, rdf.RDFType, rdf.OWLClass))
		gold[iri] = ren
		for _, s := range src.Objects(iri, rdf.RDFSSubClassOf) {
			if sup, ok := s.(rdf.IRI); ok {
				out.Add(rdf.T(ren, rdf.RDFSSubClassOf, rename(sup)))
			}
		}
	}
	return out, gold
}

// All runs every experiment with default parameters, in order.
func All() []*Table {
	return []*Table{
		E1Ontology(),
		E2Listings(),
		E3Topology(),
		E4GMLRoundTrip(),
		E5ScenarioViews(),
		E6FineVsCoarse(nil),
		E7MergeEnforcement(),
		E8QueryCache(0),
		E9Reasoning(nil),
		E10StoreSparql(nil),
		E11Alignment(),
		E12PolicyConflicts(),
		E13Planner(nil),
	}
}

// E12PolicyConflicts reproduces Section 7's multi-server note: "each node
// may enforce its own set of policies … if the combination of policies from
// participating systems is inconsistent, additional rules may be needed to
// resolve conflicts." Two servers' policy sets are merged, conflicts
// detected, and both resolution strategies applied; the table shows the
// effective outcome for the contested role before and after.
func E12PolicyConflicts() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Multi-server policy merge and conflict resolution (Sec 7)",
		Columns: []string{"stage", "conflicts", "role sees site", "detail"},
	}
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 61, Sites: 4})
	role := rdf.IRI("http://grdf.org/ontology/seconto#FieldAuditor")

	// Server A permits auditors to view chemical sites (extent+name);
	// server B denies auditors chemical sites outright.
	serverA := &seconto.Set{Rules: []seconto.Rule{{
		ID: "http://a.example/policy1", Subject: role,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: true,
		Properties: []rdf.IRI{rdf.IRI(grdf.NS + "boundedBy"), datagen.HasSiteName},
	}}}
	serverB := &seconto.Set{Rules: []seconto.Rule{{
		ID: "http://b.example/policy9", Subject: role,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: false,
	}}}

	site := sc.Chemical.Sites[0].IRI
	report := func(stage string, set *seconto.Set) {
		conflicts := set.DetectConflicts()
		e := gsacs.New(set, sc.Merged, gsacs.Options{})
		acc := e.Decide(role, seconto.ActionView, site)
		visible := "denied"
		if acc.Allowed {
			if acc.Full {
				visible = "full"
			} else {
				visible = fmt.Sprintf("%d properties", len(acc.Properties))
			}
		}
		detail := ""
		if len(conflicts) > 0 {
			detail = conflicts[0].String()
		}
		t.AddRow(stage, fmt.Sprintf("%d", len(conflicts)), visible, detail)
	}

	merged := seconto.Merge(serverA, serverB)
	report("merged (ambiguous)", merged)
	report("resolved: deny wins", merged.Resolve(seconto.DenyWins))
	report("resolved: permit wins", merged.Resolve(seconto.PermitWins))
	t.AddNote("expected shape: the raw merge is ambiguous (engine's deny-overrides default hides the site); each strategy yields a deterministic, conflict-free outcome")
	return t
}
