package experiments

// The paper's Lists 1–8 as corrected, well-formed documents. The published
// listings contain OCR/typesetting defects (broken attribute quoting, spaces
// inside IRIs); these fixtures restore the intended content while keeping
// the exact terms and structure.

// List 1 — MeasureType instance. In GML this is an XML extension type with
// base 'double'; Section 3.2 concludes such types must become properties
// with a range restriction in OWL, so the GRDF form carries the value
// through grdf:measureValue and the unit through grdf:uom.
const list1GRDF = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:grdf="http://grdf.org/ontology/grdf#"
         xmlns:app="http://grdf.org/app#">
  <grdf:Value rdf:about="http://grdf.org/app#temperature1">
    <grdf:measureValue rdf:datatype="http://www.w3.org/2001/XMLSchema#double">21.23</grdf:measureValue>
    <grdf:uom rdf:datatype="http://www.w3.org/2001/XMLSchema#anyURI">http://grdf.org/uom/fahrenheit</grdf:uom>
  </grdf:Value>
</rdf:RDF>`

// List 2 — the extent object properties of the feature model.
const list2 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasCenterLineOf"/>
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasCenterOf"/>
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasEdgeOf"/>
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasEnvelope"/>
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasExtentOf"/>
</rdf:RDF>`

// List 3 — EnvelopeWithTimePeriod with cardinality 2 on hasTimePosition.
const list3 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#EnvelopeWithTimePeriod">
    <rdfs:subClassOf>
      <owl:Restriction>
        <owl:cardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</owl:cardinality>
        <owl:onProperty>
          <owl:ObjectProperty rdf:about="http://grdf.org/ontology/temporal#hasTimePosition"/>
        </owl:onProperty>
      </owl:Restriction>
    </rdfs:subClassOf>
  </owl:Class>
</rdf:RDF>`

// List 4 — the curve multipart classes and curveMember property.
const list4 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#Curve"/>
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#MultiCurve"/>
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#CompositeCurve"/>
  <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#curveMember"/>
</rdf:RDF>`

// List 5 — the Face restrictions: max 2 TopoSolids, max 1 Surface,
// min 1 Edge.
const list5 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <owl:Class rdf:about="http://grdf.org/ontology/grdf#Face">
    <rdfs:subClassOf rdf:resource="http://grdf.org/ontology/grdf#TopoPrimitive"/>
    <rdfs:subClassOf>
      <owl:Restriction>
        <owl:maxCardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">2</owl:maxCardinality>
        <owl:onProperty>
          <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasTopoSolid"/>
        </owl:onProperty>
      </owl:Restriction>
    </rdfs:subClassOf>
    <rdfs:subClassOf>
      <owl:Restriction>
        <owl:maxCardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">1</owl:maxCardinality>
        <owl:onProperty>
          <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasSurface"/>
        </owl:onProperty>
      </owl:Restriction>
    </rdfs:subClassOf>
    <rdfs:subClassOf>
      <owl:Restriction>
        <owl:minCardinality rdf:datatype="http://www.w3.org/2001/XMLSchema#nonNegativeInteger">1</owl:minCardinality>
        <owl:onProperty>
          <owl:ObjectProperty rdf:about="http://grdf.org/ontology/grdf#hasEdge"/>
        </owl:onProperty>
      </owl:Restriction>
    </rdfs:subClassOf>
  </owl:Class>
</rdf:RDF>`

// List 6 — sample hydrology data in GRDF (the stream centerline).
const list6 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:grdf="http://grdf.org/ontology/grdf#"
         xmlns:app="http://grdf.org/app#">
  <rdf:Description rdf:about="http://grdf.org/app#VECTOR.VECTOR.HYDRO_STREAMS_CENSUS_line">
    <app:hasObjectID rdf:datatype="http://www.w3.org/2001/XMLSchema#integer">11070</app:hasObjectID>
    <grdf:hasGeometry>
      <grdf:LineString rdf:about="http://grdf.org/app#VECTOR.VECTOR.HYDRO_STREAMS_CENSUS_line/geom">
        <grdf:hasSRSName>http://grdf.org/crs/TX83-NCF</grdf:hasSRSName>
        <grdf:coordinates>2533822.17263276,7108248.82783879 2533901.08,7108301.45 2533978.3,7108377.9</grdf:coordinates>
      </grdf:LineString>
    </grdf:hasGeometry>
  </rdf:Description>
</rdf:RDF>`

// List 7 — sample chemical-site data in GRDF.
const list7 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:grdf="http://grdf.org/ontology/grdf#"
         xmlns:app="http://grdf.org/app#">
  <app:ChemSite rdf:about="http://grdf.org/app#NTEnergy">
    <app:hasSiteName>North Texas Energy</app:hasSiteName>
    <app:hasSiteId>004221</app:hasSiteId>
    <grdf:boundedBy>
      <grdf:Envelope rdf:about="http://grdf.org/app#NTEnergy/extent">
        <grdf:hasSRSName>http://grdf.org/crs/TX83-NCF</grdf:hasSRSName>
        <grdf:lowerCorner>2533000,7107000</grdf:lowerCorner>
        <grdf:upperCorner>2533500,7107500</grdf:upperCorner>
      </grdf:Envelope>
    </grdf:boundedBy>
    <app:hasChemicalInfo rdf:resource="http://grdf.org/app#NTChemInfo"/>
  </app:ChemSite>
  <app:ChemInfo rdf:about="http://grdf.org/app#NTChemInfo">
    <app:chemical rdf:parseType="Resource">
      <app:hasChemName>Sulfuric Acid</app:hasChemName>
      <app:hasChemCode>121NR</app:hasChemCode>
    </app:chemical>
  </app:ChemInfo>
</rdf:RDF>`

// List 8 — the 'main repair' policy.
const list8 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:seconto="http://grdf.org/ontology/seconto#">
  <seconto:Subject rdf:about="http://grdf.org/ontology/seconto#MainRep">
    <seconto:hasPolicy rdf:resource="http://grdf.org/ontology/seconto#MainRepPolicy1"/>
  </seconto:Subject>
  <seconto:Policy rdf:about="http://grdf.org/ontology/seconto#MainRepPolicy1">
    <seconto:hasAction rdf:resource="http://grdf.org/ontology/seconto#View"/>
    <seconto:hasCondition rdf:resource="http://grdf.org/ontology/seconto#CondSites"/>
    <seconto:hasPolicyDecision rdf:resource="http://grdf.org/ontology/seconto#Permit"/>
    <seconto:hasResource rdf:resource="http://grdf.org/app#ChemSite"/>
  </seconto:Policy>
  <seconto:ConditionValue rdf:about="http://grdf.org/ontology/seconto#CondSites">
    <seconto:condValDefinition rdf:parseType="Resource">
      <seconto:hasPropertyAccess rdf:resource="http://grdf.org/ontology/grdf#boundedBy"/>
    </seconto:condValDefinition>
  </seconto:ConditionValue>
</rdf:RDF>`
