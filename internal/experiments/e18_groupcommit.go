package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/wal"
)

// E18 measures what the MVCC + group-commit rearchitecture buys over the
// single-writer baseline of E15:
//
//   - write arm: acked single-triple mutation throughput with -fsync always
//     as the writer count grows. Concurrent writers queue on the commit
//     batcher while the leader fsyncs, so each disk flush amortizes over a
//     whole group and throughput scales past the one-fsync-per-op wall.
//   - read arm: SPARQL p99 latency over a snapshot-pinned engine, first on a
//     quiet store, then under sustained concurrent mutation. Readers pin an
//     immutable version with one atomic load, so the two numbers should be
//     close — that gap is the whole point of MVCC.

// e18Triple builds the i-th distinct write-arm triple.
func e18Triple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://example.org/e18/s%d", i)),
		rdf.IRI("http://example.org/e18/note"),
		rdf.NewString(fmt.Sprintf("v%d", i)),
	)
}

// e18Dataset builds the read-arm store: n widgets spread over 50 batches.
func e18Dataset(n int) *store.Store {
	st := store.New()
	ts := make([]rdf.Triple, 0, 3*n)
	for i := 0; i < n; i++ {
		s := rdf.IRI(fmt.Sprintf("http://example.org/e18/w%d", i))
		ts = append(ts,
			rdf.T(s, rdf.RDFType, rdf.IRI("http://example.org/e18/Widget")),
			rdf.T(s, rdf.IRI("http://example.org/e18/batch"),
				rdf.IRI(fmt.Sprintf("http://example.org/e18/b%d", i%50))),
			rdf.T(s, rdf.IRI("http://example.org/e18/note"),
				rdf.NewString(fmt.Sprintf("n%d", i))),
		)
	}
	st.AddAll(ts)
	return st
}

const e18Query = `SELECT ?s ?n WHERE {
	?s a <http://example.org/e18/Widget> .
	?s <http://example.org/e18/batch> <http://example.org/e18/b7> .
	?s <http://example.org/e18/note> ?n .
}`

// e18ReadP99 evaluates the fixed query iters times through a freshly pinned
// engine per call and returns the p99 latency.
func e18ReadP99(eng *sparql.Engine, q *sparql.Query, iters int) (time.Duration, error) {
	lats := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if _, err := eng.Eval(q); err != nil {
			return 0, err
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return percentile(lats, 0.99), nil
}

// E18GroupCommit runs both arms. records is the write-arm mutation count per
// writer configuration (0 uses the default 2000).
func E18GroupCommit(records int) *Table {
	if records <= 0 {
		records = 2000
	}
	t := &Table{
		ID:    "E18",
		Title: "MVCC + WAL group commit: concurrent writers and snapshot-isolated reads",
		Columns: []string{"phase", "writers", "records", "wall", "ops/s",
			"groups", "mean batch", "vs 1 writer"},
	}

	// --- write arm: fsync=always throughput vs writer count ---------------
	var base float64
	for _, writers := range []int{1, 2, 4, 8, 16} {
		dir, err := os.MkdirTemp("", "e18-*")
		if err != nil {
			t.AddNote("tempdir: %v", err)
			return t
		}
		st := store.New()
		st.SetCommitBatching(128, 500*time.Microsecond)
		repo, err := wal.Open(st, wal.Options{Dir: dir, Fsync: wal.FsyncAlways})
		if err != nil {
			t.AddNote("open (%d writers): %v", writers, err)
			os.RemoveAll(dir)
			return t
		}
		var next atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= records {
						return
					}
					if _, err := st.Apply(store.Op{Kind: store.OpAdd,
						Triples: []rdf.Triple{e18Triple(i)}}); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		gc := st.GroupCommitStats()
		closeErr := repo.Close()
		os.RemoveAll(dir)
		if err, _ := firstErr.Load().(error); err != nil {
			t.AddNote("write (%d writers): %v", writers, err)
			return t
		}
		if closeErr != nil {
			t.AddNote("close (%d writers): %v", writers, closeErr)
			return t
		}
		ops := float64(records) / elapsed.Seconds()
		if writers == 1 {
			base = ops
		}
		mean := 0.0
		if gc.Groups > 0 {
			mean = float64(gc.Ops) / float64(gc.Groups)
		}
		t.AddRow("write", fmt.Sprintf("%d", writers), fmt.Sprintf("%d", records),
			elapsed.Round(time.Microsecond).String(), fmt.Sprintf("%.0f", ops),
			fmt.Sprintf("%d", gc.Groups), fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.2fx", ops/base))
	}

	// --- read arm: snapshot-pinned p99 with and without churn -------------
	const widgets = 4000
	const readIters = 300
	data := e18Dataset(widgets)
	q, err := sparql.ParseQuery(e18Query, nil)
	if err != nil {
		t.AddNote("parse: %v", err)
		return t
	}
	eng := sparql.NewEngine(data)
	if _, err := eng.Eval(q); err != nil { // warm once before timing
		t.AddNote("eval: %v", err)
		return t
	}
	quiet, err := e18ReadP99(eng, q, readIters)
	if err != nil {
		t.AddNote("read-only arm: %v", err)
		return t
	}
	t.AddRow("read p99 (quiet)", "0", fmt.Sprintf("%d", readIters),
		"-", "-", "-", "-", quiet.Round(time.Microsecond).String())

	// Churn writers are paced rather than tight-looping: the point of this
	// arm is snapshot isolation (readers never block on the writer), not CPU
	// starvation — an unthrottled mutation spin on a small host measures the
	// scheduler, not the store.
	stop := make(chan struct{})
	var churnWg sync.WaitGroup
	var churnOps atomic.Int64
	const churnWriters = 4
	const churnPace = 500 * time.Microsecond
	for w := 0; w < churnWriters; w++ {
		churnWg.Add(1)
		go func(w int) {
			defer churnWg.Done()
			tick := time.NewTicker(churnPace)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				tr := rdf.T(
					rdf.IRI(fmt.Sprintf("http://example.org/e18/churn-%d-%d", w, i%512)),
					rdf.IRI("http://example.org/e18/note"),
					rdf.NewString("c"),
				)
				kind := store.OpAdd
				if i%2 == 1 {
					kind = store.OpRemove
				}
				if _, err := data.Apply(store.Op{Kind: kind,
					Triples: []rdf.Triple{tr}}); err != nil {
					return
				}
				churnOps.Add(1)
			}
		}(w)
	}
	churnStart := time.Now()
	busy, err := e18ReadP99(eng, q, readIters)
	churnRate := float64(churnOps.Load()) / time.Since(churnStart).Seconds()
	close(stop)
	churnWg.Wait()
	if err != nil {
		t.AddNote("sustained-mutation arm: %v", err)
		return t
	}
	t.AddRow("read p99 (churn)", fmt.Sprintf("%d", churnWriters),
		fmt.Sprintf("%d", readIters), "-",
		fmt.Sprintf("%.0f", churnRate), "-", "-",
		busy.Round(time.Microsecond).String())
	ratio := float64(busy) / float64(quiet)
	t.AddNote("read p99 under %d sustained writers (%.0f mutations/s) is %.2fx the quiet p99 (target <= 1.5x: readers pin an immutable snapshot and never block on the write lock)", churnWriters, churnRate, ratio)
	t.AddNote("write arm: store.Apply acked through the WAL with fsync always; concurrent writers fuse into group commits (one append+fsync per group), so ops/s scales with writer count while per-op durability is unchanged")
	t.AddNote("mean batch is committed ops per published group; 1 writer cannot batch (mean 1.0)")
	return t
}
