package experiments

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/gml"
	"repro/internal/grdf"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/store"
	"repro/internal/topo"
)

// E1Ontology reproduces Fig. 1: the GRDF ontology inventory and hierarchy.
func E1Ontology() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "GRDF ontology structure (Fig. 1)",
		Columns: []string{"model", "classes", "object props", "data props"},
	}
	g := grdf.Ontology()

	models := []struct {
		name    string
		classes []rdf.IRI
		oprops  []rdf.IRI
		dprops  []rdf.IRI
	}{
		{
			"feature",
			[]rdf.IRI{grdf.RootGRDFObject, grdf.Feature, grdf.FeatureCollection,
				grdf.BoundingShape, grdf.Envelope, grdf.EnvelopeWithTimePeriod,
				grdf.Null, grdf.Observation, grdf.Value, grdf.CRS, grdf.Coverage},
			[]rdf.IRI{grdf.IsBoundedBy, grdf.BoundedBy, grdf.HasEnvelope,
				grdf.HasCenterLineOf, grdf.HasCenterOf, grdf.HasEdgeOf,
				grdf.HasExtentOf, grdf.HasGeometry, grdf.FeatureMember,
				grdf.HasValue, grdf.ObservedFeature, grdf.HasCoverage, grdf.CoverageOf},
			[]rdf.IRI{grdf.HasSRSName, grdf.LowerCorner, grdf.UpperCorner,
				grdf.MeasureValue, grdf.UOM},
		},
		{
			"geometry",
			[]rdf.IRI{grdf.Geometry, grdf.Point, grdf.Curve, grdf.LineString,
				grdf.Ring, grdf.LinearRing, grdf.Surface, grdf.Polygon, grdf.Solid,
				grdf.MultiPoint, grdf.MultiCurve, grdf.MultiSurface,
				grdf.CompositeCurve, grdf.CompositeSurface, grdf.ComplexGeometry},
			[]rdf.IRI{grdf.Exterior, grdf.Interior, grdf.PointMember,
				grdf.CurveMember, grdf.SurfaceMember, grdf.SolidMember,
				grdf.GeometryMember},
			[]rdf.IRI{grdf.Coordinates, grdf.PosList},
		},
		{
			"topology",
			[]rdf.IRI{grdf.Topology, grdf.TopoPrimitive, grdf.TopoNode,
				grdf.TopoEdge, grdf.TopoFace, grdf.TopoSolid, grdf.TopoCurve,
				grdf.TopoSurface, grdf.TopoVolume, grdf.TopoComplex},
			[]rdf.IRI{grdf.HasStartNode, grdf.HasEndNode, grdf.HasEdge,
				grdf.HasFace, grdf.HasSurface, grdf.HasTopoSolid,
				grdf.RealizedBy, grdf.Realizes, grdf.IsolatedIn},
			nil,
		},
		{
			"temporal",
			[]rdf.IRI{grdf.TimeObject, grdf.TimePosition},
			[]rdf.IRI{grdf.HasTimePosition},
			[]rdf.IRI{grdf.TimeValue},
		},
	}
	verify := func(iris []rdf.IRI, class rdf.IRI) int {
		n := 0
		for _, i := range iris {
			if g.Has(rdf.T(i, rdf.RDFType, class)) {
				n++
			}
		}
		return n
	}
	for _, m := range models {
		t.AddRow(m.name,
			fmt.Sprintf("%d", verify(m.classes, rdf.OWLClass)),
			fmt.Sprintf("%d", verify(m.oprops, rdf.OWLObjectProperty)),
			fmt.Sprintf("%d", verify(m.dprops, rdf.OWLDatatypeProperty)))
	}
	rep := grdf.Report(g)
	t.AddRow("TOTAL", fmt.Sprintf("%d", rep.Classes),
		fmt.Sprintf("%d", rep.ObjectProperties), fmt.Sprintf("%d", rep.DataProperties))
	t.AddNote("%d subclass edges, %d OWL restrictions, %d triples total",
		rep.SubClassEdges, rep.Restrictions, g.Len())

	m, stats := owl.Materialize(store.FromGraph(g))
	t.AddNote("materialization adds %d inferred triples; consistency violations: %d",
		stats.Inferred, len(owl.Check(m)))
	return t
}

// E2Listings reproduces Lists 1–5 plus 8: each listing parses, and its
// semantic content checks out against the model.
func E2Listings() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Paper listings round-trip (Lists 1-5, 8)",
		Columns: []string{"listing", "triples", "check", "ok"},
	}
	add := func(name, doc, check string, verify func(*store.Store) bool) {
		g, err := rdfxml.ParseString(doc)
		if err != nil {
			t.AddRow(name, "-", check, "PARSE ERROR: "+err.Error())
			return
		}
		st := store.FromGraph(g)
		t.AddRow(name, fmt.Sprintf("%d", st.Len()), check, mark(verify(st)))
	}

	add("List 1 (MeasureType)", list1GRDF,
		"xsd:double measure value + uom per Sec 3.2 mapping",
		func(st *store.Store) bool {
			v, ok := st.FirstObject(rdf.IRI(rdf.AppNS+"temperature1"), grdf.MeasureValue)
			if !ok {
				return false
			}
			lit, ok := v.(rdf.Literal)
			if !ok || lit.Datatype != rdf.XSDDouble {
				return false
			}
			f, err := lit.Float()
			return err == nil && f == 21.23
		})

	add("List 2 (extent properties)", list2,
		"five ObjectProperty declarations present in GRDF ontology",
		func(st *store.Store) bool {
			onto := grdf.Ontology()
			for _, tr := range st.Triples() {
				if !onto.Has(tr) {
					return false
				}
			}
			return st.Len() == 5
		})

	add("List 3 (EnvelopeWithTimePeriod)", list3,
		"cardinality=2 restriction on temporal:hasTimePosition",
		func(st *store.Store) bool {
			restr, ok := st.FirstObject(grdf.EnvelopeWithTimePeriod, rdf.RDFSSubClassOf)
			if !ok {
				return false
			}
			card, ok := st.FirstObject(restr, rdf.OWLCardinality)
			if !ok || !card.Equal(rdf.NewNonNegativeInteger(2)) {
				return false
			}
			on, ok := st.FirstObject(restr, rdf.OWLOnProperty)
			return ok && on.Equal(grdf.HasTimePosition)
		})

	add("List 4 (curve multiparts)", list4,
		"Curve/MultiCurve/CompositeCurve classes + curveMember",
		func(st *store.Store) bool {
			return st.Has(rdf.T(grdf.Curve, rdf.RDFType, rdf.OWLClass)) &&
				st.Has(rdf.T(grdf.MultiCurve, rdf.RDFType, rdf.OWLClass)) &&
				st.Has(rdf.T(grdf.CompositeCurve, rdf.RDFType, rdf.OWLClass)) &&
				st.Has(rdf.T(grdf.CurveMember, rdf.RDFType, rdf.OWLObjectProperty))
		})

	add("List 5 (Face restrictions)", list5,
		"max 2 hasTopoSolid, max 1 hasSurface, min 1 hasEdge enforced",
		func(st *store.Store) bool {
			// merge with a violating individual and let the checker fire
			bad := rdf.IRI("http://e/badFace")
			st.Add(rdf.T(bad, rdf.RDFType, grdf.TopoFace))
			for i := 0; i < 3; i++ {
				st.Add(rdf.T(bad, grdf.HasTopoSolid, rdf.IRI(fmt.Sprintf("http://e/s%d", i))))
			}
			m, _ := owl.Materialize(st)
			vs := owl.Check(m)
			foundMax, foundMin := false, false
			for _, v := range vs {
				if v.Subject.Equal(bad) && v.Kind == "max-cardinality" {
					foundMax = true
				}
				if v.Subject.Equal(bad) && v.Kind == "min-cardinality" {
					foundMin = true
				}
			}
			return foundMax && foundMin
		})

	add("List 8 (main-repair policy)", list8,
		"policy parses; permits View on ChemSite via boundedBy only",
		func(st *store.Store) bool {
			set, err := parsePolicies(st)
			if err != nil || len(set) != 1 {
				return false
			}
			r := set[0]
			return r.Permit && r.Resource == rdf.IRI(rdf.AppNS+"ChemSite") &&
				len(r.Properties) == 1 &&
				r.Properties[0] == rdf.IRI(grdf.NS+"boundedBy")
		})
	return t
}

// E3Topology reproduces Fig. 2: the topology model and its realization
// isomorphism onto geometry.
func E3Topology() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Topology model and realization (Fig. 2)",
		Columns: []string{"check", "ok", "detail"},
	}

	// A 2x2 planar grid mesh.
	tp := topo.New()
	realize := topo.NewRealization(tp)
	const n = 3 // 3x3 nodes → 2x2 faces
	nodeID := func(i, j int) topo.ID { return topo.ID(fmt.Sprintf("n%d_%d", i, j)) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tp.AddNode(topo.Node{ID: nodeID(i, j)})
			realize.RealizeNode(nodeID(i, j), geom.NewPoint(float64(i), float64(j)))
		}
	}
	addEdge := func(id topo.ID, a, b topo.ID) {
		tp.AddEdge(topo.Edge{ID: id, Start: a, End: b})
		pa, _ := realize.PointOf(a)
		pb, _ := realize.PointOf(b)
		l, _ := geom.NewLineString([]geom.Coord{pa.C, pb.C})
		realize.RealizeEdge(id, l)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				addEdge(topo.ID(fmt.Sprintf("h%d_%d", i, j)), nodeID(i, j), nodeID(i+1, j))
			}
			if j+1 < n {
				addEdge(topo.ID(fmt.Sprintf("v%d_%d", i, j)), nodeID(i, j), nodeID(i, j+1))
			}
		}
	}
	for i := 0; i < n-1; i++ {
		for j := 0; j < n-1; j++ {
			fid := topo.ID(fmt.Sprintf("f%d_%d", i, j))
			err := tp.AddFace(topo.Face{ID: fid, Boundary: []topo.DirectedEdge{
				{Edge: topo.ID(fmt.Sprintf("h%d_%d", i, j)), O: topo.Positive},
				{Edge: topo.ID(fmt.Sprintf("v%d_%d", i+1, j)), O: topo.Positive},
				{Edge: topo.ID(fmt.Sprintf("h%d_%d", i, j+1)), O: topo.Negative},
				{Edge: topo.ID(fmt.Sprintf("v%d_%d", i, j)), O: topo.Negative},
			}})
			if err != nil {
				t.AddRow("face construction", "no", err.Error())
				return t
			}
			ring, _ := geom.NewLinearRing([]geom.Coord{
				{X: float64(i), Y: float64(j)}, {X: float64(i + 1), Y: float64(j)},
				{X: float64(i + 1), Y: float64(j + 1)}, {X: float64(i), Y: float64(j + 1)},
				{X: float64(i), Y: float64(j)},
			})
			realize.RealizeFace(fid, geom.NewPolygon(ring))
		}
	}

	nodes, edges, faces, _ := tp.Counts()
	t.AddRow("mesh construction", "yes",
		fmt.Sprintf("V=%d E=%d F=%d", nodes, edges, faces))
	chi := tp.EulerCharacteristic()
	t.AddRow("Euler characteristic V-E+F = 1 (disk)", mark(chi == 1), fmt.Sprintf("χ=%d", chi))
	t.AddRow("validation errors", mark(len(tp.Validate()) == 0),
		fmt.Sprintf("%d", len(tp.Validate())))
	t.AddRow("realization complete", mark(len(realize.Complete()) == 0),
		fmt.Sprintf("%d unrealized", len(realize.Complete())))

	// TopoCurve isomorphism: realize a 2-edge path and compare lengths.
	tp.AddCurve(topo.TopoCurve{ID: "path", Edges: []topo.DirectedEdge{
		{Edge: "h0_0", O: topo.Positive}, {Edge: "h1_0", O: topo.Positive},
	}})
	line, err := realize.RealizeCurve("path")
	t.AddRow("TopoCurve ≅ geometric curve", mark(err == nil && line.Length() == 2),
		fmt.Sprintf("len=%.0f err=%v", line.Length(), err))

	// TopoSurface isomorphism: all faces → area 4.
	tp.AddSurface(topo.TopoSurface{ID: "sheet", Faces: []topo.ID{"f0_0", "f1_0", "f0_1", "f1_1"}})
	ms, err := realize.RealizeSurface("sheet")
	t.AddRow("TopoSurface ≅ geometric surface", mark(err == nil && ms.Area() == 4),
		fmt.Sprintf("area=%.0f err=%v", ms.Area(), err))

	// Face/solid cardinality from List 5 is structural in the topo package.
	tp2 := topo.New()
	tp2.AddNode(topo.Node{ID: "x"})
	tp2.AddEdge(topo.Edge{ID: "loop", Start: "x", End: "x"})
	tp2.AddFace(topo.Face{ID: "f", Boundary: []topo.DirectedEdge{{Edge: "loop", O: topo.Positive}}})
	tp2.AddSolid(topo.TopoSolid{ID: "s1", Boundary: []topo.ID{"f"}})
	tp2.AddSolid(topo.TopoSolid{ID: "s2", Boundary: []topo.ID{"f"}})
	err = tp2.AddSolid(topo.TopoSolid{ID: "s3", Boundary: []topo.ID{"f"}})
	t.AddRow("face bounds ≤ 2 solids (List 5)", mark(err != nil), fmt.Sprintf("%v", err))
	return t
}

// E4GMLRoundTrip reproduces Lists 6–7: sample data encodes in GRDF, converts
// to GML and back without loss.
func E4GMLRoundTrip() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Sample data and GML <-> GRDF conversion (Lists 6-7)",
		Columns: []string{"check", "ok", "detail"},
	}

	// Lists 6 and 7 parse and decode.
	for _, l := range []struct {
		name, doc string
		subject   rdf.IRI
	}{
		{"List 6 stream decodes", list6, rdf.IRI(rdf.AppNS + "VECTOR.VECTOR.HYDRO_STREAMS_CENSUS_line")},
		{"List 7 site decodes", list7, rdf.IRI(rdf.AppNS + "NTEnergy")},
	} {
		g, err := rdfxml.ParseString(l.doc)
		if err != nil {
			t.AddRow(l.name, "no", err.Error())
			continue
		}
		st := store.FromGraph(g)
		geo, srs, err := grdf.GeometryOf(st, l.subject)
		ok := err == nil && geo != nil && strings.Contains(srs, "TX83-NCF")
		detail := fmt.Sprintf("err=%v", err)
		if ok {
			detail = fmt.Sprintf("%s srs=%s", geo.Kind(), srs)
		}
		t.AddRow(l.name, mark(ok), detail)
	}

	// Synthetic datasets through the full GML → GRDF → GML cycle.
	hydro := datagen.Hydrology(datagen.HydrologyConfig{Seed: 20})
	col, err := gml.FromGRDF(hydro.Store, datagen.HydroStream)
	if err != nil {
		t.AddRow("GRDF→GML export", "no", err.Error())
		return t
	}
	t.AddRow("GRDF→GML export", mark(len(col.Features) == len(hydro.Streams)),
		fmt.Sprintf("%d features", len(col.Features)))

	doc := gml.Format(col)
	back, err := gml.ParseString(doc)
	if err != nil {
		t.AddRow("GML reparse", "no", err.Error())
		return t
	}
	st2 := store.New()
	if _, err := gml.ToGRDF(st2, back, rdf.AppNS); err != nil {
		t.AddRow("GML→GRDF import", "no", err.Error())
		return t
	}
	// Compare geometry envelopes per feature.
	lost := 0
	for _, s := range hydro.Streams {
		orig, _, err1 := grdf.GeometryOf(hydro.Store, s.IRI)
		conv, _, err2 := grdf.GeometryOf(st2, s.IRI)
		if err1 != nil || err2 != nil || orig.Envelope() != conv.Envelope() {
			lost++
		}
	}
	t.AddRow("geometry fidelity after round trip", mark(lost == 0),
		fmt.Sprintf("%d/%d features preserved", len(hydro.Streams)-lost, len(hydro.Streams)))

	props := 0
	for _, s := range hydro.Streams {
		if v, ok := st2.FirstObject(s.IRI, datagen.HasStreamName); ok {
			if lit, isLit := v.(rdf.Literal); isLit && lit.Value == s.Name {
				props++
			}
		}
	}
	t.AddRow("property fidelity after round trip", mark(props == len(hydro.Streams)),
		fmt.Sprintf("%d/%d names preserved", props, len(hydro.Streams)))
	return t
}
