package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/workload"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/store"
)

// e21OverheadBudget is the acceptance bound: turning on workload
// introspection plus continuous profiling must cost under 5% of client p50
// on the Sec 7.1 open-loop mix.
const e21OverheadBudget = 5.0

// E21Workload measures what the introspection layer costs and proves what
// it catches. Part one runs the E17 open-loop role mix twice per arm —
// once with workload fingerprinting and the profiler ring disabled, once
// with both enabled (profiler on an aggressive periodic cadence so CPU
// windows actually overlap the run) — and compares client p50 against the
// 5% overhead budget; the minimum over rounds is used per arm to damp
// scheduler noise. Part two forces a planner misestimate: a two-pattern
// query whose second pattern the planner costs at rows/boundVarShrink but
// which actually joins to a single row, a ~500x est-vs-actual drift. The
// probe passes when the fingerprint surfaces in the heavy-hitter table
// with a drift band at or past 10x and grdf_plan_misestimate_total fires.
func E21Workload(requests int) *Table {
	if requests <= 0 {
		requests = 200
	}
	t := &Table{
		ID: "E21",
		Title: "Workload introspection: observation overhead vs 5% p50 budget " +
			"and forced plan-misestimate detection",
		Columns: []string{"arm", "target rps", "achieved", "p50", "p99", "errors"},
	}
	const (
		rps        = 150.0
		sloLatency = 250 * time.Millisecond
		sloAvail   = 0.999
		rounds     = 2
	)
	offP50, onP50 := -1.0, -1.0
	var captures int
	for round := 0; round < rounds; round++ {
		for _, introspect := range []bool{false, true} {
			rep, n, err := e21Arm(introspect, rps, requests, sloLatency, sloAvail)
			if err != nil {
				t.AddNote("arm introspect=%v round %d failed: %v", introspect, round, err)
				return t
			}
			arm := "off"
			if introspect {
				arm = "on"
				captures += n
				if onP50 < 0 || rep.Corrected.P50Ms < onP50 {
					onP50 = rep.Corrected.P50Ms
				}
			} else if offP50 < 0 || rep.Corrected.P50Ms < offP50 {
				offP50 = rep.Corrected.P50Ms
			}
			t.AddRow(
				arm,
				fmt.Sprintf("%.0f", rps),
				fmt.Sprintf("%.1f", rep.AchievedRPS),
				fmt.Sprintf("%.2fms", rep.Corrected.P50Ms),
				fmt.Sprintf("%.2fms", rep.Corrected.P99Ms),
				fmt.Sprintf("%d", rep.Errors))
		}
	}
	overhead := 0.0
	if offP50 > 0 && onP50 > offP50 {
		overhead = (onP50 - offP50) / offP50 * 100
	}
	verdict := "PASS"
	if overhead > e21OverheadBudget {
		verdict = "FAIL"
	}
	t.AddNote("introspection overhead: min p50 %.2fms off vs %.2fms on = %+.1f%% (budget %.0f%%): %s",
		offP50, onP50, overhead, e21OverheadBudget, verdict)
	t.AddNote("profiler captures taken during on arms: %d (periodic cadence, ring-bounded)", captures)

	if err := e21DriftProbe(t); err != nil {
		t.AddNote("drift probe failed: %v", err)
	}
	return t
}

// e21Arm runs one fixed-rate trial against a fresh server. When introspect
// is set the server carries a workload table and a started profiler on a
// short periodic cadence; the second return is the number of profile
// captures taken during the run.
func e21Arm(introspect bool, rps float64, requests int, sloLatency time.Duration, sloAvail float64) (load.Report, int, error) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 61, Sites: 12})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	engine := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner, CacheSize: 64})
	slo := obs.NewSLOEngine(obs.SLOConfig{
		LatencyTarget:      sloLatency,
		AvailabilityTarget: sloAvail,
	})
	opts := []gsacs.ServerOption{gsacs.WithSLO(slo)}
	var profiler *prof.Profiler
	if introspect {
		reg := obs.NewRegistry()
		opts = append(opts, gsacs.WithWorkload(workload.New(workload.Config{
			Capacity: 256,
			Registry: reg,
		})))
		profiler = prof.New(prof.Config{
			Ring:      4,
			CPUWindow: 100 * time.Millisecond,
			Every:     300 * time.Millisecond,
			Registry:  reg,
		})
		profiler.Start()
		defer profiler.Stop()
		opts = append(opts, gsacs.WithProfiler(profiler))
	}
	srv := httptest.NewServer(gsacs.NewServer(engine, nil, opts...))
	defer srv.Close()

	arms, err := load.ScenarioArms(load.MixConfig{
		BaseURL: srv.URL,
		Client:  srv.Client(),
	})
	if err != nil {
		return load.Report{}, 0, err
	}
	duration := time.Duration(float64(requests) / rps * float64(time.Second))
	res, err := load.Run(context.Background(), load.Config{
		RPS:      rps,
		Duration: duration,
		Arms:     arms,
		SLO: load.SLO{
			Latency:      sloLatency,
			Availability: sloAvail,
		},
	})
	if err != nil {
		return load.Report{}, 0, err
	}
	captures := 0
	if profiler != nil {
		captures = len(profiler.List())
	}
	return res.Report(), captures, nil
}

// e21DriftProbe builds a dataset the planner must misjudge: 2000 subjects
// each carrying one :p triple, and exactly one subject carrying a :q
// triple. The probe query runs :q first (estimated and actual cardinality
// 1), then :p with ?s bound — the planner estimates 2000/boundVarShrink
// = 500 rows where the join actually yields one, a 500x misestimate. The
// workload table must band the fingerprint at 100x and the registry must
// carry a non-zero grdf_plan_misestimate_total sample.
func e21DriftProbe(t *Table) error {
	st := store.New()
	for i := 0; i < 2000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e21/S%d", i))
		st.Add(rdf.T(s, rdf.RDFType, grdf.Feature))
		st.Add(rdf.T(s, rdf.IRI("http://e21/p"), rdf.IRI(fmt.Sprintf("http://e21/O%d", i))))
	}
	st.Add(rdf.T(rdf.IRI("http://e21/S0"), rdf.IRI("http://e21/q"), rdf.IRI("http://e21/flag")))

	role := rdf.IRI(seconto.NS + "E21Auditor")
	policies := &seconto.Set{Rules: []seconto.Rule{{
		ID:       rdf.IRI("http://e21/policy/view-all"),
		Subject:  role,
		Action:   seconto.ActionView,
		Resource: grdf.Feature,
		Permit:   true,
	}}}
	reg := obs.NewRegistry()
	wt := workload.New(workload.Config{Capacity: 64, Registry: reg})
	engine := gsacs.New(policies, st, gsacs.Options{})
	engine.SetWorkload(wt)

	const query = `SELECT ?s ?o WHERE { ?s <http://e21/q> ?x . ?s <http://e21/p> ?o }`
	res, err := engine.Query(role, seconto.ActionView, query)
	if err != nil {
		return fmt.Errorf("probe query: %w", err)
	}
	if len(res.Bindings) != 1 {
		return fmt.Errorf("probe query rows = %d, want 1", len(res.Bindings))
	}

	snaps := wt.TopK(4)
	if len(snaps) == 0 {
		return fmt.Errorf("workload table empty after probe query")
	}
	var probe *workload.Snapshot
	pq, err := sparql.ParseQuery(query, nil)
	if err != nil {
		return fmt.Errorf("re-parse probe: %w", err)
	}
	want := fmt.Sprintf("%016x", pq.Fingerprint)
	for i := range snaps {
		if snaps[i].Fingerprint == want {
			probe = &snaps[i]
			break
		}
	}
	if probe == nil {
		return fmt.Errorf("probe fingerprint %s not in top-K", want)
	}
	if probe.MaxMisestimate < workload.DriftWarnRatio {
		return fmt.Errorf("max_misestimate = %.1f, want >= %d", probe.MaxMisestimate, workload.DriftWarnRatio)
	}
	if probe.DriftBand == "" {
		return fmt.Errorf("drift_band empty at misestimate %.1f", probe.MaxMisestimate)
	}
	var misestimates float64
	for _, m := range reg.Snapshot() {
		if m.Name == "grdf_plan_misestimate_total" {
			misestimates += m.Value
		}
	}
	if misestimates == 0 {
		return fmt.Errorf("grdf_plan_misestimate_total did not fire")
	}
	t.AddNote("forced misestimate detected: fingerprint %s max_misestimate=%.0fx band=%s drift_count=%d",
		probe.Fingerprint, probe.MaxMisestimate, probe.DriftBand, probe.DriftCount)
	t.AddNote("grdf_plan_misestimate_total fired %d time(s); structured drift warning logged at first crossing",
		int(misestimates))
	return nil
}
