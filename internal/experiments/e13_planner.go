package experiments

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/sparql"
)

// e13Query is the Section 7.1 aggregation shape — walk from chemical sites
// through their inventory to the stored chemicals — with the selective
// pattern (a fixed chemical code) written last. The legacy static order
// scores the rdf:type pattern and the code pattern equally and keeps them in
// textual order, so it joins every site against every matching record before
// any chain pattern connects the two: a Cartesian product. The selectivity
// planner starts at the code pattern and follows the join chain.
const e13Query = `SELECT ?site ?name ?chem WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
  ?site app:hasChemicalInfo ?info .
  ?info app:chemical ?rec .
  ?rec app:hasChemName ?chem .
  ?rec app:hasChemCode "017CL" .
}`

// E13Planner measures the selectivity-driven BGP planner against the legacy
// static pattern order on identical engines over the same store, and checks
// that both orders agree on the answers.
func E13Planner(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{50, 200}
	}
	t := &Table{
		ID:    "E13",
		Title: "Selectivity planner vs static pattern order (Sec 7.1 query)",
		Columns: []string{"sites", "triples", "solutions", "static order",
			"planned", "speedup"},
	}
	for _, n := range sizes {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 53, Sites: n})
		st := sc.Merged

		reps := 3
		if n <= 60 {
			reps = 10
		}
		static := sparql.NewEngine(st).SetPlanning(false)
		planned := sparql.NewEngine(st)

		staticN, staticTime, err := e13Time(static, reps)
		if err != nil {
			t.AddNote("static evaluation error: %v", err)
			continue
		}
		plannedN, plannedTime, err := e13Time(planned, reps)
		if err != nil {
			t.AddNote("planned evaluation error: %v", err)
			continue
		}
		if staticN != plannedN {
			t.AddNote("MISMATCH at %d sites: static %d solutions, planned %d", n, staticN, plannedN)
		}
		speedup := float64(staticTime) / float64(plannedTime)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", st.Len()),
			fmt.Sprintf("%d", plannedN),
			staticTime.Round(time.Microsecond).String(),
			plannedTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup))
	}
	t.AddNote("expected shape: identical solution counts; speedup grows with site count as the static order's site x record Cartesian product widens")
	return t
}

// e13Time evaluates the E13 query reps times on eng, returning the solution
// count and the per-run wall time.
func e13Time(eng *sparql.Engine, reps int) (int, time.Duration, error) {
	n := 0
	start := time.Now()
	for i := 0; i < reps; i++ {
		res, err := eng.Query(e13Query)
		if err != nil {
			return 0, 0, err
		}
		n = len(res.Bindings)
	}
	return n, time.Since(start) / time.Duration(reps), nil
}
