package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/seconto"
)

// E14 measures the federation layer's fault tolerance: answered-request
// rate and tail latency against 0, 1 and 2 flaky sources, with the circuit
// breakers on and off. A request counts as answered when it carries every
// solution the healthy source alone produces AND completes inside the SLO —
// a slow answer is a missed answer for the Section 7.1 emergency-response
// consumer.

const (
	e14SourceTimeout = 20 * time.Millisecond
	e14SLO           = 30 * time.Millisecond
	e14Warmup        = 10
)

const e14Query = `SELECT ?site ?name WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
}`

// E14Federation runs the answered-rate / tail-latency matrix. requests is
// the measured request count per cell (0 uses the default 150).
func E14Federation(requests int) *Table {
	if requests <= 0 {
		requests = 150
	}
	t := &Table{
		ID:    "E14",
		Title: "Federation fault tolerance: answered rate and tail latency",
		Columns: []string{"flaky", "breaker", "requests", "answered", "rate",
			"degraded", "p50", "p99"},
	}

	engine := func() *gsacs.Engine {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 41, Sites: 8})
		reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
		return gsacs.New(sc.Policies, sc.Merged,
			gsacs.Options{Reasoner: reasoner, CacheSize: 16})
	}

	// Baseline: what the healthy source alone answers.
	healthyEngine := engine()
	base, err := healthyEngine.QueryCtx(context.Background(),
		datagen.RoleEmergency, seconto.ActionView, e14Query)
	if err != nil {
		t.AddNote("baseline query failed: %v", err)
		return t
	}
	baseline := federation.FromSPARQL(base)
	if len(baseline.Rows) == 0 {
		t.AddNote("baseline query returned no rows; matrix is vacuous")
		return t
	}

	for _, flaky := range []int{0, 1, 2} {
		for _, breakerOn := range []bool{true, false} {
			if flaky == 0 && !breakerOn {
				continue // identical to the breaker-on cell by construction
			}
			answered, degraded, p50, p99 := e14Cell(engine, healthyEngine,
				baseline, flaky, breakerOn, requests)
			t.AddRow(fmt.Sprintf("%d", flaky), mark(breakerOn),
				fmt.Sprintf("%d", requests),
				fmt.Sprintf("%d", answered),
				fmt.Sprintf("%.1f%%", 100*float64(answered)/float64(requests)),
				fmt.Sprintf("%d", degraded),
				p50.Round(time.Microsecond).String(),
				p99.Round(time.Microsecond).String())
		}
	}
	t.AddNote("answered = full healthy solution set within the %s SLO; per-source timeout %s",
		e14SLO, e14SourceTimeout)
	t.AddNote("flaky sources hang 65%% / error 35%% of calls (never succeed); first %d requests per cell warm the breakers and are not measured", e14Warmup)
	t.AddNote("expected shape: breaker on holds the answered rate near 100%% by failing sick sources fast; breaker off re-waits the source timeout every request, dragging p99 past the SLO")
	return t
}

// e14Cell runs one (flaky count, breaker setting) cell and reports the
// answered and degraded counts plus latency percentiles.
func e14Cell(engine func() *gsacs.Engine, healthy *gsacs.Engine,
	baseline *federation.Result, flaky int, breakerOn bool, requests int,
) (answered, degraded int, p50, p99 time.Duration) {
	sources := []federation.Source{federation.NewLocalSource("healthy", healthy)}
	for i := 0; i < flaky; i++ {
		sources = append(sources, federation.NewFaultySource(
			federation.NewLocalSource(fmt.Sprintf("flaky%d", i+1), engine()),
			federation.FaultConfig{
				// Always fail: a stray success would reset the breaker's
				// consecutive-failure count and blur the on/off comparison.
				Seed:      int64(100 + i),
				ErrorRate: 0.35,
				HangRate:  0.65,
			}))
	}
	fed, err := federation.New(federation.Config{
		SourceTimeout:  e14SourceTimeout,
		DisableBreaker: !breakerOn,
		Breaker: federation.BreakerConfig{
			Threshold: 5,
			Cooldown:  time.Minute, // no half-open probes inside a cell
		},
		Retry: federation.RetryConfig{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond},
	}, sources...)
	if err != nil {
		return 0, 0, 0, 0
	}

	want := make(map[string]bool, len(baseline.Rows))
	for _, row := range baseline.Rows {
		want[fmt.Sprint(row)] = true
	}
	complete := func(res *federation.Result) bool {
		if res == nil {
			return false
		}
		got := make(map[string]bool, len(res.Rows))
		for _, row := range res.Rows {
			sub := map[string]string{}
			for _, v := range baseline.Vars {
				if val, ok := row[v]; ok {
					sub[v] = val
				}
			}
			got[fmt.Sprint(sub)] = true
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}

	latencies := make([]time.Duration, 0, requests)
	for i := 0; i < e14Warmup+requests; i++ {
		start := time.Now()
		resp := fed.Query(context.Background(),
			datagen.RoleEmergency, seconto.ActionView, e14Query)
		elapsed := time.Since(start)
		if i < e14Warmup {
			continue
		}
		latencies = append(latencies, elapsed)
		if resp.Degraded {
			degraded++
		}
		if resp.Err == nil && complete(resp.Result) && elapsed <= e14SLO {
			answered++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return answered, degraded, percentile(latencies, 0.50), percentile(latencies, 0.99)
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
