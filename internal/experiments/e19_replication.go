package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/load"
	"repro/internal/repl"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/wal"
)

// E19Replication measures what read replication buys under failure: the
// Sec 7.1 read mix is fired through a replica-only query router at a
// leader/follower deployment of 1, 2 and 4 WAL-shipping replicas, and one
// replica is killed (connections aborted, replication loop stopped — the
// in-process equivalent of kill -9) a third of the way into the run, then
// restarted at two thirds. A lone replica takes the outage on the chin;
// behind two or more, the router's fan-out keeps the answered rate at
// 100% (dead-source responses are degraded, not errors) while the
// restarted node bootstraps a fresh snapshot and rejoins below the lag
// bound. Breakers are disabled so availability reflects replica liveness
// alone, not breaker cooldown scheduling.
func E19Replication(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	t := &Table{
		ID: "E19",
		Title: "WAL-shipping replication: routed read availability through a " +
			"replica kill + rejoin (Sec 7.1 read mix)",
		Columns: []string{"replicas", "requests", "answered", "rate",
			"degraded", "errors", "client p99", "slo", "rejoin"},
	}
	const (
		sloLatency = 250 * time.Millisecond
		sloAvail   = 0.999
	)
	// Every routed read fans out to every replica, so the backend work is
	// rps x replicas; the rate is set so the 4-replica arm stays below
	// saturation and the table reads on availability, not queueing.
	// Test-sized runs drop further: under the race detector every query
	// costs several times more, and a saturated arm would report queueing
	// collapse instead of replication behavior.
	rps, sites := 60.0, 12
	if requests < 300 {
		rps, sites = 30.0, 6
	}
	for _, n := range []int{1, 2, 4} {
		rep, rejoin, err := e19Arm(n, requests, rps, sites, sloLatency, sloAvail)
		if err != nil {
			t.AddNote("arm with %d replicas failed: %v", n, err)
			return t
		}
		answered := rep.Requests - rep.Errors
		verdict := "PASS"
		if !rep.SLO.Pass {
			verdict = "FAIL"
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", rep.Requests),
			fmt.Sprintf("%d", answered),
			fmt.Sprintf("%.2f%%", 100*float64(answered)/float64(rep.Requests)),
			fmt.Sprintf("%d", rep.Degraded),
			fmt.Sprintf("%d", rep.Errors),
			fmt.Sprintf("%.2fms", rep.Corrected.P99Ms),
			verdict,
			rejoin)
	}
	t.AddNote("one replica killed at 1/3 of the run and restarted at 2/3; the restarted node re-bootstraps from a leader snapshot")
	t.AddNote("answered = non-error responses; a routed read degrades (partial sources) rather than errors while any replica is alive")
	t.AddNote("acceptance: with 4 replicas the answered rate is >= 99.9%% and client p99 (corrected) meets the %s SLO through the failure", sloLatency)
	return t
}

// e19Replica is one follower node: a gsacs server over a replicated store
// whose handler can be yanked (kill -9) and replaced by a fresh
// incarnation (restart).
type e19Replica struct {
	srv *httptest.Server

	mu       sync.Mutex
	handler  http.Handler // nil while killed
	follower *repl.Follower
	cancel   context.CancelFunc
}

// start builds a fresh store + engine + follower and swaps them in as the
// node's serving incarnation.
func (r *e19Replica) start(leaderURL string, policies *seconto.Set) error {
	st := store.New()
	engine := gsacs.New(policies, st, gsacs.Options{CacheSize: 64})
	f, err := repl.NewFollower(st, repl.FollowerOptions{
		LeaderURL: leaderURL,
		MaxLag:    2 * time.Second,
		Retry:     federation.RetryConfig{BaseDelay: 20 * time.Millisecond},
		// Inferences must follow every wholesale snapshot load.
		OnBootstrap: func() {
			engine.SetReasoner(gsacs.NewOWLReasoner(st, grdf.Ontology(), seconto.Ontology()))
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	r.mu.Lock()
	r.handler = gsacs.NewServer(engine, nil, gsacs.WithReplStatus(f.Status))
	r.follower = f
	r.cancel = cancel
	r.mu.Unlock()
	return nil
}

// kill stops replication and aborts every subsequent connection, the
// closest in-process stand-in for SIGKILL on the node.
func (r *e19Replica) kill() {
	r.mu.Lock()
	if r.cancel != nil {
		r.cancel()
	}
	r.handler = nil
	r.follower = nil
	r.mu.Unlock()
}

func (r *e19Replica) status() (repl.FollowerStatus, bool) {
	r.mu.Lock()
	f := r.follower
	r.mu.Unlock()
	if f == nil {
		return repl.FollowerStatus{}, false
	}
	return f.Status(), true
}

func (r *e19Replica) serveHTTP(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	h := r.handler
	r.mu.Unlock()
	if h == nil {
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, req)
}

// e19Arm runs one replica-count trial and returns the client report plus a
// summary of the killed node's rejoin.
func e19Arm(replicas, requests int, rps float64, sites int, sloLatency time.Duration, sloAvail float64) (load.Report, string, error) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 61, Sites: sites})

	// Leader: the scenario dataset over a real WAL repository, served to
	// followers through the wire endpoints.
	dir, err := os.MkdirTemp("", "e19-leader-*")
	if err != nil {
		return load.Report{}, "", err
	}
	defer os.RemoveAll(dir)
	lst := store.New()
	repo, err := wal.Open(lst, wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		return load.Report{}, "", err
	}
	defer repo.Close()
	lst.AddAll(sc.Merged.Triples())
	leader := repl.NewLeader(lst, repo, repl.LeaderOptions{PollTimeout: 250 * time.Millisecond})
	defer leader.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/wal/stream", leader.ServeStream)
	mux.HandleFunc("/v1/wal/snapshot", leader.ServeSnapshot)
	leaderSrv := httptest.NewServer(mux)
	defer leaderSrv.Close()

	// Followers, each behind a stable URL the router keeps pointing at
	// across the kill/restart (a pinned address, as in production).
	nodes := make([]*e19Replica, replicas)
	sources := make([]federation.Source, replicas)
	for i := range nodes {
		node := &e19Replica{}
		node.srv = httptest.NewServer(http.HandlerFunc(node.serveHTTP))
		defer node.srv.Close()
		defer node.kill()
		if err := node.start(leaderSrv.URL, sc.Policies); err != nil {
			return load.Report{}, "", err
		}
		nodes[i] = node
		sources[i] = federation.NewRemoteSource(fmt.Sprintf("replica%d", i+1), node.srv.URL, nil)
	}
	for _, node := range nodes {
		if err := e19WaitReady(node, 10*time.Second); err != nil {
			return load.Report{}, "", err
		}
	}

	// The replica-only router: no local data in the merge, breakers off so
	// the answered rate tracks liveness, not cooldown phase.
	fed, err := federation.New(federation.Config{
		SourceTimeout:  2 * time.Second,
		DisableBreaker: true,
		Retry:          federation.RetryConfig{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond},
	}, sources...)
	if err != nil {
		return load.Report{}, "", err
	}
	router := httptest.NewServer(gsacs.NewServer(
		gsacs.New(sc.Policies, store.New(), gsacs.Options{}), nil,
		gsacs.WithFederator(fed)))
	defer router.Close()

	arms, err := load.ScenarioArms(load.MixConfig{
		BaseURL:     router.URL,
		QueryWeight: 100,
	})
	if err != nil {
		return load.Report{}, "", err
	}

	// The fault schedule: kill the last replica at 1/3, restart it at 2/3.
	duration := time.Duration(float64(requests) / rps * float64(time.Second))
	victim := nodes[len(nodes)-1]
	var restartMu sync.Mutex
	var restartErr error
	killTimer := time.AfterFunc(duration/3, victim.kill)
	defer killTimer.Stop()
	joinTimer := time.AfterFunc(2*duration/3, func() {
		err := victim.start(leaderSrv.URL, sc.Policies)
		restartMu.Lock()
		restartErr = err
		restartMu.Unlock()
	})
	defer joinTimer.Stop()

	res, err := load.Run(context.Background(), load.Config{
		RPS:      rps,
		Duration: duration,
		Arms:     arms,
		SLO:      load.SLO{Latency: sloLatency, Availability: sloAvail},
	})
	if err != nil {
		return load.Report{}, "", err
	}
	restartMu.Lock()
	rerr := restartErr
	restartMu.Unlock()
	if rerr != nil {
		return load.Report{}, "", fmt.Errorf("restart victim: %w", rerr)
	}

	// The restarted node must rejoin: bootstrapped again and back under
	// the lag bound.
	if err := e19WaitReady(victim, 10*time.Second); err != nil {
		return load.Report{}, "", fmt.Errorf("victim never rejoined: %w", err)
	}
	st, _ := victim.status()
	rejoin := fmt.Sprintf("lag %.2fs, %d snapshots", st.LagSeconds, st.SnapshotTransfers)
	return res.Report(), rejoin, nil
}

// e19WaitReady polls a replica until its follower reports ready.
func e19WaitReady(node *e19Replica, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, ok := node.status(); ok && st.Ready {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := node.status()
	return fmt.Errorf("replica not ready within %s (status %+v)", timeout, st)
}
