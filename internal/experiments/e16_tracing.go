package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/sparql"
)

// E16Tracing measures the cost of hierarchical span tracing on the E13
// planner workload: the same query, on the same engine, with tracing off and
// with a root span per request against ring buffers of 0, 256 and 4096
// retained traces. Ring 0 isolates the span bookkeeping itself (spans run,
// nothing is retained); the larger rings add the publish-and-retain cost.
// The budget stated in EXPERIMENTS.md is < 5% p50 overhead for any arm.
func E16Tracing(reps int) *Table {
	if reps <= 0 {
		reps = 300
	}
	t := &Table{
		ID:    "E16",
		Title: "Span tracing overhead on the E13 workload (Sec 7.1 query)",
		Columns: []string{"arm", "p50", "p95", "p50 overhead", "spans/trace",
			"traces retained"},
	}
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 53, Sites: 50})
	eng := sparql.NewEngine(sc.Merged)

	// Warm the engine (dictionary, planner statistics) outside the timings.
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(e13Query); err != nil {
			t.AddNote("evaluation error: %v", err)
			return t
		}
	}

	arms := []struct {
		name   string
		tracer *obs.Tracer
		traced bool
	}{
		{"tracing off", nil, false},
		{"ring 0", obs.NewTracer(0), true},
		{"ring 256", obs.NewTracer(256), true},
		{"ring 4096", obs.NewTracer(4096), true},
	}
	var basis time.Duration
	for _, arm := range arms {
		durs := make([]time.Duration, 0, reps)
		spans := 0
		for i := 0; i < reps; i++ {
			ctx := context.Background()
			var root *obs.Span
			if arm.traced {
				ctx, root = arm.tracer.StartTrace(ctx, "bench e16", "")
			}
			start := time.Now()
			res, err := eng.QueryCtx(ctx, e13Query)
			durs = append(durs, time.Since(start))
			if arm.traced {
				spans = len(obs.ActiveTrace(ctx).Completed()) + 1 // + the root
				root.End()
			}
			if err != nil {
				t.AddNote("evaluation error (%s): %v", arm.name, err)
				return t
			}
			_ = res
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p50 := durs[len(durs)/2]
		p95 := durs[len(durs)*95/100]
		overhead := "baseline"
		if arm.traced && basis > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*(float64(p50)/float64(basis)-1))
		}
		if !arm.traced {
			basis = p50
		}
		retained := 0
		if arm.tracer != nil {
			retained = len(arm.tracer.Traces(0))
		}
		t.AddRow(arm.name,
			p50.Round(time.Microsecond).String(),
			p95.Round(time.Microsecond).String(),
			overhead,
			fmt.Sprintf("%d", spans),
			fmt.Sprintf("%d", retained))
	}
	t.AddNote("budget: every traced arm stays within 5%% p50 overhead of the tracing-off baseline")
	t.AddNote("ring 0 runs the spans without retention; larger rings add the publish cost, bounded by the ring capacity")
	return t
}
