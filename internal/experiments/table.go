// Package experiments implements the reproduction harness: one runner per
// artifact of the paper's evaluation — Fig. 1 (E1), Lists 1–5 (E2), Fig. 2
// (E3), Lists 6–7 (E4), the Section 7.1 scenario and List 8 (E5), the
// GeoXACML comparison (E6), the data-merge enforcement claim (E7), the
// Fig. 3 query cache (E8), the "deduce new data" reasoning claim (E9),
// substrate scaling (E10), the Section 2 alignment discussion (E11),
// multi-server policy merging (E12), the selectivity planner (E13) and
// federation fault tolerance (E14). Each runner returns a Table that
// cmd/grdf-bench prints and EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier ("E1" …).
	ID string
	// Title names the paper artifact being reproduced.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells, one row per line.
	Rows [][]string
	// Notes carry free-form observations printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
