package experiments

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/geoxacml"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// parsePolicies adapts seconto.Parse for the listing checks.
func parsePolicies(st *store.Store) ([]seconto.Rule, error) {
	set, err := seconto.Parse(st)
	if err != nil {
		return nil, err
	}
	return set.Rules, nil
}

// scenarioProperties are the sensitive predicates whose visibility the
// Section 7.1 matrix tracks.
var scenarioProperties = []struct {
	label string
	pred  rdf.IRI
}{
	{"site extent (grdf:boundedBy)", rdf.IRI(grdf.NS + "boundedBy")},
	{"site name", datagen.HasSiteName},
	{"chemical names", datagen.HasChemName},
	{"chemical codes", datagen.HasChemCode},
	{"quantities", datagen.HasQuantityKg},
	{"site contacts", datagen.HasContactPhone},
	{"stream layer", datagen.HasStreamName},
}

// scenarioEngine builds the standard scenario engine with OWL reasoning.
func scenarioEngine(seed int64, sites int) (*gsacs.Engine, *datagen.Scenario) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner, CacheSize: 16})
	return e, sc
}

// E5ScenarioViews reproduces the Section 7.1 role matrix: which property
// classes each role's layered view contains.
func E5ScenarioViews() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Contamination scenario role views (Sec 7.1, List 8)",
		Columns: []string{"property", "main repair", "hazmat", "emergency"},
	}
	e, sc := scenarioEngine(17, 8)
	views := map[string]*store.Store{
		"main repair": e.View(datagen.RoleMainRepair, seconto.ActionView),
		"hazmat":      e.View(datagen.RoleHazmat, seconto.ActionView),
		"emergency":   e.View(datagen.RoleEmergency, seconto.ActionView),
	}
	total := func(p rdf.IRI) int { return sc.Merged.Count(nil, p, nil) }
	cell := func(v *store.Store, p rdf.IRI) string {
		n := v.Count(nil, p, nil)
		switch {
		case n == 0:
			return "hidden"
		case n == total(p):
			return fmt.Sprintf("full (%d)", n)
		default:
			return fmt.Sprintf("partial (%d/%d)", n, total(p))
		}
	}
	// The extent rides on envelope corner literals; count envelope corners
	// per role via the boundedBy link instead of the raw predicate when
	// needed — boundedBy itself is the right indicator here.
	for _, p := range scenarioProperties {
		t.AddRow(p.label,
			cell(views["main repair"], p.pred),
			cell(views["hazmat"], p.pred),
			cell(views["emergency"], p.pred))
	}
	t.AddNote("expected (paper): main repair = extent+streams only; hazmat adds site names and chemical NAMES; emergency sees everything")
	t.AddNote("view sizes: main repair %d, hazmat %d, emergency %d triples (source %d)",
		views["main repair"].Len(), views["hazmat"].Len(), views["emergency"].Len(), sc.Merged.Len())
	return t
}

// E6FineVsCoarse reproduces the GeoXACML critique: property-level GRDF
// control vs object-level baseline, measured as leaked / missing property
// triples for the 'main repair' requirement ("should see only the geographic
// extent of chemical sites").
func E6FineVsCoarse(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{5, 20, 50}
	}
	t := &Table{
		ID:    "E6",
		Title: "Fine-grained (GRDF+SecOnto) vs object-level (GeoXACML) access",
		Columns: []string{"sites", "system", "policy choice", "leaked triples",
			"missing triples"},
	}
	for _, n := range sizes {
		e, sc := scenarioEngine(23, n)

		// Sensitive predicates that must stay hidden from main repair; the
		// extent must remain visible.
		sensitive := []rdf.IRI{datagen.HasSiteName, datagen.HasChemName,
			datagen.HasChemCode, datagen.HasQuantityKg, datagen.HasContactPhone,
			datagen.HasContactName}
		countSensitive := func(v *store.Store) int {
			sum := 0
			for _, p := range sensitive {
				sum += v.Count(nil, p, nil)
			}
			return sum
		}
		countExtent := func(v *store.Store) int {
			return v.Count(nil, rdf.IRI(grdf.NS+"boundedBy"), nil)
		}
		wantExtent := countExtent(sc.Merged)

		grdfView := e.View(datagen.RoleMainRepair, seconto.ActionView)
		t.AddRow(fmt.Sprintf("%d", n), "GRDF+SecOnto", "boundedBy only",
			fmt.Sprintf("%d", countSensitive(grdfView)),
			fmt.Sprintf("%d", wantExtent-countExtent(grdfView)))

		// GeoXACML choice A: permit ChemSite → whole object leaks.
		permitAll := &geoxacml.PolicySet{Rules: []geoxacml.Rule{
			{ID: "hydro", Subject: "mainrep", Action: "view",
				Resource: datagen.HydroStream, Effect: geoxacml.Permit},
			{ID: "sites", Subject: "mainrep", Action: "view",
				Resource: datagen.ChemSite, Effect: geoxacml.Permit},
			{ID: "info", Subject: "mainrep", Action: "view",
				Resource: datagen.ChemInfo, Effect: geoxacml.Permit},
			{ID: "rec", Subject: "mainrep", Action: "view",
				Resource: datagen.ChemRecord, Effect: geoxacml.Permit},
		}}
		viewA := permitAll.View("mainrep", "view", sc.Merged)
		t.AddRow(fmt.Sprintf("%d", n), "GeoXACML", "permit sites (all-or-nothing)",
			fmt.Sprintf("%d", countSensitive(viewA)),
			fmt.Sprintf("%d", wantExtent-countExtent(viewA)))

		// GeoXACML choice B: deny ChemSite → the extent the role needs is gone.
		denySites := &geoxacml.PolicySet{Rules: []geoxacml.Rule{
			{ID: "hydro", Subject: "mainrep", Action: "view",
				Resource: datagen.HydroStream, Effect: geoxacml.Permit},
			{ID: "sites", Subject: "mainrep", Action: "view",
				Resource: datagen.ChemSite, Effect: geoxacml.Deny},
		}}
		viewB := denySites.View("mainrep", "view", sc.Merged)
		t.AddRow(fmt.Sprintf("%d", n), "GeoXACML", "deny sites (all-or-nothing)",
			fmt.Sprintf("%d", countSensitive(viewB)),
			fmt.Sprintf("%d", wantExtent-countExtent(viewB)))
	}
	t.AddNote("expected shape: GRDF row has 0 leaked + 0 missing at every size; each GeoXACML choice fails one way")
	return t
}

// E7MergeEnforcement reproduces the data-merge claim: "if base data model
// changes or aggregated with other data sources, the same security framework
// will continue to work" — and the converse failure of the syntactic
// baseline.
func E7MergeEnforcement() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Policy enforcement under data aggregation (Sec 7.1 merge)",
		Columns: []string{"stage", "system", "extent visible", "sensitive leaked", "enforced"},
	}
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 29, Sites: 10})
	sensitive := []rdf.IRI{datagen.HasChemName, datagen.HasChemCode,
		datagen.HasQuantityKg, datagen.HasContactPhone}
	boundedBy := rdf.IRI(grdf.NS + "boundedBy")

	evaluate := func(stage string, data *store.Store) {
		wantExtent := data.Count(nil, boundedBy, nil)
		countSensitive := func(v *store.Store) int {
			sum := 0
			for _, p := range sensitive {
				sum += v.Count(nil, p, nil)
			}
			return sum
		}
		// GRDF with reasoning
		reasoner := gsacs.NewOWLReasoner(data, grdf.Ontology(), seconto.Ontology())
		e := gsacs.New(sc.Policies, data, gsacs.Options{Reasoner: reasoner})
		v := e.View(datagen.RoleMainRepair, seconto.ActionView)
		extent := v.Count(nil, boundedBy, nil)
		leaked := countSensitive(v)
		t.AddRow(stage, "GRDF+SecOnto",
			fmt.Sprintf("%d/%d", extent, wantExtent),
			fmt.Sprintf("%d", leaked),
			mark(extent == wantExtent && leaked == 0))

		// GeoXACML baseline
		ps := &geoxacml.PolicySet{Rules: []geoxacml.Rule{
			{ID: "sites", Subject: "mainrep", Action: "view",
				Resource: datagen.ChemSite, Effect: geoxacml.Permit},
		}}
		vx := ps.View("mainrep", "view", data)
		extentX := vx.Count(nil, boundedBy, nil)
		leakedX := countSensitive(vx)
		t.AddRow(stage, "GeoXACML",
			fmt.Sprintf("%d/%d", extentX, wantExtent),
			fmt.Sprintf("%d", leakedX),
			mark(extentX == wantExtent && leakedX == 0))
	}

	evaluate("before merge", sc.Merged)

	// Merge: weather overlay aggregated in; sites arrive re-typed under a
	// new subclass of ChemSite, the realistic outcome of aggregating a
	// second source with its own schema.
	merged := sc.Merged.Snapshot()
	weather := datagen.Weather(datagen.WeatherConfig{Seed: 29, Stations: 4})
	merged.AddAll(weather.Triples())
	datagen.LinkSitesToStations(merged)
	newClass := rdf.IRI(rdf.AppNS + "MonitoredChemSite")
	merged.Add(rdf.T(newClass, rdf.RDFSSubClassOf, datagen.ChemSite))
	for _, s := range sc.Chemical.Sites {
		merged.RemoveMatching(s.IRI, rdf.RDFType, datagen.ChemSite)
		merged.Add(rdf.T(s.IRI, rdf.RDFType, newClass))
	}
	evaluate("after merge", merged)
	t.AddNote("expected shape: GRDF enforced before AND after the merge; GeoXACML over-exposes before and loses coverage after the subclass re-typing")
	return t
}

// E8QueryCache reproduces the Fig. 3 Query Cache claim with measured
// latencies: repeated role views and queries with the cache off vs on, plus
// invalidation correctness.
func E8QueryCache(requests int) *Table {
	if requests <= 0 {
		requests = 50
	}
	t := &Table{
		ID:      "E8",
		Title:   "Query Cache performance (Fig. 3)",
		Columns: []string{"workload", "cache", "requests", "total", "per request", "speedup"},
	}
	roles := []rdf.IRI{datagen.RoleMainRepair, datagen.RoleHazmat, datagen.RoleEmergency}

	run := func(cacheSize int) (time.Duration, *gsacs.Engine) {
		e, _ := func() (*gsacs.Engine, *datagen.Scenario) {
			sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 31, Sites: 30})
			reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
			return gsacs.New(sc.Policies, sc.Merged,
				gsacs.Options{Reasoner: reasoner, CacheSize: cacheSize}), sc
		}()
		start := time.Now()
		for i := 0; i < requests; i++ {
			e.View(roles[i%len(roles)], seconto.ActionView)
		}
		return time.Since(start), e
	}

	cold, _ := run(0)
	warm, warmEngine := run(16)
	speedup := float64(cold) / float64(warm)
	t.AddRow("role views", "off", fmt.Sprintf("%d", requests),
		cold.Round(time.Microsecond).String(),
		(cold / time.Duration(requests)).Round(time.Microsecond).String(), "1.0x")
	t.AddRow("role views", "on (LRU 16)", fmt.Sprintf("%d", requests),
		warm.Round(time.Microsecond).String(),
		(warm / time.Duration(requests)).Round(time.Microsecond).String(),
		fmt.Sprintf("%.1fx", speedup))
	hits, misses := warmEngine.Cache().Stats()
	t.AddNote("cache hits=%d misses=%d (hit ratio %.0f%%)", hits, misses,
		100*float64(hits)/float64(hits+misses))

	// Invalidation: a mutation must refresh the next view.
	e, sc := scenarioEngine(31, 10)
	v1 := e.View(datagen.RoleHazmat, seconto.ActionView)
	fresh := rdf.IRI(rdf.AppNS + "chem/siteFRESH")
	grdf.NewFeature(sc.Merged, fresh, datagen.ChemSite)
	sc.Merged.Add(rdf.T(fresh, datagen.HasSiteName, rdf.NewString("Fresh Plant")))
	v2 := e.View(datagen.RoleHazmat, seconto.ActionView)
	invalidated := v1 != v2 && v2.Count(fresh, datagen.HasSiteName, nil) == 1
	t.AddRow("invalidation on data change", mark(invalidated), "", "", "", "")
	t.AddNote("expected shape: order-of-magnitude speedup on repeated requests; stale answers never served")
	return t
}
