package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

// E15 measures what durability costs and what recovery buys: single-triple
// mutation throughput through the write-ahead log under each fsync policy
// (the price of the zero-acked-loss guarantee), and cold-start recovery time
// replaying the log with and without a snapshot in front of it.

// e15Triple builds the i-th distinct workload triple.
func e15Triple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://example.org/e15/s%d", i)),
		rdf.IRI("http://example.org/e15/note"),
		rdf.NewString(fmt.Sprintf("v%d", i)),
	)
}

// E15Durability runs the fsync-policy / recovery matrix. records is the
// mutation count per cell (0 uses the default 1000).
func E15Durability(records int) *Table {
	if records <= 0 {
		records = 1000
	}
	t := &Table{
		ID:    "E15",
		Title: "Durable repository: WAL append throughput and crash recovery",
		Columns: []string{"phase", "fsync", "snapshot", "records", "wall",
			"ops/s", "recovered"},
	}

	policies := []struct {
		name   string
		policy wal.FsyncPolicy
	}{
		{"off", wal.FsyncOff},
		{"interval", wal.FsyncInterval},
		{"always", wal.FsyncAlways},
	}

	for _, pol := range policies {
		dir, err := os.MkdirTemp("", "e15-"+pol.name+"-*")
		if err != nil {
			t.AddNote("tempdir: %v", err)
			return t
		}
		defer os.RemoveAll(dir)

		open := func(st *store.Store) (*wal.Repository, error) {
			return wal.Open(st, wal.Options{
				Dir:           dir,
				Fsync:         pol.policy,
				FsyncInterval: 5 * time.Millisecond,
			})
		}

		// Append phase: one acked mutation per record through the commit hook.
		st := store.New()
		repo, err := open(st)
		if err != nil {
			t.AddNote("open %s: %v", pol.name, err)
			return t
		}
		start := time.Now()
		for i := 0; i < records; i++ {
			if _, err := st.Apply(store.Op{Kind: store.OpAdd,
				Triples: []rdf.Triple{e15Triple(i)}}); err != nil {
				t.AddNote("append %s: %v", pol.name, err)
				repo.Close()
				return t
			}
		}
		elapsed := time.Since(start)
		if err := repo.Close(); err != nil {
			t.AddNote("close %s: %v", pol.name, err)
			return t
		}
		t.AddRow("append", pol.name, "-", fmt.Sprintf("%d", records),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(records)/elapsed.Seconds()), "-")

		// Recovery phase: cold start replaying the whole log.
		recovered := store.New()
		repo, err = open(recovered)
		if err != nil {
			t.AddNote("recover %s: %v", pol.name, err)
			return t
		}
		info := repo.Info()
		t.AddRow("recover", pol.name, mark(info.SnapshotSeq > 0),
			fmt.Sprintf("%d", info.RecordsReplayed),
			info.Duration.Round(time.Microsecond).String(), "-",
			fmt.Sprintf("%d", recovered.Len()))

		// Snapshot the repository and recover again: replay cost collapses to
		// loading the checkpoint.
		if err := repo.Snapshot(); err != nil {
			t.AddNote("snapshot %s: %v", pol.name, err)
			repo.Close()
			return t
		}
		if err := repo.Close(); err != nil {
			t.AddNote("close %s: %v", pol.name, err)
			return t
		}
		snapped := store.New()
		repo, err = open(snapped)
		if err != nil {
			t.AddNote("recover-snap %s: %v", pol.name, err)
			return t
		}
		info = repo.Info()
		t.AddRow("recover", pol.name, mark(info.SnapshotSeq > 0),
			fmt.Sprintf("%d", info.RecordsReplayed),
			info.Duration.Round(time.Microsecond).String(), "-",
			fmt.Sprintf("%d", snapped.Len()))
		if err := repo.Close(); err != nil {
			t.AddNote("close %s: %v", pol.name, err)
			return t
		}
		if recovered.Len() != records || snapped.Len() != records {
			t.AddNote("LOSS under %s: recovered %d / %d (log) and %d (snapshot)",
				pol.name, recovered.Len(), records, snapped.Len())
		}
	}

	t.AddNote("append = single-triple store.Apply acked through the WAL commit hook; ops/s includes the fsync")
	t.AddNote("recover rows: first replays the log from scratch, second loads the snapshot and replays nothing")
	t.AddNote("expected shape: fsync always pays per-record disk latency; interval and off trade the tail of acked durability for throughput; snapshot recovery is O(state), not O(history)")
	return t
}
