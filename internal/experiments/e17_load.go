package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/seconto"
)

// E17Load answers the north-star capacity question with a number: the
// maximum request rate the Sec 7.1 G-SACS scenario sustains while meeting
// its latency SLO. Each arm starts a fresh in-process HTTP server (fresh
// SLO engine too — the sliding windows must not leak between arms) and
// fires the open-loop role mix at a fixed arrival rate; latencies are
// coordinated-omission corrected by anchoring every sample at its intended
// start. The server's own /v1/slo view is sampled after each arm so the
// client-side and server-side p99 can be cross-checked — they must agree
// within ~20% on a steady-state run, the client's number being larger by
// queueing and transport.
func E17Load(requests int) *Table {
	if requests <= 0 {
		requests = 200
	}
	t := &Table{
		ID: "E17",
		Title: "Open-loop load: max sustained RPS at p99 under SLO " +
			"(Sec 7.1 mix, corrected for coordinated omission)",
		Columns: []string{"target rps", "achieved", "client p50", "client p99",
			"server p99", "errors", "slo"},
	}
	const (
		sloLatency = 250 * time.Millisecond
		sloAvail   = 0.999
	)
	var maxSustained float64
	var agreements []float64
	for _, rps := range []float64{100, 200, 400} {
		achieved, rep, serverP99, err := e17Arm(rps, requests, sloLatency, sloAvail)
		if err != nil {
			t.AddNote("arm %v rps failed: %v", rps, err)
			return t
		}
		verdict := "PASS"
		if !rep.SLO.Pass {
			verdict = "FAIL"
		} else if achieved > maxSustained {
			maxSustained = achieved
		}
		if serverP99 > 0 && rep.Corrected.P99Ms > 0 {
			agreements = append(agreements, rep.Corrected.P99Ms/serverP99)
		}
		t.AddRow(
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.1f", achieved),
			fmt.Sprintf("%.2fms", rep.Corrected.P50Ms),
			fmt.Sprintf("%.2fms", rep.Corrected.P99Ms),
			fmt.Sprintf("%.2fms", serverP99),
			fmt.Sprintf("%d", rep.Errors),
			verdict)
	}
	t.AddNote("max sustained: %.1f rps at p99 <= %s, availability >= %g",
		maxSustained, sloLatency, sloAvail)
	for _, ratio := range agreements {
		if ratio > 0 {
			t.AddNote("client/server p99 ratio %.2f (client includes queueing + transport; ~1.0 on steady state)", ratio)
			break
		}
	}
	t.AddNote("client p99 is corrected: each sample anchored at its intended start on the arrival schedule")
	return t
}

// e17Arm runs one fixed-rate trial against a fresh server and returns the
// achieved rate, the client report, and the server-side fast-window p99.
func e17Arm(rps float64, requests int, sloLatency time.Duration, sloAvail float64) (float64, load.Report, float64, error) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 61, Sites: 12})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	engine := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner, CacheSize: 64})
	slo := obs.NewSLOEngine(obs.SLOConfig{
		LatencyTarget:      sloLatency,
		AvailabilityTarget: sloAvail,
	})
	srv := httptest.NewServer(gsacs.NewServer(engine, nil, gsacs.WithSLO(slo)))
	defer srv.Close()

	arms, err := load.ScenarioArms(load.MixConfig{
		BaseURL: srv.URL,
		Client:  srv.Client(),
	})
	if err != nil {
		return 0, load.Report{}, 0, err
	}
	duration := time.Duration(float64(requests) / rps * float64(time.Second))
	res, err := load.Run(context.Background(), load.Config{
		RPS:      rps,
		Duration: duration,
		Arms:     arms,
		SLO: load.SLO{
			Latency:      sloLatency,
			Availability: sloAvail,
		},
	})
	if err != nil {
		return 0, load.Report{}, 0, err
	}
	rep := res.Report()
	return rep.AchievedRPS, rep, slo.Status().Fast.P99Ms, nil
}
