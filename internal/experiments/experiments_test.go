package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func findRow(t *Table, key string) []string {
	for _, row := range t.Rows {
		if strings.Contains(strings.Join(row, " "), key) {
			return row
		}
	}
	return nil
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	out := tab.String()
	for _, want := range []string{"== EX: demo ==", "a  bb", "1  2", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1(t *testing.T) {
	tab := E1Ontology()
	total := findRow(tab, "TOTAL")
	if total == nil {
		t.Fatal("no TOTAL row")
	}
	if total[1] == "0" {
		t.Errorf("no classes counted: %v", total)
	}
	// consistency note must report 0 violations
	joined := strings.Join(tab.Notes, " ")
	if !strings.Contains(joined, "violations: 0") {
		t.Errorf("ontology not clean: %v", tab.Notes)
	}
}

func TestE2AllListingsPass(t *testing.T) {
	tab := E2Listings()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("listing check failed: %v", row)
		}
	}
}

func TestE3AllChecksPass(t *testing.T) {
	tab := E3Topology()
	for _, row := range tab.Rows {
		if row[1] != "yes" {
			t.Errorf("topology check failed: %v", row)
		}
	}
}

func TestE4AllChecksPass(t *testing.T) {
	tab := E4GMLRoundTrip()
	for _, row := range tab.Rows {
		if row[1] != "yes" {
			t.Errorf("GML check failed: %v", row)
		}
	}
}

func TestE5Matrix(t *testing.T) {
	tab := E5ScenarioViews()
	checks := []struct {
		property string
		mainRep  string
		hazmat   string
		emerg    string
	}{
		{"site extent", "full", "full", "full"},
		{"site name", "hidden", "full", "full"},
		{"chemical names", "hidden", "full", "full"},
		{"chemical codes", "hidden", "hidden", "full"},
		{"quantities", "hidden", "hidden", "full"},
		{"site contacts", "hidden", "hidden", "full"},
		{"stream layer", "full", "full", "full"},
	}
	for _, c := range checks {
		row := findRow(tab, c.property)
		if row == nil {
			t.Errorf("row %q missing", c.property)
			continue
		}
		if !strings.HasPrefix(row[1], c.mainRep) ||
			!strings.HasPrefix(row[2], c.hazmat) ||
			!strings.HasPrefix(row[3], c.emerg) {
			t.Errorf("row %q = %v, want prefixes %s/%s/%s",
				c.property, row, c.mainRep, c.hazmat, c.emerg)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6FineVsCoarse([]int{5, 15})
	if len(tab.Rows) != 6 { // 3 systems × 2 sizes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		leaked, missing := row[3], row[4]
		switch {
		case row[1] == "GRDF+SecOnto":
			if leaked != "0" || missing != "0" {
				t.Errorf("GRDF row imperfect: %v", row)
			}
		case strings.Contains(row[2], "permit"):
			if leaked == "0" {
				t.Errorf("permit-all baseline did not leak: %v", row)
			}
		case strings.Contains(row[2], "deny"):
			if missing == "0" {
				t.Errorf("deny-all baseline did not lose the extent: %v", row)
			}
		}
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7MergeEnforcement()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		enforced := row[len(row)-1]
		if row[1] == "GRDF+SecOnto" && enforced != "yes" {
			t.Errorf("GRDF enforcement broke: %v", row)
		}
		if row[1] == "GeoXACML" && enforced == "yes" {
			t.Errorf("baseline unexpectedly enforced: %v", row)
		}
	}
}

func TestE8CacheWinsAndInvalidates(t *testing.T) {
	tab := E8QueryCache(30)
	var off, on []string
	for _, row := range tab.Rows {
		if row[0] == "role views" && row[1] == "off" {
			off = row
		}
		if row[0] == "role views" && strings.HasPrefix(row[1], "on") {
			on = row
		}
		if row[0] == "invalidation on data change" && row[1] != "yes" {
			t.Errorf("invalidation failed: %v", row)
		}
	}
	if off == nil || on == nil {
		t.Fatalf("rows missing: %v", tab.Rows)
	}
	if !strings.HasSuffix(on[5], "x") || on[5] == "1.0x" {
		t.Errorf("no speedup recorded: %v", on)
	}
}

func TestE9InferenceAddsAnswers(t *testing.T) {
	tab := E9Reasoning([]int{5, 15})
	for _, row := range tab.Rows {
		before, after := row[4], row[5]
		if before != "0" {
			t.Errorf("answers before reasoning = %s (want 0): %v", before, row)
		}
		if after == "0" || after == "-1" {
			t.Errorf("answers after reasoning = %s: %v", after, row)
		}
	}
}

func TestE10Runs(t *testing.T) {
	tab := E10StoreSparql([]int{5, 10})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "0" {
			t.Errorf("no triples generated: %v", row)
		}
	}
}

func TestE11Quality(t *testing.T) {
	tab := E11Alignment()
	row := findRow(tab, "identical names")
	if row == nil || row[1] != "1.00" {
		t.Errorf("identical alignment imperfect: %v", row)
	}
	noSyn := findRow(tab, "renamed, no synonyms")
	withSyn := findRow(tab, "renamed, with synonyms")
	if noSyn == nil || withSyn == nil {
		t.Fatal("rows missing")
	}
	if withSyn[3] <= noSyn[3] { // F1 strings compare OK for 0.xx format
		t.Errorf("synonyms did not help: %v vs %v", withSyn, noSyn)
	}
}

func TestE12ConflictResolution(t *testing.T) {
	tab := E12PolicyConflicts()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	merged := tab.Rows[0]
	if merged[1] == "0" {
		t.Errorf("merge not flagged ambiguous: %v", merged)
	}
	deny := findRow(tab, "deny wins")
	permit := findRow(tab, "permit wins")
	if deny == nil || permit == nil {
		t.Fatal("strategy rows missing")
	}
	if deny[1] != "0" || permit[1] != "0" {
		t.Errorf("strategies left conflicts: %v / %v", deny, permit)
	}
	if deny[2] != "denied" {
		t.Errorf("deny-wins outcome = %v", deny)
	}
	if permit[2] == "denied" {
		t.Errorf("permit-wins outcome = %v", permit)
	}
}

func TestE14FederationShape(t *testing.T) {
	tab := E14Federation(40)
	// 0-flaky breaker-off is skipped, leaving 5 cells.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5:\n%s", len(tab.Rows), tab)
	}
	rate := func(row []string) string { return row[4] }
	// With no flaky sources every request must be answered.
	if r := rate(tab.Rows[0]); r != "100.0%" {
		t.Errorf("0-flaky answered rate = %s, want 100.0%%", r)
	}
	// Breaker on keeps the answered rate >= 99% even with flaky sources
	// (ISSUE acceptance); breaker off must be measurably worse.
	var onRate, offRate float64
	for _, row := range tab.Rows {
		if row[0] != "2" {
			continue
		}
		var v float64
		fmt.Sscanf(rate(row), "%f%%", &v)
		if row[1] == "yes" {
			onRate = v
		} else {
			offRate = v
		}
	}
	if onRate < 99 {
		t.Errorf("breaker-on answered rate = %.1f%%, want >= 99%%\n%s", onRate, tab)
	}
	if offRate >= onRate {
		t.Errorf("breaker off (%.1f%%) not worse than on (%.1f%%)\n%s", offRate, onRate, tab)
	}
}

func TestE17LoadShape(t *testing.T) {
	tab := E17Load(40)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 RPS arms:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
		var achieved float64
		if _, err := fmt.Sscanf(row[1], "%f", &achieved); err != nil || achieved <= 0 {
			t.Errorf("achieved rate %q not positive: %v", row[1], row)
		}
		if v := row[len(row)-1]; v != "PASS" && v != "FAIL" {
			t.Errorf("verdict %q, want PASS or FAIL: %v", v, row)
		}
	}
	joined := strings.Join(tab.Notes, " ")
	if strings.Contains(joined, "failed") {
		t.Fatalf("an arm errored:\n%s", tab)
	}
	if !strings.Contains(joined, "max sustained") {
		t.Errorf("missing max-sustained note: %v", tab.Notes)
	}
	if !strings.Contains(joined, "client/server p99 ratio") {
		t.Errorf("missing agreement note: %v", tab.Notes)
	}
}

func TestE20AdmissionShape(t *testing.T) {
	tab := E20Admission(40)
	// Four admission sweep steps plus the calibrated overload pair
	// (admission + ungated at 2x measured capacity).
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
		if row[0] != "admission" && row[0] != "ungated" {
			t.Errorf("arm %q, want admission or ungated", row[0])
		}
		var goodput float64
		if _, err := fmt.Sscanf(row[3], "%f", &goodput); err != nil || goodput <= 0 {
			t.Errorf("goodput %q not positive: %v", row[3], row)
		}
	}
	if tab.Rows[len(tab.Rows)-1][0] != "ungated" {
		t.Errorf("last row should be the ungated baseline: %v", tab.Rows)
	}
	joined := strings.Join(tab.Notes, " ")
	if strings.Contains(joined, "failed") {
		t.Fatalf("an arm errored:\n%s", tab)
	}
	for _, want := range []string{"calibrated capacity", "2x capacity", "ungated at", "priority tiers"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q note: %v", want, tab.Notes)
		}
	}
}

func TestE15DurabilityShape(t *testing.T) {
	const records = 60
	tab := E15Durability(records)
	// Three policies x (append + recover-from-log + recover-from-snapshot).
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9:\n%s", len(tab.Rows), tab)
	}
	for _, note := range tab.Notes {
		if strings.Contains(note, "LOSS") {
			t.Fatalf("experiment reported data loss:\n%s", tab)
		}
	}
	for _, row := range tab.Rows {
		if row[0] != "recover" {
			continue
		}
		if row[6] != fmt.Sprintf("%d", records) {
			t.Errorf("recover row %v: recovered %s triples, want %d", row, row[6], records)
		}
	}
	// Snapshot recovery replays nothing.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "yes" || last[3] != "0" {
		t.Errorf("snapshot recovery row = %v, want snapshot=yes records=0", last)
	}
}

func TestE19ReplicationShape(t *testing.T) {
	tab := E19Replication(90)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 replica counts:\n%s", len(tab.Rows), tab)
	}
	if joined := strings.Join(tab.Notes, " "); strings.Contains(joined, "failed") {
		t.Fatalf("an arm errored (kill, restart, or rejoin broke):\n%s", tab)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
		var errors int
		if _, err := fmt.Sscanf(row[5], "%d", &errors); err != nil {
			t.Fatalf("errors cell %q not numeric: %v", row[5], row)
		}
		if i == 0 && errors == 0 {
			// A lone replica has nothing to hide behind: the kill window
			// must surface as unanswered requests.
			t.Errorf("single-replica arm took a kill with zero errors: %v", row)
		}
		if i > 0 && errors != 0 {
			// Behind the router, surviving replicas must absorb the outage.
			t.Errorf("%s-replica arm dropped %d requests: %v", row[0], errors, row)
		}
		if !strings.Contains(row[len(row)-1], "snapshots") {
			t.Errorf("rejoin cell %q missing snapshot count: %v", row[len(row)-1], row)
		}
	}
}
