package turtle

import "testing"

// FuzzParse drives the Turtle lexer and parser with arbitrary documents.
// Invariants: no panic, no hang, and any graph the parser accepts must
// survive a write/reparse round trip with the same triple count (the
// writer and parser agree on the grammar).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"@prefix ex: <http://example.org/> .\nex:s ex:p ex:o .",
		"@prefix app: <http://grdf.org/app#> .\napp:s1 a app:ChemSite ; app:hasSiteName \"Plant\" .",
		"<http://a> <http://b> \"x\"@en, \"y\"^^<http://t> .",
		"[ <http://p> ( 1 2.5 \"three\" ) ] <http://q> true .",
		"@base <http://base/> .\n<rel> <p> <o> .",
		"# just a comment",
		"@prefix broken",
		"ex:s ex:p ex:o .", // undeclared prefix
		"\"unterminated",
		"\x00\x01\x02",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<14 {
			return // bound per-input work; length adds no parser states
		}
		g, err := ParseString(doc)
		if err != nil || g == nil || len(g.Triples()) == 0 {
			return
		}
		back, err := ParseString(Format(g, nil))
		if err != nil {
			t.Fatalf("round trip rejected our own output: %v\nsource: %q", err, doc)
		}
		if got, want := len(back.Triples()), len(g.Triples()); got != want {
			t.Fatalf("round trip kept %d of %d triples\nsource: %q", got, want, doc)
		}
	})
}
