package turtle

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parser parses Turtle documents into rdf.Graph values.
type Parser struct {
	lx       *lexer
	tok      token
	peeked   *token
	prefixes *rdf.Prefixes
	base     string
	graph    *rdf.Graph
	blankSeq int
}

// Parse parses a complete Turtle document. The returned prefix table includes
// both the caller-supplied defaults (may be nil) and the document's own
// @prefix declarations.
func Parse(doc string, defaults *rdf.Prefixes) (*rdf.Graph, *rdf.Prefixes, error) {
	p := &Parser{
		lx:       newLexer(doc),
		prefixes: rdf.NewPrefixes(),
		graph:    rdf.NewGraph(),
	}
	if defaults != nil {
		defaults.Each(func(prefix, ns string) { p.prefixes.Bind(prefix, ns) })
	}
	if err := p.run(); err != nil {
		return nil, nil, err
	}
	return p.graph, p.prefixes, nil
}

// ParseString parses a Turtle document with the common GRDF prefixes preloaded.
func ParseString(doc string) (*rdf.Graph, error) {
	g, _, err := Parse(doc, rdf.CommonPrefixes())
	return g, err
}

func (p *Parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) next() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *Parser) run() error {
	for {
		if err := p.next(); err != nil {
			return err
		}
		switch p.tok.kind {
		case tokEOF:
			return nil
		case tokPrefixDecl:
			if err := p.parsePrefixDecl(); err != nil {
				return err
			}
		case tokBaseDecl:
			if err := p.parseBaseDecl(); err != nil {
				return err
			}
		default:
			if err := p.parseStatement(); err != nil {
				return err
			}
		}
	}
}

func (p *Parser) parsePrefixDecl() error {
	sparqlForm := p.tok.text == "PREFIX"
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != tokPrefixedName || !strings.HasSuffix(p.tok.text, ":") {
		return p.errf("expected prefix label, got %q", p.tok.text)
	}
	prefix := strings.TrimSuffix(p.tok.text, ":")
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != tokIRIRef {
		return p.errf("expected namespace IRI, got %q", p.tok.text)
	}
	p.prefixes.Bind(prefix, p.resolve(p.tok.text))
	if !sparqlForm {
		if err := p.next(); err != nil {
			return err
		}
		if p.tok.kind != tokDot {
			return p.errf("expected '.' after @prefix declaration")
		}
	}
	return nil
}

func (p *Parser) parseBaseDecl() error {
	sparqlForm := p.tok.text == "BASE"
	if err := p.next(); err != nil {
		return err
	}
	if p.tok.kind != tokIRIRef {
		return p.errf("expected base IRI")
	}
	p.base = p.tok.text
	if !sparqlForm {
		if err := p.next(); err != nil {
			return err
		}
		if p.tok.kind != tokDot {
			return p.errf("expected '.' after @base declaration")
		}
	}
	return nil
}

// resolve applies the base IRI to relative references.
func (p *Parser) resolve(ref string) string {
	if ref == "" {
		return p.base
	}
	if strings.Contains(ref, "://") || strings.HasPrefix(ref, "urn:") || p.base == "" {
		return ref
	}
	if strings.HasPrefix(ref, "#") {
		return strings.TrimSuffix(p.base, "#") + ref
	}
	// crude relative resolution: append to base directory
	idx := strings.LastIndexByte(p.base, '/')
	if idx < 0 {
		return p.base + ref
	}
	return p.base[:idx+1] + ref
}

// parseStatement parses one triples statement (subject predicateObjectList '.').
// The current token is the first token of the subject.
func (p *Parser) parseStatement() error {
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	if err := p.next(); err != nil {
		return err
	}
	// A bare blank node property list may be followed directly by '.'.
	if p.tok.kind == tokDot {
		return nil
	}
	if err := p.parsePredicateObjectList(subj); err != nil {
		return err
	}
	if p.tok.kind != tokDot {
		return p.errf("expected '.' at end of statement, got %q", p.tok.text)
	}
	return nil
}

func (p *Parser) parseSubject() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef:
		return rdf.IRI(p.resolve(p.tok.text)), nil
	case tokPrefixedName:
		return p.expandPN(p.tok.text)
	case tokBlankNode:
		return rdf.BlankNode(p.tok.text), nil
	case tokLBracket:
		return p.parseBlankNodePropertyList()
	case tokLParen:
		return p.parseCollection()
	default:
		return nil, p.errf("bad subject token %q", p.tok.text)
	}
}

func (p *Parser) expandPN(qname string) (rdf.IRI, error) {
	iri, err := p.prefixes.Expand(qname)
	if err != nil {
		return "", p.errf("%v", err)
	}
	return iri, nil
}

// parsePredicateObjectList parses "verb objectList (';' (verb objectList)?)*".
// On entry the current token is the first verb token; on exit the current
// token is the one after the list (typically '.' or ']' ).
func (p *Parser) parsePredicateObjectList(subj rdf.Term) error {
	for {
		if p.tok.kind == tokSemicolon {
			// tolerate repeated/dangling semicolons
			if err := p.next(); err != nil {
				return err
			}
			continue
		}
		var pred rdf.Term
		switch p.tok.kind {
		case tokA:
			pred = rdf.RDFType
		case tokIRIRef:
			pred = rdf.IRI(p.resolve(p.tok.text))
		case tokPrefixedName:
			iri, err := p.expandPN(p.tok.text)
			if err != nil {
				return err
			}
			pred = iri
		default:
			return p.errf("bad predicate token %q", p.tok.text)
		}
		// object list
		for {
			if err := p.next(); err != nil {
				return err
			}
			obj, err := p.parseObject()
			if err != nil {
				return err
			}
			p.graph.Add(rdf.T(subj, pred, obj))
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.kind != tokComma {
				break
			}
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		// After ';' the list may end (before '.' or ']').
		nxt, err := p.peek()
		if err != nil {
			return err
		}
		if nxt.kind == tokDot || nxt.kind == tokRBracket {
			return p.next()
		}
		if err := p.next(); err != nil {
			return err
		}
	}
}

// parseObject parses the object whose first token is current.
func (p *Parser) parseObject() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef:
		return rdf.IRI(p.resolve(p.tok.text)), nil
	case tokPrefixedName:
		return p.expandPN(p.tok.text)
	case tokBlankNode:
		return rdf.BlankNode(p.tok.text), nil
	case tokLBracket:
		return p.parseBlankNodePropertyList()
	case tokLParen:
		return p.parseCollection()
	case tokBoolean:
		return rdf.NewBoolean(p.tok.text == "true"), nil
	case tokNumber:
		return numberLiteral(p.tok.text), nil
	case tokLiteral:
		val := p.tok.text
		nxt, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch nxt.kind {
		case tokLangTag:
			if err := p.next(); err != nil {
				return nil, err
			}
			return rdf.NewLangString(val, p.tok.text), nil
		case tokDoubleCaret:
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokIRIRef:
				return rdf.Literal{Value: val, Datatype: rdf.IRI(p.resolve(p.tok.text))}, nil
			case tokPrefixedName:
				dt, err := p.expandPN(p.tok.text)
				if err != nil {
					return nil, err
				}
				return rdf.Literal{Value: val, Datatype: dt}, nil
			default:
				return nil, p.errf("expected datatype IRI after ^^")
			}
		}
		return rdf.NewString(val), nil
	default:
		return nil, p.errf("bad object token %q", p.tok.text)
	}
}

// parseBlankNodePropertyList parses "[ predicateObjectList ]"; current token
// is '['. Returns the fresh blank node.
func (p *Parser) parseBlankNodePropertyList() (rdf.Term, error) {
	p.blankSeq++
	node := rdf.BlankNode(fmt.Sprintf("ttl%d", p.blankSeq))
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokRBracket { // anonymous node []
		return node, nil
	}
	if err := p.parsePredicateObjectList(node); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRBracket {
		return nil, p.errf("expected ']', got %q", p.tok.text)
	}
	return node, nil
}

// parseCollection parses "( object* )"; current token is '('.
func (p *Parser) parseCollection() (rdf.Term, error) {
	var items []rdf.Term
	for {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokRParen {
			break
		}
		obj, err := p.parseObject()
		if err != nil {
			return nil, err
		}
		items = append(items, obj)
	}
	return p.graph.List(items), nil
}

// numberLiteral classifies a Turtle numeric shorthand into the right XSD type.
func numberLiteral(text string) rdf.Literal {
	lower := strings.ToLower(text)
	switch {
	case strings.ContainsAny(lower, "e"):
		return rdf.Literal{Value: text, Datatype: rdf.XSDDouble}
	case strings.Contains(text, "."):
		return rdf.Literal{Value: text, Datatype: rdf.XSDDecimal}
	default:
		return rdf.Literal{Value: text, Datatype: rdf.XSDInteger}
	}
}
