package turtle

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func mustParse(t *testing.T, doc string) *rdf.Graph {
	t.Helper()
	g, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", doc, err)
	}
	return g
}

func TestParseSimpleTriple(t *testing.T) {
	g := mustParse(t, `<http://e/s> <http://e/p> <http://e/o> .`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParsePrefixesAndA(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
PREFIX ex2: <http://example2.org/>
ex:stream a grdf:Feature ;
    ex2:name "Trinity River" .
`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://example.org/stream"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Feature"))) {
		t.Errorf("rdf:type triple missing:\n%s", g)
	}
	if !g.Has(rdf.T(rdf.IRI("http://example.org/stream"), rdf.IRI("http://example2.org/name"), rdf.NewString("Trinity River"))) {
		t.Errorf("name triple missing:\n%s", g)
	}
}

func TestParseObjectAndPredicateLists(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:s ex:p ex:o1 , ex:o2 ;
     ex:q ex:o3 .
`
	g := mustParse(t, doc)
	if g.Len() != 3 {
		t.Fatalf("Len = %d:\n%s", g.Len(), g)
	}
}

func TestParseLiteralForms(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:s ex:str "short" ;
    ex:long """multi
line""" ;
    ex:single 'single' ;
    ex:lang "bonjour"@fr ;
    ex:typed "2008-04-07"^^xsd:date ;
    ex:int 42 ;
    ex:neg -3 ;
    ex:dec 3.14 ;
    ex:dbl 6.02e23 ;
    ex:bool true .
`
	g := mustParse(t, doc)
	s := rdf.IRI("http://e/s")
	cases := []struct {
		p string
		o rdf.Term
	}{
		{"str", rdf.NewString("short")},
		{"long", rdf.NewString("multi\nline")},
		{"single", rdf.NewString("single")},
		{"lang", rdf.NewLangString("bonjour", "fr")},
		{"typed", rdf.Literal{Value: "2008-04-07", Datatype: rdf.XSDDate}},
		{"int", rdf.Literal{Value: "42", Datatype: rdf.XSDInteger}},
		{"neg", rdf.Literal{Value: "-3", Datatype: rdf.XSDInteger}},
		{"dec", rdf.Literal{Value: "3.14", Datatype: rdf.XSDDecimal}},
		{"dbl", rdf.Literal{Value: "6.02e23", Datatype: rdf.XSDDouble}},
		{"bool", rdf.NewBoolean(true)},
	}
	for _, c := range cases {
		if !g.Has(rdf.T(s, rdf.IRI("http://e/"+c.p), c.o)) {
			t.Errorf("missing %s -> %s:\n%s", c.p, c.o, g)
		}
	}
}

func TestParseBlankNodePropertyList(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:site ex:bounds [ ex:min "0,0" ; ex:max "10,10" ] .
[] ex:standalone "yes" .
`
	g := mustParse(t, doc)
	bounds := g.Objects(rdf.IRI("http://e/site"), rdf.IRI("http://e/bounds"))
	if len(bounds) != 1 || bounds[0].Kind() != rdf.KindBlank {
		t.Fatalf("bounds = %v", bounds)
	}
	if v, ok := g.FirstObject(bounds[0], rdf.IRI("http://e/min")); !ok || !v.Equal(rdf.NewString("0,0")) {
		t.Errorf("nested property missing: %v", v)
	}
	if len(g.Match(nil, rdf.IRI("http://e/standalone"), nil)) != 1 {
		t.Error("standalone anonymous subject missing")
	}
}

func TestParseCollection(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:s ex:items ( ex:a "b" 3 ) .
ex:s ex:empty () .
`
	g := mustParse(t, doc)
	head, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI("http://e/items"))
	if !ok {
		t.Fatal("items missing")
	}
	items, err := g.ReadList(head)
	if err != nil || len(items) != 3 {
		t.Fatalf("ReadList = %v, %v", items, err)
	}
	if !items[0].Equal(rdf.IRI("http://e/a")) || !items[1].Equal(rdf.NewString("b")) {
		t.Errorf("items = %v", items)
	}
	if empty, ok := g.FirstObject(rdf.IRI("http://e/s"), rdf.IRI("http://e/empty")); !ok || !empty.Equal(rdf.RDFNil) {
		t.Errorf("empty list = %v", empty)
	}
}

func TestParseBase(t *testing.T) {
	doc := `
@base <http://base.org/data/> .
<item1> <p> <#frag> .
`
	g := mustParse(t, doc)
	if !g.Has(rdf.T(rdf.IRI("http://base.org/data/item1"), rdf.IRI("http://base.org/data/p"), rdf.IRI("http://base.org/data/#frag"))) {
		t.Errorf("base resolution wrong:\n%s", g)
	}
}

func TestParseComments(t *testing.T) {
	doc := `
# leading comment
@prefix ex: <http://e/> . # trailing
ex:s ex:p ex:o . # done
`
	g := mustParse(t, doc)
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> .`,             // missing object
		`<http://e/s> <http://e/p> <http://e/o>`,  // missing dot
		`ex:s ex:p ex:o .`,                        // unknown prefix (no defaults passed)
		`@prefix ex <http://e/> .`,                // missing colon
		`<http://e/s> <http://e/p> "unterminated`, // unterminated literal
		`<http://e/s> <http://e/p> "x"^^ .`,       // missing datatype
		`<http://e/s> <http://e/p> [ ex:p "v" .`,  // unterminated bnode list
		`"lit" <http://e/p> <http://e/o> .`,       // literal subject
	}
	for _, doc := range bad {
		if _, _, err := Parse(doc, nil); err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, _, err := Parse("\n\n  <http://e/s> <http://e/p> @@ .", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	te, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T: %v", err, err)
	}
	if te.Line != 3 {
		t.Errorf("Line = %d, want 3", te.Line)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.RDFType, rdf.IRI(rdf.AppNS+"ChemSite")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"hasSiteName"), rdf.NewString("North Texas Energy")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"hasSiteId"), rdf.NewString("004221")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.GRDFNS+"boundedBy"), rdf.BlankNode("env")),
		rdf.T(rdf.BlankNode("env"), rdf.IRI(rdf.GRDFNS+"coordinates"), rdf.NewString("1,2 3,4")),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"count"), rdf.NewInteger(7)),
		rdf.T(rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.RDFSLabel, rdf.NewLangString("site", "en")),
	)
	out := Format(g, nil)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	// Blank node labels may be renamed on reparse; compare sizes and the
	// ground (non-blank) triples.
	if back.Len() != g.Len() {
		t.Fatalf("round trip %d -> %d triples\n%s", g.Len(), back.Len(), out)
	}
	for _, tr := range g.Triples() {
		if tr.Subject.Kind() == rdf.KindBlank || tr.Object.Kind() == rdf.KindBlank {
			continue
		}
		if !back.Has(tr) {
			t.Errorf("lost triple %s\noutput:\n%s", tr, out)
		}
	}
}

func TestWriteUsesPrefixesAndA(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI(rdf.GRDFNS+"x"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Feature")),
	)
	out := Format(g, nil)
	if !strings.Contains(out, "@prefix grdf:") {
		t.Errorf("missing grdf prefix decl:\n%s", out)
	}
	if strings.Contains(out, "@prefix seconto:") {
		t.Errorf("unused prefix declared:\n%s", out)
	}
	if !strings.Contains(out, "grdf:x a grdf:Feature .") {
		t.Errorf("expected 'a' shorthand:\n%s", out)
	}
}

func TestWriteDeterministic(t *testing.T) {
	mk := func(order []int) string {
		g := rdf.NewGraph()
		trs := []rdf.Triple{
			rdf.T(rdf.IRI("http://e/b"), rdf.IRI("http://e/p"), rdf.NewString("1")),
			rdf.T(rdf.IRI("http://e/a"), rdf.IRI("http://e/q"), rdf.NewString("2")),
			rdf.T(rdf.IRI("http://e/a"), rdf.IRI("http://e/p"), rdf.NewString("3")),
		}
		for _, i := range order {
			g.Add(trs[i])
		}
		return Format(g, nil)
	}
	if mk([]int{0, 1, 2}) != mk([]int{2, 0, 1}) {
		t.Error("serializer output depends on insertion order")
	}
}

// Property: round-trip preserves ground triples for arbitrary string values.
func TestQuickRoundTripStrings(t *testing.T) {
	f := func(vals []string) bool {
		g := rdf.NewGraph()
		for i, v := range vals {
			if i >= 10 {
				break
			}
			g.Add(rdf.T(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.NewString(v)))
		}
		back, err := ParseString(Format(g, nil))
		return err == nil && back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsePaperStylePolicy(t *testing.T) {
	// The List 8 policy expressed in Turtle.
	doc := `
seconto:MainRep seconto:hasPolicy seconto:MainRepPolicy1 .
seconto:MainRepPolicy1 a seconto:Policy ;
    seconto:hasAction seconto:View ;
    seconto:hasCondition seconto:CondSites ;
    seconto:hasPolicyDecision seconto:Permit ;
    seconto:hasResource app:ChemSite .
seconto:CondSites seconto:hasPropertyAccess grdf:boundedBy .
`
	g := mustParse(t, doc)
	if g.Len() != 7 {
		t.Fatalf("Len = %d:\n%s", g.Len(), g)
	}
	pol := rdf.IRI(rdf.SecOntoNS + "MainRepPolicy1")
	if v, ok := g.FirstObject(pol, rdf.IRI(rdf.SecOntoNS+"hasPolicyDecision")); !ok || !v.Equal(rdf.IRI(rdf.SecOntoNS+"Permit")) {
		t.Errorf("decision = %v", v)
	}
}

func TestStringEscapesAndUnicode(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:s ex:esc "tab\tnl\ncr\rquote\"bs\\bell\b ff\f sq\'" ;
    ex:uni "café \U0001F30A" ;
    ex:long '''triple ' quote''' ;
    ex:iriesc <http://e/café> .
`
	g := mustParse(t, doc)
	s := rdf.IRI("http://e/s")
	if v, _ := g.FirstObject(s, rdf.IRI("http://e/esc")); !v.Equal(rdf.NewString("tab\tnl\ncr\rquote\"bs\\bell\b ff\f sq'")) {
		t.Errorf("esc = %v", v)
	}
	if v, _ := g.FirstObject(s, rdf.IRI("http://e/uni")); !v.Equal(rdf.NewString("café 🌊")) {
		t.Errorf("uni = %v", v)
	}
	if v, _ := g.FirstObject(s, rdf.IRI("http://e/long")); !v.Equal(rdf.NewString("triple ' quote")) {
		t.Errorf("long = %v", v)
	}
	if v, _ := g.FirstObject(s, rdf.IRI("http://e/iriesc")); !v.Equal(rdf.IRI("http://e/café")) {
		t.Errorf("iriesc = %v", v)
	}
}

func TestLexErrorCases(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> "\q" .`,                    // unknown escape
		`<http://e/s> <http://e/p> "\u12" .`,                  // truncated unicode
		`<http://e/s> <http://e/p> "no` + "\n" + `newline" .`, // raw newline in short string
		`<http://e/s> <http://e/p> @ .`,                       // empty lang tag
		`<http://e/s> ^ <http://e/o> .`,                       // stray caret
		`<http://e/s> <http://e/p> _:" .`,                     // bad blank
	}
	for _, doc := range bad {
		if _, _, err := Parse(doc, nil); err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
}

func TestWriteInlineBlankNodes(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/site"), rdf.IRI(rdf.GRDFNS+"boundedBy"), rdf.BlankNode("env")),
		rdf.T(rdf.BlankNode("env"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Envelope")),
		rdf.T(rdf.BlankNode("env"), rdf.IRI(rdf.GRDFNS+"lowerCorner"), rdf.NewString("0,0")),
	)
	out := Format(g, nil)
	if !strings.Contains(out, "[") || strings.Contains(out, "_:env") {
		t.Errorf("blank node not inlined:\n%s", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if back.Len() != g.Len() {
		t.Errorf("round trip %d -> %d:\n%s", g.Len(), back.Len(), out)
	}
}

func TestWriteSharedBlankNodeNotInlined(t *testing.T) {
	// A blank node referenced twice must keep its label.
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/a"), rdf.IRI("http://e/p"), rdf.BlankNode("shared")),
		rdf.T(rdf.IRI("http://e/b"), rdf.IRI("http://e/p"), rdf.BlankNode("shared")),
		rdf.T(rdf.BlankNode("shared"), rdf.IRI("http://e/v"), rdf.NewString("x")),
	)
	out := Format(g, nil)
	if strings.Contains(out, "[") {
		t.Errorf("shared blank node inlined:\n%s", out)
	}
	back, err := ParseString(out)
	if err != nil || back.Len() != g.Len() {
		t.Errorf("round trip: %v, %d triples\n%s", err, back.Len(), out)
	}
}

func TestWriteCyclicBlankNodesNotInlined(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.BlankNode("x"), rdf.IRI("http://e/p"), rdf.BlankNode("y")),
		rdf.T(rdf.BlankNode("y"), rdf.IRI("http://e/p"), rdf.BlankNode("x")),
	)
	out := Format(g, nil)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("cyclic output unparseable: %v\n%s", err, out)
	}
	if back.Len() != 2 {
		t.Errorf("cycle lost: %d triples\n%s", back.Len(), out)
	}
}

func TestWriteNestedInline(t *testing.T) {
	// site -> [ geometry -> [ ring ] ] nests two levels.
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("http://e/s"), rdf.IRI(rdf.GRDFNS+"hasGeometry"), rdf.BlankNode("g1")),
		rdf.T(rdf.BlankNode("g1"), rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Polygon")),
		rdf.T(rdf.BlankNode("g1"), rdf.IRI(rdf.GRDFNS+"exterior"), rdf.BlankNode("r1")),
		rdf.T(rdf.BlankNode("r1"), rdf.IRI(rdf.GRDFNS+"coordinates"), rdf.NewString("0,0 1,0 1,1 0,0")),
	)
	out := Format(g, nil)
	if strings.Count(out, "[") != 2 {
		t.Errorf("nesting depth wrong:\n%s", out)
	}
	back, err := ParseString(out)
	if err != nil || back.Len() != g.Len() {
		t.Errorf("round trip: %v, %d\n%s", err, back.Len(), out)
	}
}
