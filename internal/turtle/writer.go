package turtle

import (
	"bufio"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Write serializes g as Turtle using the given prefixes (nil means the common
// GRDF prefix set). Triples are grouped by subject with predicate-object
// lists; blank nodes referenced exactly once are rendered inline as
// [ … ] property lists (the idiomatic Turtle shape for envelopes and
// geometry nodes); subjects, predicates and objects are emitted in sorted
// order so the output is deterministic.
func Write(w io.Writer, g *rdf.Graph, prefixes *rdf.Prefixes) error {
	if prefixes == nil {
		prefixes = rdf.CommonPrefixes()
	}
	bw := bufio.NewWriter(w)

	// Only emit prefix declarations actually used by the graph.
	used := usedPrefixes(g, prefixes)
	prefixes.Each(func(prefix, ns string) {
		if used[prefix] {
			bw.WriteString("@prefix " + prefix + ": <" + ns + "> .\n")
		}
	})
	if len(used) > 0 {
		bw.WriteByte('\n')
	}

	wr := &writer{g: g, prefixes: prefixes, bySubject: map[rdf.Term][]rdf.Triple{}}
	var subjects []rdf.Term
	for _, t := range g.Triples() {
		if _, ok := wr.bySubject[t.Subject]; !ok {
			subjects = append(subjects, t.Subject)
		}
		wr.bySubject[t.Subject] = append(wr.bySubject[t.Subject], t)
	}
	wr.computeInlineable()

	sort.Slice(subjects, func(i, j int) bool {
		return subjects[i].String() < subjects[j].String()
	})
	for _, s := range subjects {
		if b, ok := s.(rdf.BlankNode); ok && wr.inlineable[b] {
			continue // rendered at its reference point
		}
		bw.WriteString(wr.renderSubjectBlock(s, ""))
		bw.WriteString(" .\n")
	}
	return bw.Flush()
}

// writer carries the per-document rendering state.
type writer struct {
	g          *rdf.Graph
	prefixes   *rdf.Prefixes
	bySubject  map[rdf.Term][]rdf.Triple
	inlineable map[rdf.BlankNode]bool
}

// computeInlineable marks blank nodes that are referenced exactly once as an
// object, have at least one property, and do not participate in a blank-node
// reference cycle.
func (w *writer) computeInlineable() {
	objRefs := map[rdf.BlankNode]int{}
	for _, t := range w.g.Triples() {
		if b, ok := t.Object.(rdf.BlankNode); ok {
			objRefs[b]++
		}
	}
	w.inlineable = map[rdf.BlankNode]bool{}
	for b, n := range objRefs {
		if n == 1 && len(w.bySubject[b]) > 0 {
			w.inlineable[b] = true
		}
	}
	// Break cycles: a blank node reachable from itself through inlineable
	// links cannot be inlined.
	for b := range w.inlineable {
		if w.reachesSelf(b, b, map[rdf.BlankNode]bool{}) {
			w.inlineable[b] = false
		}
	}
}

func (w *writer) reachesSelf(start, cur rdf.BlankNode, visited map[rdf.BlankNode]bool) bool {
	if visited[cur] {
		return false
	}
	visited[cur] = true
	for _, t := range w.bySubject[cur] {
		if b, ok := t.Object.(rdf.BlankNode); ok && w.inlineable[b] {
			if b == start || w.reachesSelf(start, b, visited) {
				return true
			}
		}
	}
	return false
}

// renderSubjectBlock renders "subject pred obj ; …" (without the final dot)
// at the given indent.
func (w *writer) renderSubjectBlock(s rdf.Term, indent string) string {
	var sb strings.Builder
	sb.WriteString(w.renderTerm(s, indent))
	sb.WriteString(w.renderPropertyList(s, indent))
	return sb.String()
}

// renderPropertyList renders " p1 o1, o2 ;\n    p2 o3" for the subject.
func (w *writer) renderPropertyList(s rdf.Term, indent string) string {
	ts := w.bySubject[s]
	byPred := map[rdf.Term][]rdf.Term{}
	var preds []rdf.Term
	for _, t := range ts {
		if _, ok := byPred[t.Predicate]; !ok {
			preds = append(preds, t.Predicate)
		}
		byPred[t.Predicate] = append(byPred[t.Predicate], t.Object)
	}
	sort.Slice(preds, func(i, j int) bool {
		// rdf:type first, then alphabetical — conventional Turtle style.
		pi, pj := preds[i], preds[j]
		if pi.Equal(rdf.RDFType) != pj.Equal(rdf.RDFType) {
			return pi.Equal(rdf.RDFType)
		}
		return pi.String() < pj.String()
	})

	var sb strings.Builder
	for i, pred := range preds {
		if i == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(" ;\n" + indent + "    ")
		}
		if pred.Equal(rdf.RDFType) {
			sb.WriteString("a")
		} else {
			sb.WriteString(w.renderTerm(pred, indent))
		}
		objs := byPred[pred]
		sort.Slice(objs, func(i, j int) bool { return objs[i].String() < objs[j].String() })
		for j, o := range objs {
			if j == 0 {
				sb.WriteByte(' ')
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(w.renderObject(o, indent))
		}
	}
	return sb.String()
}

// renderObject renders an object term, inlining single-reference blank nodes.
func (w *writer) renderObject(o rdf.Term, indent string) string {
	if b, ok := o.(rdf.BlankNode); ok && w.inlineable[b] {
		inner := indent + "    "
		return "[" + w.renderPropertyList(b, inner) + " ]"
	}
	return w.renderTerm(o, indent)
}

func (w *writer) renderTerm(t rdf.Term, _ string) string {
	switch v := t.(type) {
	case rdf.IRI:
		return w.prefixes.Compact(v)
	case rdf.BlankNode:
		return v.String()
	case rdf.Literal:
		if v.Lang != "" || v.Datatype == "" || v.Datatype == rdf.XSDString {
			return v.String()
		}
		return `"` + rdf.EscapeLiteral(v.Value) + `"^^` + w.prefixes.Compact(v.Datatype)
	default:
		return t.String()
	}
}

// Format renders the graph as a Turtle string.
func Format(g *rdf.Graph, prefixes *rdf.Prefixes) string {
	var sb strings.Builder
	_ = Write(&sb, g, prefixes)
	return sb.String()
}

// usedPrefixes returns the set of prefix labels the serializer will actually
// rely on, so Write only declares those.
func usedPrefixes(g *rdf.Graph, prefixes *rdf.Prefixes) map[string]bool {
	used := map[string]bool{}
	note := func(iri rdf.IRI) {
		if c := prefixes.Compact(iri); !strings.HasPrefix(c, "<") {
			if idx := strings.IndexByte(c, ':'); idx >= 0 {
				used[c[:idx]] = true
			}
		}
	}
	for _, t := range g.Triples() {
		for _, term := range []rdf.Term{t.Subject, t.Predicate, t.Object} {
			switch v := term.(type) {
			case rdf.IRI:
				note(v)
			case rdf.Literal:
				if v.Datatype != "" && v.Datatype != rdf.XSDString && v.Lang == "" {
					note(v.Datatype)
				}
			}
		}
	}
	return used
}
