// Package turtle implements a Turtle (Terse RDF Triple Language) parser and a
// pretty serializer. Turtle is the human-facing syntax used throughout the
// repository for the GRDF ontology files, example data and test fixtures.
//
// Supported syntax: @prefix/@base (and SPARQL-style PREFIX/BASE), prefixed
// names, the 'a' keyword, object lists (','), predicate-object lists (';'),
// blank node property lists '[...]', collections '(...)', all literal forms
// (short/long, single/double quoted, language tags, datatypes) and the
// numeric and boolean shorthands.
package turtle

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF          tokenKind = iota
	tokIRIRef                 // <...>
	tokPrefixedName           // ex:local or ex: or :local
	tokBlankNode              // _:label
	tokLiteral                // string literal (value carried unescaped)
	tokLangTag                // @en
	tokDoubleCaret            // ^^
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokA          // keyword 'a'
	tokPrefixDecl // @prefix or PREFIX
	tokBaseDecl   // @base or BASE
	tokNumber     // integer/decimal/double shorthand
	tokBoolean    // true/false
	tokAnon       // [] with no content handled by parser via brackets
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	return fmt.Sprintf("%v(%q)@%d:%d", t.kind, t.text, t.line, t.col)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a Turtle syntax error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("turtle: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	c := l.src[l.pos]
	switch c {
	case '<':
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{}, l.errf("unterminated IRI reference")
		}
		text := l.src[l.pos+1 : l.pos+end]
		l.advance(end + 1)
		return mk(tokIRIRef, unescapeUnicode(text)), nil
	case '.':
		// Distinguish statement-terminating dot from a leading decimal like .5
		if isDigit(l.peekAt(1)) {
			return l.lexNumber(mk)
		}
		l.advance(1)
		return mk(tokDot, "."), nil
	case ';':
		l.advance(1)
		return mk(tokSemicolon, ";"), nil
	case ',':
		l.advance(1)
		return mk(tokComma, ","), nil
	case '[':
		l.advance(1)
		return mk(tokLBracket, "["), nil
	case ']':
		l.advance(1)
		return mk(tokRBracket, "]"), nil
	case '(':
		l.advance(1)
		return mk(tokLParen, "("), nil
	case ')':
		l.advance(1)
		return mk(tokRParen, ")"), nil
	case '^':
		if l.peekAt(1) == '^' {
			l.advance(2)
			return mk(tokDoubleCaret, "^^"), nil
		}
		return token{}, l.errf("stray '^'")
	case '@':
		// @prefix, @base or language tag
		word := l.word(1)
		switch strings.ToLower(word) {
		case "prefix":
			l.advance(1 + len(word))
			return mk(tokPrefixDecl, "@prefix"), nil
		case "base":
			l.advance(1 + len(word))
			return mk(tokBaseDecl, "@base"), nil
		default:
			// language tag: letters and hyphens
			end := l.pos + 1
			for end < len(l.src) && (isAlpha(l.src[end]) || l.src[end] == '-' || isDigit(l.src[end])) {
				end++
			}
			if end == l.pos+1 {
				return token{}, l.errf("empty language tag")
			}
			tag := l.src[l.pos+1 : end]
			l.advance(end - l.pos)
			return mk(tokLangTag, tag), nil
		}
	case '"', '\'':
		return l.lexString(mk)
	case '_':
		if l.peekAt(1) != ':' {
			return token{}, l.errf("expected ':' after '_'")
		}
		end := l.pos + 2
		for end < len(l.src) && isNameChar(l.src[end]) {
			end++
		}
		label := l.src[l.pos+2 : end]
		if label == "" {
			return token{}, l.errf("empty blank node label")
		}
		l.advance(end - l.pos)
		return mk(tokBlankNode, label), nil
	case '+', '-':
		return l.lexNumber(mk)
	}
	if isDigit(c) {
		return l.lexNumber(mk)
	}
	// bare word: 'a', true/false, PREFIX/BASE, or prefixed name
	word := l.word(0)
	if word == "" {
		return token{}, l.errf("unexpected character %q", c)
	}
	// Check for prefixed name (contains ':').
	if idx := strings.IndexByte(word, ':'); idx >= 0 {
		l.advance(len(word))
		return mk(tokPrefixedName, word), nil
	}
	switch word {
	case "a":
		l.advance(1)
		return mk(tokA, "a"), nil
	case "true", "false":
		l.advance(len(word))
		return mk(tokBoolean, word), nil
	}
	switch strings.ToUpper(word) {
	case "PREFIX":
		l.advance(len(word))
		return mk(tokPrefixDecl, "PREFIX"), nil
	case "BASE":
		l.advance(len(word))
		return mk(tokBaseDecl, "BASE"), nil
	}
	// A bare prefix label before ':' split by whitespace is invalid Turtle;
	// treat unknown words as errors.
	return token{}, l.errf("unexpected token %q", word)
}

// word scans a run of name characters starting at offset off from pos,
// including ':' so prefixed names come out whole. Does not advance.
func (l *lexer) word(off int) string {
	start := l.pos + off
	end := start
	for end < len(l.src) {
		c := l.src[end]
		if isNameChar(c) || c == ':' {
			end++
			continue
		}
		// Allow non-ASCII letters in names.
		if c >= utf8.RuneSelf {
			r, size := utf8.DecodeRuneInString(l.src[end:])
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				end += size
				continue
			}
		}
		break
	}
	// Trailing dots belong to the statement terminator, not the name.
	w := l.src[start:end]
	for strings.HasSuffix(w, ".") {
		w = w[:len(w)-1]
	}
	return w
}

func (l *lexer) lexNumber(mk func(tokenKind, string) token) (token, error) {
	end := l.pos
	if end < len(l.src) && (l.src[end] == '+' || l.src[end] == '-') {
		end++
	}
	digits := 0
	for end < len(l.src) && isDigit(l.src[end]) {
		end++
		digits++
	}
	// Fraction: only if a digit follows the dot (otherwise the dot terminates
	// the statement).
	if end < len(l.src) && l.src[end] == '.' && end+1 < len(l.src) && isDigit(l.src[end+1]) {
		end++
		for end < len(l.src) && isDigit(l.src[end]) {
			end++
			digits++
		}
	}
	if end < len(l.src) && (l.src[end] == 'e' || l.src[end] == 'E') {
		mark := end
		end++
		if end < len(l.src) && (l.src[end] == '+' || l.src[end] == '-') {
			end++
		}
		expDigits := 0
		for end < len(l.src) && isDigit(l.src[end]) {
			end++
			expDigits++
		}
		if expDigits == 0 {
			end = mark
		}
	}
	if digits == 0 {
		return token{}, l.errf("malformed number")
	}
	text := l.src[l.pos:end]
	l.advance(end - l.pos)
	return mk(tokNumber, text), nil
}

func (l *lexer) lexString(mk func(tokenKind, string) token) (token, error) {
	quote := l.src[l.pos]
	long := false
	if l.peekAt(1) == quote && l.peekAt(2) == quote {
		long = true
		l.advance(3)
	} else {
		l.advance(1)
	}
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if !long {
				l.advance(1)
				return mk(tokLiteral, sb.String()), nil
			}
			if l.peekAt(1) == quote && l.peekAt(2) == quote {
				l.advance(3)
				return mk(tokLiteral, sb.String()), nil
			}
			sb.WriteByte(c)
			l.advance(1)
			continue
		}
		if c == '\\' {
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("dangling escape")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 't':
				sb.WriteByte('\t')
				l.advance(2)
			case 'n':
				sb.WriteByte('\n')
				l.advance(2)
			case 'r':
				sb.WriteByte('\r')
				l.advance(2)
			case 'b':
				sb.WriteByte('\b')
				l.advance(2)
			case 'f':
				sb.WriteByte('\f')
				l.advance(2)
			case '"', '\'', '\\':
				sb.WriteByte(esc)
				l.advance(2)
			case 'u', 'U':
				width := 4
				if esc == 'U' {
					width = 8
				}
				if l.pos+2+width > len(l.src) {
					return token{}, l.errf("truncated unicode escape")
				}
				var cp rune
				if _, err := fmt.Sscanf(l.src[l.pos+2:l.pos+2+width], "%x", &cp); err != nil {
					return token{}, l.errf("bad unicode escape")
				}
				sb.WriteRune(cp)
				l.advance(2 + width)
			default:
				return token{}, l.errf("unknown escape \\%c", esc)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return token{}, l.errf("newline in short string literal")
		}
		sb.WriteByte(c)
		l.advance(1)
	}
	return token{}, l.errf("unterminated string literal")
}

func unescapeUnicode(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
			width := 4
			if s[i+1] == 'U' {
				width = 8
			}
			if i+2+width <= len(s) {
				var cp rune
				if _, err := fmt.Sscanf(s[i+2:i+2+width], "%x", &cp); err == nil {
					sb.WriteRune(cp)
					i += 2 + width
					continue
				}
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isNameChar(c byte) bool {
	return isAlpha(c) || isDigit(c) || c == '_' || c == '-' || c == '.' || c == '%' || c >= utf8.RuneSelf
}
