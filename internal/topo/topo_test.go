package topo

import (
	"testing"

	"repro/internal/geom"
)

// buildSquareMesh constructs a 2-face planar mesh:
//
//	n1 --e1--> n2
//	 ^          |
//	 e4         e2       f1 = e1,e2,e3,e4 (left square via diagonal? no: square)
//	 |          v
//	n4 <--e3-- n3
//
// plus diagonal e5: n1->n3 splitting into two triangular faces.
func buildSquareMesh(t *testing.T) *Topology {
	t.Helper()
	tp := New()
	for _, n := range []ID{"n1", "n2", "n3", "n4"} {
		if err := tp.AddNode(Node{ID: n}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []Edge{
		{ID: "e1", Start: "n1", End: "n2"},
		{ID: "e2", Start: "n2", End: "n3"},
		{ID: "e3", Start: "n3", End: "n4"},
		{ID: "e4", Start: "n4", End: "n1"},
		{ID: "e5", Start: "n1", End: "n3"},
	}
	for _, e := range edges {
		if err := tp.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	// triangle n1,n2,n3 via e1,e2 then back along e5 reversed
	if err := tp.AddFace(Face{ID: "f1", Boundary: []DirectedEdge{
		{Edge: "e1", O: Positive}, {Edge: "e2", O: Positive}, {Edge: "e5", O: Negative},
	}}); err != nil {
		t.Fatal(err)
	}
	// triangle n1,n3,n4 via e5 then e3,e4
	if err := tp.AddFace(Face{ID: "f2", Boundary: []DirectedEdge{
		{Edge: "e5", O: Positive}, {Edge: "e3", O: Positive}, {Edge: "e4", O: Positive},
	}}); err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestAddValidation(t *testing.T) {
	tp := New()
	if err := tp.AddNode(Node{}); err == nil {
		t.Error("empty node ID accepted")
	}
	if err := tp.AddNode(Node{ID: "n1"}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddNode(Node{ID: "n1"}); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := tp.AddEdge(Edge{ID: "e1", Start: "n1", End: "missing"}); err == nil {
		t.Error("edge with missing endpoint accepted")
	}
	tp.AddNode(Node{ID: "n2"})
	if err := tp.AddEdge(Edge{ID: "e1", Start: "n1", End: "n2"}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEdge(Edge{ID: "e1", Start: "n1", End: "n2"}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestFaceBoundaryValidation(t *testing.T) {
	tp := New()
	for _, n := range []ID{"a", "b", "c"} {
		tp.AddNode(Node{ID: n})
	}
	tp.AddEdge(Edge{ID: "ab", Start: "a", End: "b"})
	tp.AddEdge(Edge{ID: "bc", Start: "b", End: "c"})
	tp.AddEdge(Edge{ID: "ca", Start: "c", End: "a"})

	if err := tp.AddFace(Face{ID: "empty"}); err == nil {
		t.Error("empty boundary accepted (List 5 minCardinality 1)")
	}
	// broken chain
	if err := tp.AddFace(Face{ID: "broken", Boundary: []DirectedEdge{
		{Edge: "ab", O: Positive}, {Edge: "ca", O: Positive},
	}}); err == nil {
		t.Error("broken boundary chain accepted")
	}
	// unclosed
	if err := tp.AddFace(Face{ID: "open", Boundary: []DirectedEdge{
		{Edge: "ab", O: Positive}, {Edge: "bc", O: Positive},
	}}); err == nil {
		t.Error("unclosed boundary accepted")
	}
	// proper triangle
	if err := tp.AddFace(Face{ID: "tri", Boundary: []DirectedEdge{
		{Edge: "ab", O: Positive}, {Edge: "bc", O: Positive}, {Edge: "ca", O: Positive},
	}}); err != nil {
		t.Errorf("valid face rejected: %v", err)
	}
	// reversed traversal using negative orientations
	if err := tp.AddFace(Face{ID: "tri-rev", Boundary: []DirectedEdge{
		{Edge: "ca", O: Negative}, {Edge: "bc", O: Negative}, {Edge: "ab", O: Negative},
	}}); err != nil {
		t.Errorf("reversed face rejected: %v", err)
	}
}

func TestConnectivityQueries(t *testing.T) {
	tp := buildSquareMesh(t)
	if got := tp.EdgesAtNode("n1"); len(got) != 3 { // e1, e4, e5
		t.Errorf("EdgesAtNode(n1) = %v", got)
	}
	if got := tp.Degree("n1"); got != 3 {
		t.Errorf("Degree(n1) = %d", got)
	}
	if got := tp.FacesOfEdge("e5"); len(got) != 2 {
		t.Errorf("FacesOfEdge(e5) = %v", got)
	}
	if got := tp.AdjacentFaces("f1"); len(got) != 1 || got[0] != "f2" {
		t.Errorf("AdjacentFaces(f1) = %v", got)
	}
	s, e, ok := tp.BoundaryNodes("e1")
	if !ok || s != "n1" || e != "n2" {
		t.Errorf("BoundaryNodes = %s %s %t", s, e, ok)
	}
	if _, _, ok := tp.BoundaryNodes("nope"); ok {
		t.Error("BoundaryNodes on missing edge")
	}
}

func TestEulerCharacteristic(t *testing.T) {
	tp := buildSquareMesh(t)
	// V=4, E=5, F=2 bounded faces; with the unbounded face Euler gives 2,
	// so V-E+F over bounded faces must equal 1.
	if chi := tp.EulerCharacteristic(); chi != 1 {
		t.Errorf("EulerCharacteristic = %d, want 1", chi)
	}
	n, e, f, s := tp.Counts()
	if n != 4 || e != 5 || f != 2 || s != 0 {
		t.Errorf("Counts = %d %d %d %d", n, e, f, s)
	}
}

func TestSolidFaceCardinality(t *testing.T) {
	tp := New()
	tp.AddNode(Node{ID: "n"})
	tp.AddEdge(Edge{ID: "loop", Start: "n", End: "n"})
	if err := tp.AddFace(Face{ID: "f", Boundary: []DirectedEdge{{Edge: "loop", O: Positive}}}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSolid(TopoSolid{ID: "s1", Boundary: []ID{"f"}}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSolid(TopoSolid{ID: "s2", Boundary: []ID{"f"}}); err != nil {
		t.Fatal(err)
	}
	// Third solid on the same face violates List 5's maxCardinality 2.
	if err := tp.AddSolid(TopoSolid{ID: "s3", Boundary: []ID{"f"}}); err == nil {
		t.Error("face bounding 3 solids accepted")
	}
	if errs := tp.Validate(); len(errs) != 0 {
		t.Errorf("Validate = %v", errs)
	}
}

func TestCurveValidation(t *testing.T) {
	tp := buildSquareMesh(t)
	if err := tp.AddCurve(TopoCurve{ID: "c1", Edges: []DirectedEdge{
		{Edge: "e1", O: Positive}, {Edge: "e2", O: Positive},
	}}); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	if err := tp.AddCurve(TopoCurve{ID: "c2", Edges: []DirectedEdge{
		{Edge: "e1", O: Positive}, {Edge: "e3", O: Positive},
	}}); err == nil {
		t.Error("discontiguous curve accepted")
	}
	if err := tp.AddCurve(TopoCurve{ID: "c3", Edges: []DirectedEdge{
		{Edge: "e2", O: Negative}, {Edge: "e1", O: Negative},
	}}); err != nil {
		t.Errorf("reversed curve rejected: %v", err)
	}
}

func TestSurfaceConnectivity(t *testing.T) {
	tp := buildSquareMesh(t)
	if err := tp.AddSurface(TopoSurface{ID: "s1", Faces: []ID{"f1", "f2"}}); err != nil {
		t.Errorf("connected surface rejected: %v", err)
	}
	// add a disconnected face
	tp.AddNode(Node{ID: "z"})
	tp.AddEdge(Edge{ID: "zz", Start: "z", End: "z"})
	tp.AddFace(Face{ID: "fz", Boundary: []DirectedEdge{{Edge: "zz", O: Positive}}})
	if err := tp.AddSurface(TopoSurface{ID: "s2", Faces: []ID{"f1", "fz"}}); err == nil {
		t.Error("disconnected surface accepted")
	}
}

func TestVolumeAndComplex(t *testing.T) {
	tp := buildSquareMesh(t)
	tp.AddSolid(TopoSolid{ID: "sol", Boundary: []ID{"f1", "f2"}})
	if err := tp.AddVolume(TopoVolume{ID: "v1", Solids: []ID{"sol"}}); err != nil {
		t.Errorf("volume rejected: %v", err)
	}
	if err := tp.AddVolume(TopoVolume{ID: "v2", Solids: []ID{"missing"}}); err == nil {
		t.Error("volume with missing solid accepted")
	}
	if err := tp.AddComplex(TopoComplex{ID: "cx1", Dimension: 2,
		Primitives: []ID{"n1", "e1", "f1"}}); err != nil {
		t.Errorf("complex rejected: %v", err)
	}
	// primitive of higher dimension than complex
	if err := tp.AddComplex(TopoComplex{ID: "cx2", Dimension: 1,
		Primitives: []ID{"f1"}}); err == nil {
		t.Error("complex containing higher-dim primitive accepted")
	}
	// sub-complex must have strictly lesser dimension
	if err := tp.AddComplex(TopoComplex{ID: "cx3", Dimension: 2,
		SubComplexes: []ID{"cx1"}}); err == nil {
		t.Error("equal-dimension sub-complex accepted")
	}
	if err := tp.AddComplex(TopoComplex{ID: "cx4", Dimension: 3,
		SubComplexes: []ID{"cx1"}}); err != nil {
		t.Errorf("maximal complex rejected: %v", err)
	}
}

func TestIsolatedNodeCodimension(t *testing.T) {
	tp := buildSquareMesh(t)
	if err := tp.AddNode(Node{ID: "iso", IsolatedIn: "f1"}); err != nil {
		t.Fatal(err)
	}
	if errs := tp.Validate(); len(errs) != 0 {
		t.Errorf("Validate = %v", errs)
	}
	tp.AddNode(Node{ID: "bad", IsolatedIn: "noface"})
	if errs := tp.Validate(); len(errs) != 1 {
		t.Errorf("Validate = %v", errs)
	}
}

// --- realization -------------------------------------------------------------

func realizeSquare(t *testing.T, tp *Topology) *Realization {
	t.Helper()
	r := NewRealization(tp)
	pts := map[ID]geom.Point{
		"n1": geom.NewPoint(0, 1), "n2": geom.NewPoint(1, 1),
		"n3": geom.NewPoint(1, 0), "n4": geom.NewPoint(0, 0),
	}
	for id, p := range pts {
		if err := r.RealizeNode(id, p); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(a, b geom.Point) geom.LineString {
		l, _ := geom.NewLineString([]geom.Coord{a.C, b.C})
		return l
	}
	for _, e := range []struct {
		id   ID
		a, b ID
	}{
		{"e1", "n1", "n2"}, {"e2", "n2", "n3"}, {"e3", "n3", "n4"},
		{"e4", "n4", "n1"}, {"e5", "n1", "n3"},
	} {
		if err := r.RealizeEdge(e.id, mk(pts[e.a], pts[e.b])); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRealizationEndpointsAgree(t *testing.T) {
	tp := buildSquareMesh(t)
	r := NewRealization(tp)
	r.RealizeNode("n1", geom.NewPoint(0, 1))
	r.RealizeNode("n2", geom.NewPoint(1, 1))
	wrong, _ := geom.NewLineString([]geom.Coord{{X: 5, Y: 5}, {X: 6, Y: 6}})
	if err := r.RealizeEdge("e1", wrong); err == nil {
		t.Error("edge realization disagreeing with node realization accepted")
	}
	if err := r.RealizeEdge("nope", wrong); err == nil {
		t.Error("unknown edge accepted")
	}
	if err := r.RealizeNode("nope", geom.NewPoint(0, 0)); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestRealizeTopoCurve(t *testing.T) {
	tp := buildSquareMesh(t)
	r := realizeSquare(t, tp)
	tp.AddCurve(TopoCurve{ID: "perimeter", Edges: []DirectedEdge{
		{Edge: "e1", O: Positive}, {Edge: "e2", O: Positive},
		{Edge: "e3", O: Positive}, {Edge: "e4", O: Positive},
	}})
	ls, err := r.RealizeCurve("perimeter")
	if err != nil {
		t.Fatalf("RealizeCurve: %v", err)
	}
	if ls.Length() != 4 {
		t.Errorf("perimeter length = %g, want 4", ls.Length())
	}
	// with a reversed member
	tp.AddCurve(TopoCurve{ID: "rev", Edges: []DirectedEdge{
		{Edge: "e2", O: Negative}, {Edge: "e1", O: Negative},
	}})
	ls2, err := r.RealizeCurve("rev")
	if err != nil {
		t.Fatalf("RealizeCurve rev: %v", err)
	}
	if ls2.Coords[0] != (geom.Coord{X: 1, Y: 0}) || ls2.Coords[len(ls2.Coords)-1] != (geom.Coord{X: 0, Y: 1}) {
		t.Errorf("rev coords = %v", ls2.Coords)
	}
}

func TestRealizeSurfaceAndComplete(t *testing.T) {
	tp := buildSquareMesh(t)
	r := realizeSquare(t, tp)
	tri1, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	tri2, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 1}})
	r.RealizeFace("f1", geom.NewPolygon(tri1))
	r.RealizeFace("f2", geom.NewPolygon(tri2))

	tp.AddSurface(TopoSurface{ID: "sq", Faces: []ID{"f1", "f2"}})
	ms, err := r.RealizeSurface("sq")
	if err != nil {
		t.Fatalf("RealizeSurface: %v", err)
	}
	if ms.Area() != 1 {
		t.Errorf("surface area = %g, want 1 (two half-unit triangles)", ms.Area())
	}
	if missing := r.Complete(); len(missing) != 0 {
		t.Errorf("Complete reports missing: %v", missing)
	}
	// unrealized face blocks surface realization
	tp.AddNode(Node{ID: "z"})
	tp.AddEdge(Edge{ID: "zz", Start: "z", End: "z"})
	tp.AddFace(Face{ID: "fz", Boundary: []DirectedEdge{{Edge: "zz", O: Positive}}})
	tp.AddSurface(TopoSurface{ID: "bad", Faces: []ID{"fz"}})
	if _, err := r.RealizeSurface("bad"); err == nil {
		t.Error("surface with unrealized face accepted")
	}
	if missing := r.Complete(); len(missing) != 3 { // z, zz, fz
		t.Errorf("Complete = %v", missing)
	}
}

func TestRealizeCurveErrors(t *testing.T) {
	tp := buildSquareMesh(t)
	r := NewRealization(tp)
	if _, err := r.RealizeCurve("nope"); err == nil {
		t.Error("unknown TopoCurve accepted")
	}
	tp.AddCurve(TopoCurve{ID: "c", Edges: []DirectedEdge{{Edge: "e1", O: Positive}}})
	if _, err := r.RealizeCurve("c"); err == nil {
		t.Error("TopoCurve with unrealized edge accepted")
	}
}

func TestRealizationAccessors(t *testing.T) {
	tp := buildSquareMesh(t)
	r := realizeSquare(t, tp)
	if _, ok := r.PointOf("n1"); !ok {
		t.Error("PointOf missing")
	}
	if _, ok := r.PointOf("zz"); ok {
		t.Error("PointOf ghost")
	}
	if _, ok := r.CurveOf("e1"); !ok {
		t.Error("CurveOf missing")
	}
	tri, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	r.RealizeFace("f1", geom.NewPolygon(tri))
	if _, ok := r.PolygonOf("f1"); !ok {
		t.Error("PolygonOf missing")
	}
	tp.AddSolid(TopoSolid{ID: "sol", Boundary: []ID{"f1", "f2"}})
	if _, ok := tp.Solid("sol"); !ok {
		t.Error("Solid lookup missing")
	}
	if err := r.RealizeSolid("sol", geom.Solid{Boundary: []geom.Polygon{geom.NewPolygon(tri)}}); err != nil {
		t.Fatal(err)
	}
	if s, ok := r.SolidOf("sol"); !ok || s.SurfaceArea() == 0 {
		t.Error("SolidOf missing")
	}
	if err := r.RealizeSolid("ghost", geom.Solid{}); err == nil {
		t.Error("RealizeSolid ghost accepted")
	}
	if err := r.RealizeFace("ghost", geom.NewPolygon(tri)); err == nil {
		t.Error("RealizeFace ghost accepted")
	}
}
