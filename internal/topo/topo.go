// Package topo implements GRDF's topology model (Section 6, Fig. 2 of the
// paper): the primitives Node, Edge, Face and TopoSolid, the aggregate
// constructs TopoCurve, TopoSurface, TopoVolume and TopoComplex, and the
// "realization" relationship that maps each topological construct onto a
// concrete geometric form ("a node is modelled as a point, an edge is
// modelled as a curve, a face is modelled as a surface, a TopoSolid is
// modelled as solid").
//
// Because topological objects are "obstinate against deformations,
// stretchings and twistings", everything here is defined purely by
// connectivity; coordinates appear only through the optional realizations.
package topo

import (
	"fmt"
	"sort"
)

// ID names a topological primitive within one Topology.
type ID string

// Orientation of a directed edge or face use.
type Orientation int8

const (
	// Positive follows the primitive's intrinsic direction (the paper's
	// "positive (clockwise)" face orientation).
	Positive Orientation = 1
	// Negative reverses it.
	Negative Orientation = -1
)

// DirectedEdge is an edge use with an orientation.
type DirectedEdge struct {
	Edge ID
	O    Orientation
}

// Node is a 0-dimensional primitive.
type Node struct {
	ID ID
	// IsolatedIn optionally names the Face this node sits inside without
	// touching its boundary ("primitives can be isolated by other primitives
	// with co-dimension of 2 or more" — a node in a face has co-dimension 2).
	IsolatedIn ID
}

// Edge is a 1-dimensional primitive directed from Start to End.
type Edge struct {
	ID         ID
	Start, End ID // node IDs
}

// Face is a 2-dimensional primitive bounded by a cycle of directed edges
// (paper: "a 2-dimensional primitive bounded by a set of directed edges").
type Face struct {
	ID       ID
	Boundary []DirectedEdge
	// Orientation is the face's own orientation sign.
	Orientation Orientation
}

// TopoSolid is a 3-dimensional primitive bounded by faces.
type TopoSolid struct {
	ID       ID
	Boundary []ID // face IDs
}

// TopoCurve is "isomorphic to a geometric curve": a contiguous chain of
// directed edges.
type TopoCurve struct {
	ID    ID
	Edges []DirectedEdge
}

// TopoSurface is isomorphic to a geometric surface: a connected set of faces.
type TopoSurface struct {
	ID    ID
	Faces []ID
}

// TopoVolume is isomorphic to a geometric solid: a set of TopoSolids.
type TopoVolume struct {
	ID     ID
	Solids []ID
}

// TopoComplex is "contained within a single maximal complex and might
// contain other sub-complexes and primitives; the sub-complexes and
// primitives have lesser dimension than the TopoComplex itself."
type TopoComplex struct {
	ID           ID
	Dimension    int
	Primitives   []ID // nodes, edges, faces, solids
	SubComplexes []ID
}

// Topology is a container of primitives and aggregates with validated
// referential integrity.
type Topology struct {
	nodes     map[ID]Node
	edges     map[ID]Edge
	faces     map[ID]Face
	solids    map[ID]TopoSolid
	curves    map[ID]TopoCurve
	surfaces  map[ID]TopoSurface
	volumes   map[ID]TopoVolume
	complexes map[ID]TopoComplex
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		nodes:     make(map[ID]Node),
		edges:     make(map[ID]Edge),
		faces:     make(map[ID]Face),
		solids:    make(map[ID]TopoSolid),
		curves:    make(map[ID]TopoCurve),
		surfaces:  make(map[ID]TopoSurface),
		volumes:   make(map[ID]TopoVolume),
		complexes: make(map[ID]TopoComplex),
	}
}

// AddNode inserts a node.
func (t *Topology) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("topo: node needs an ID")
	}
	if _, dup := t.nodes[n.ID]; dup {
		return fmt.Errorf("topo: duplicate node %s", n.ID)
	}
	t.nodes[n.ID] = n
	return nil
}

// AddEdge inserts an edge; its endpoint nodes must already exist.
func (t *Topology) AddEdge(e Edge) error {
	if e.ID == "" {
		return fmt.Errorf("topo: edge needs an ID")
	}
	if _, dup := t.edges[e.ID]; dup {
		return fmt.Errorf("topo: duplicate edge %s", e.ID)
	}
	if _, ok := t.nodes[e.Start]; !ok {
		return fmt.Errorf("topo: edge %s references missing start node %s", e.ID, e.Start)
	}
	if _, ok := t.nodes[e.End]; !ok {
		return fmt.Errorf("topo: edge %s references missing end node %s", e.ID, e.End)
	}
	t.edges[e.ID] = e
	return nil
}

// AddFace inserts a face. Per List 5 of the paper, a face must have at least
// one boundary edge (minCardinality 1 on hasEdge), and its boundary must form
// a closed, contiguous cycle. Faces may border at most 2 solids, checked at
// AddSolid/Validate time.
func (t *Topology) AddFace(f Face) error {
	if f.ID == "" {
		return fmt.Errorf("topo: face needs an ID")
	}
	if _, dup := t.faces[f.ID]; dup {
		return fmt.Errorf("topo: duplicate face %s", f.ID)
	}
	if len(f.Boundary) < 1 {
		return fmt.Errorf("topo: face %s must have at least 1 boundary edge", f.ID)
	}
	if f.Orientation == 0 {
		f.Orientation = Positive
	}
	// Boundary must chain: end node of each directed edge equals start node
	// of the next, and the cycle closes.
	var firstStart, prevEnd ID
	for i, de := range f.Boundary {
		e, ok := t.edges[de.Edge]
		if !ok {
			return fmt.Errorf("topo: face %s references missing edge %s", f.ID, de.Edge)
		}
		s, en := e.Start, e.End
		if de.O == Negative {
			s, en = en, s
		}
		if i == 0 {
			firstStart = s
		} else if prevEnd != s {
			return fmt.Errorf("topo: face %s boundary breaks at edge %s (%s != %s)",
				f.ID, de.Edge, prevEnd, s)
		}
		prevEnd = en
	}
	// A single self-loop edge closes trivially; otherwise require closure.
	if prevEnd != firstStart {
		return fmt.Errorf("topo: face %s boundary is not closed (%s != %s)", f.ID, prevEnd, firstStart)
	}
	t.faces[f.ID] = f
	return nil
}

// AddSolid inserts a TopoSolid. It enforces List 5's maxCardinality 2 on
// hasTopoSolid: after insertion no face may bound more than two solids.
func (t *Topology) AddSolid(s TopoSolid) error {
	if s.ID == "" {
		return fmt.Errorf("topo: solid needs an ID")
	}
	if _, dup := t.solids[s.ID]; dup {
		return fmt.Errorf("topo: duplicate solid %s", s.ID)
	}
	if len(s.Boundary) == 0 {
		return fmt.Errorf("topo: solid %s needs boundary faces", s.ID)
	}
	for _, fid := range s.Boundary {
		if _, ok := t.faces[fid]; !ok {
			return fmt.Errorf("topo: solid %s references missing face %s", s.ID, fid)
		}
		if len(t.SolidsOfFace(fid)) >= 2 {
			return fmt.Errorf("topo: face %s would bound more than 2 solids", fid)
		}
	}
	t.solids[s.ID] = s
	return nil
}

// AddCurve inserts a TopoCurve after checking edge existence and contiguity.
func (t *Topology) AddCurve(c TopoCurve) error {
	if c.ID == "" || len(c.Edges) == 0 {
		return fmt.Errorf("topo: curve needs an ID and edges")
	}
	if _, dup := t.curves[c.ID]; dup {
		return fmt.Errorf("topo: duplicate curve %s", c.ID)
	}
	var prevEnd ID
	for i, de := range c.Edges {
		e, ok := t.edges[de.Edge]
		if !ok {
			return fmt.Errorf("topo: curve %s references missing edge %s", c.ID, de.Edge)
		}
		s, en := e.Start, e.End
		if de.O == Negative {
			s, en = en, s
		}
		if i > 0 && prevEnd != s {
			return fmt.Errorf("topo: curve %s breaks at edge %s", c.ID, de.Edge)
		}
		prevEnd = en
	}
	t.curves[c.ID] = c
	return nil
}

// AddSurface inserts a TopoSurface; member faces must exist and be edge-connected.
func (t *Topology) AddSurface(s TopoSurface) error {
	if s.ID == "" || len(s.Faces) == 0 {
		return fmt.Errorf("topo: surface needs an ID and faces")
	}
	if _, dup := t.surfaces[s.ID]; dup {
		return fmt.Errorf("topo: duplicate surface %s", s.ID)
	}
	edgeUsers := map[ID][]int{}
	for i, fid := range s.Faces {
		f, ok := t.faces[fid]
		if !ok {
			return fmt.Errorf("topo: surface %s references missing face %s", s.ID, fid)
		}
		for _, de := range f.Boundary {
			edgeUsers[de.Edge] = append(edgeUsers[de.Edge], i)
		}
	}
	if len(s.Faces) > 1 {
		// connectivity via shared edges (union-find)
		parent := make([]int, len(s.Faces))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, users := range edgeUsers {
			for i := 1; i < len(users); i++ {
				parent[find(users[i])] = find(users[0])
			}
		}
		root := find(0)
		for i := range s.Faces {
			if find(i) != root {
				return fmt.Errorf("topo: surface %s is not edge-connected", s.ID)
			}
		}
	}
	t.surfaces[s.ID] = s
	return nil
}

// AddVolume inserts a TopoVolume.
func (t *Topology) AddVolume(v TopoVolume) error {
	if v.ID == "" || len(v.Solids) == 0 {
		return fmt.Errorf("topo: volume needs an ID and solids")
	}
	if _, dup := t.volumes[v.ID]; dup {
		return fmt.Errorf("topo: duplicate volume %s", v.ID)
	}
	for _, sid := range v.Solids {
		if _, ok := t.solids[sid]; !ok {
			return fmt.Errorf("topo: volume %s references missing solid %s", v.ID, sid)
		}
	}
	t.volumes[v.ID] = v
	return nil
}

// AddComplex inserts a TopoComplex; every contained primitive and
// sub-complex must exist and have dimension strictly less than the complex,
// matching the paper's containment rule.
func (t *Topology) AddComplex(c TopoComplex) error {
	if c.ID == "" {
		return fmt.Errorf("topo: complex needs an ID")
	}
	if _, dup := t.complexes[c.ID]; dup {
		return fmt.Errorf("topo: duplicate complex %s", c.ID)
	}
	for _, pid := range c.Primitives {
		d, ok := t.primitiveDimension(pid)
		if !ok {
			return fmt.Errorf("topo: complex %s references missing primitive %s", c.ID, pid)
		}
		if d > c.Dimension {
			return fmt.Errorf("topo: complex %s (dim %d) cannot contain %s (dim %d)",
				c.ID, c.Dimension, pid, d)
		}
	}
	for _, sid := range c.SubComplexes {
		sub, ok := t.complexes[sid]
		if !ok {
			return fmt.Errorf("topo: complex %s references missing sub-complex %s", c.ID, sid)
		}
		if sub.Dimension >= c.Dimension {
			return fmt.Errorf("topo: sub-complex %s (dim %d) must have lesser dimension than %s (dim %d)",
				sid, sub.Dimension, c.ID, c.Dimension)
		}
	}
	t.complexes[c.ID] = c
	return nil
}

func (t *Topology) primitiveDimension(id ID) (int, bool) {
	if _, ok := t.nodes[id]; ok {
		return 0, true
	}
	if _, ok := t.edges[id]; ok {
		return 1, true
	}
	if _, ok := t.faces[id]; ok {
		return 2, true
	}
	if _, ok := t.solids[id]; ok {
		return 3, true
	}
	return 0, false
}

// Node returns the node by ID.
func (t *Topology) Node(id ID) (Node, bool) { n, ok := t.nodes[id]; return n, ok }

// Edge returns the edge by ID.
func (t *Topology) Edge(id ID) (Edge, bool) { e, ok := t.edges[id]; return e, ok }

// Face returns the face by ID.
func (t *Topology) Face(id ID) (Face, bool) { f, ok := t.faces[id]; return f, ok }

// Solid returns the solid by ID.
func (t *Topology) Solid(id ID) (TopoSolid, bool) { s, ok := t.solids[id]; return s, ok }

// Curve returns the TopoCurve by ID.
func (t *Topology) Curve(id ID) (TopoCurve, bool) { c, ok := t.curves[id]; return c, ok }

// Surface returns the TopoSurface by ID.
func (t *Topology) Surface(id ID) (TopoSurface, bool) { s, ok := t.surfaces[id]; return s, ok }

// Counts returns (nodes, edges, faces, solids).
func (t *Topology) Counts() (int, int, int, int) {
	return len(t.nodes), len(t.edges), len(t.faces), len(t.solids)
}

// EdgesAtNode returns the IDs of edges incident to the node, sorted.
func (t *Topology) EdgesAtNode(n ID) []ID {
	var out []ID
	for id, e := range t.edges {
		if e.Start == n || e.End == n {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of edge incidences at the node (self-loops count
// twice).
func (t *Topology) Degree(n ID) int {
	d := 0
	for _, e := range t.edges {
		if e.Start == n {
			d++
		}
		if e.End == n {
			d++
		}
	}
	return d
}

// FacesOfEdge returns the faces whose boundary uses the edge, sorted.
func (t *Topology) FacesOfEdge(e ID) []ID {
	var out []ID
	for id, f := range t.faces {
		for _, de := range f.Boundary {
			if de.Edge == e {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SolidsOfFace returns the solids bounded by the face, sorted.
func (t *Topology) SolidsOfFace(f ID) []ID {
	var out []ID
	for id, s := range t.solids {
		for _, fid := range s.Boundary {
			if fid == f {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdjacentFaces returns faces sharing at least one boundary edge with f.
func (t *Topology) AdjacentFaces(f ID) []ID {
	face, ok := t.faces[f]
	if !ok {
		return nil
	}
	seen := map[ID]bool{f: true}
	var out []ID
	for _, de := range face.Boundary {
		for _, other := range t.FacesOfEdge(de.Edge) {
			if !seen[other] {
				seen[other] = true
				out = append(out, other)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BoundaryNodes returns the node set of an edge: its boundary operator.
func (t *Topology) BoundaryNodes(e ID) (ID, ID, bool) {
	edge, ok := t.edges[e]
	if !ok {
		return "", "", false
	}
	return edge.Start, edge.End, true
}

// EulerCharacteristic returns V - E + F over the whole topology. For a
// planar subdivision including the unbounded face the value is 2; tests use
// this to validate generated meshes.
func (t *Topology) EulerCharacteristic() int {
	return len(t.nodes) - len(t.edges) + len(t.faces)
}

// Validate re-checks global invariants: referential integrity, the face/
// solid cardinalities of List 5, and the isolation co-dimension rule.
func (t *Topology) Validate() []error {
	var errs []error
	for id, e := range t.edges {
		if _, ok := t.nodes[e.Start]; !ok {
			errs = append(errs, fmt.Errorf("edge %s: missing start node %s", id, e.Start))
		}
		if _, ok := t.nodes[e.End]; !ok {
			errs = append(errs, fmt.Errorf("edge %s: missing end node %s", id, e.End))
		}
	}
	for id, f := range t.faces {
		if len(f.Boundary) < 1 {
			errs = append(errs, fmt.Errorf("face %s: empty boundary", id))
		}
		for _, de := range f.Boundary {
			if _, ok := t.edges[de.Edge]; !ok {
				errs = append(errs, fmt.Errorf("face %s: missing edge %s", id, de.Edge))
			}
		}
		if n := len(t.SolidsOfFace(id)); n > 2 {
			errs = append(errs, fmt.Errorf("face %s: bounds %d solids (max 2)", id, n))
		}
	}
	for id, n := range t.nodes {
		if n.IsolatedIn != "" {
			if _, ok := t.faces[n.IsolatedIn]; !ok {
				errs = append(errs, fmt.Errorf("node %s: isolated in missing face %s", id, n.IsolatedIn))
			}
			// co-dimension: face(2) - node(0) = 2 >= 2, always fine; the rule
			// exists to forbid isolating edges (codim 1) inside faces, which
			// the model cannot express — documented invariant.
		}
	}
	return errs
}
