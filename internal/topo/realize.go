package topo

import (
	"fmt"

	"repro/internal/geom"
)

// Realization binds topological primitives to concrete geometry, the paper's
// "realized" relationship: "topological constructions such as nodes or faces
// are said to be realized when they are modelled in terms of concrete
// geometric forms."
type Realization struct {
	topo   *Topology
	points map[ID]geom.Point
	curves map[ID]geom.LineString
	faces  map[ID]geom.Polygon
	solids map[ID]geom.Solid
}

// NewRealization returns an empty realization over t.
func NewRealization(t *Topology) *Realization {
	return &Realization{
		topo:   t,
		points: make(map[ID]geom.Point),
		curves: make(map[ID]geom.LineString),
		faces:  make(map[ID]geom.Polygon),
		solids: make(map[ID]geom.Solid),
	}
}

// RealizeNode binds a node to a point.
func (r *Realization) RealizeNode(id ID, p geom.Point) error {
	if _, ok := r.topo.Node(id); !ok {
		return fmt.Errorf("topo: realize: unknown node %s", id)
	}
	r.points[id] = p
	return nil
}

// RealizeEdge binds an edge to a curve. The curve's endpoints must coincide
// with the realizations of the edge's boundary nodes when those exist —
// geometry and topology must agree.
func (r *Realization) RealizeEdge(id ID, c geom.LineString) error {
	e, ok := r.topo.Edge(id)
	if !ok {
		return fmt.Errorf("topo: realize: unknown edge %s", id)
	}
	if len(c.Coords) < 2 {
		return fmt.Errorf("topo: realize: edge %s curve too short", id)
	}
	if p, ok := r.points[e.Start]; ok && p.C != c.Coords[0] {
		return fmt.Errorf("topo: realize: edge %s start %v disagrees with node %s at %v",
			id, c.Coords[0], e.Start, p.C)
	}
	if p, ok := r.points[e.End]; ok && p.C != c.Coords[len(c.Coords)-1] {
		return fmt.Errorf("topo: realize: edge %s end %v disagrees with node %s at %v",
			id, c.Coords[len(c.Coords)-1], e.End, p.C)
	}
	r.curves[id] = c
	return nil
}

// RealizeFace binds a face to a polygon.
func (r *Realization) RealizeFace(id ID, p geom.Polygon) error {
	if _, ok := r.topo.Face(id); !ok {
		return fmt.Errorf("topo: realize: unknown face %s", id)
	}
	r.faces[id] = p
	return nil
}

// RealizeSolid binds a TopoSolid to a solid.
func (r *Realization) RealizeSolid(id ID, s geom.Solid) error {
	if _, ok := r.topo.Solid(id); !ok {
		return fmt.Errorf("topo: realize: unknown solid %s", id)
	}
	r.solids[id] = s
	return nil
}

// PointOf returns the realization of a node.
func (r *Realization) PointOf(id ID) (geom.Point, bool) { p, ok := r.points[id]; return p, ok }

// CurveOf returns the realization of an edge.
func (r *Realization) CurveOf(id ID) (geom.LineString, bool) {
	c, ok := r.curves[id]
	return c, ok
}

// PolygonOf returns the realization of a face.
func (r *Realization) PolygonOf(id ID) (geom.Polygon, bool) { p, ok := r.faces[id]; return p, ok }

// SolidOf returns the realization of a TopoSolid.
func (r *Realization) SolidOf(id ID) (geom.Solid, bool) { s, ok := r.solids[id]; return s, ok }

// RealizeCurve derives the geometry of a TopoCurve by concatenating its
// directed edges' realizations ("a TopoCurve is isomorphic to a geometric
// curve").
func (r *Realization) RealizeCurve(id ID) (geom.LineString, error) {
	tc, ok := r.topo.Curve(id)
	if !ok {
		return geom.LineString{}, fmt.Errorf("topo: unknown TopoCurve %s", id)
	}
	var members []geom.Geometry
	for _, de := range tc.Edges {
		c, ok := r.curves[de.Edge]
		if !ok {
			return geom.LineString{}, fmt.Errorf("topo: TopoCurve %s: edge %s unrealized", id, de.Edge)
		}
		if de.O == Negative {
			c = c.Reverse()
		}
		members = append(members, c)
	}
	cc, err := geom.NewCompositeCurve(members...)
	if err != nil {
		return geom.LineString{}, fmt.Errorf("topo: TopoCurve %s: %w", id, err)
	}
	return cc.AsLineString()
}

// RealizeSurface derives the geometry of a TopoSurface as the multi-surface
// of its faces' realizations.
func (r *Realization) RealizeSurface(id ID) (geom.MultiSurface, error) {
	ts, ok := r.topo.Surface(id)
	if !ok {
		return geom.MultiSurface{}, fmt.Errorf("topo: unknown TopoSurface %s", id)
	}
	var out geom.MultiSurface
	for _, fid := range ts.Faces {
		p, ok := r.faces[fid]
		if !ok {
			return geom.MultiSurface{}, fmt.Errorf("topo: TopoSurface %s: face %s unrealized", id, fid)
		}
		out.Surfaces = append(out.Surfaces, p)
	}
	return out, nil
}

// Complete reports which primitives lack realizations, letting callers check
// whether topology-only data can enter coordinate-based calculations ("the
// topological components need to be 'realized' by geometric counterparts
// with actual coordinates to be used in calculations").
func (r *Realization) Complete() (missing []ID) {
	for id := range r.topo.nodes {
		if _, ok := r.points[id]; !ok {
			missing = append(missing, id)
		}
	}
	for id := range r.topo.edges {
		if _, ok := r.curves[id]; !ok {
			missing = append(missing, id)
		}
	}
	for id := range r.topo.faces {
		if _, ok := r.faces[id]; !ok {
			missing = append(missing, id)
		}
	}
	for id := range r.topo.solids {
		if _, ok := r.solids[id]; !ok {
			missing = append(missing, id)
		}
	}
	return missing
}
