// Package datagen produces the deterministic synthetic datasets the
// reproduction uses in place of the paper's proprietary sources: the North
// Central Texas Council of Governments hydrology clearinghouse (streams,
// creeks, rivers with TX83-NCF coordinates) and the multi-state E-Plan
// chemical-facility database (site names/ids, bounding boxes, chemical
// inventories, contacts). Generators are seeded so every experiment is
// reproducible bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Application vocabulary used by the generated data (mirrors Lists 6–7).
const (
	HydroStream    rdf.IRI = rdf.AppNS + "HydroStream"
	ChemSite       rdf.IRI = rdf.AppNS + "ChemSite"
	ChemInfo       rdf.IRI = rdf.AppNS + "ChemInfo"
	ChemRecord     rdf.IRI = rdf.AppNS + "ChemicalRecord"
	WeatherStation rdf.IRI = rdf.AppNS + "WeatherStation"

	HasObjectID     rdf.IRI = rdf.AppNS + "hasObjectID"
	HasStreamName   rdf.IRI = rdf.AppNS + "hasStreamName"
	HasStreamType   rdf.IRI = rdf.AppNS + "hasStreamType"
	FlowsInto       rdf.IRI = rdf.AppNS + "flowsInto"
	HasSiteName     rdf.IRI = rdf.AppNS + "hasSiteName"
	HasSiteID       rdf.IRI = rdf.AppNS + "hasSiteId"
	HasContactName  rdf.IRI = rdf.AppNS + "hasContactName"
	HasContactPhone rdf.IRI = rdf.AppNS + "hasContactPhone"
	HasChemicalInfo rdf.IRI = rdf.AppNS + "hasChemicalInfo"
	HasChemName     rdf.IRI = rdf.AppNS + "hasChemName"
	HasChemCode     rdf.IRI = rdf.AppNS + "hasChemCode"
	HasQuantityKg   rdf.IRI = rdf.AppNS + "hasQuantityKg"
	HasTemperature  rdf.IRI = rdf.AppNS + "hasTemperature"
	HasHumidity     rdf.IRI = rdf.AppNS + "hasHumidity"
	NearStation     rdf.IRI = rdf.AppNS + "nearWeatherStation"
)

// Region is the default synthetic study area in TX83-NCF-like feet,
// matching the coordinate magnitudes of List 6.
var Region = geom.EnvelopeOf(
	geom.Coord{X: 2500000, Y: 7080000},
	geom.Coord{X: 2560000, Y: 7140000},
)

// HydrologyConfig tunes the stream-network generator.
type HydrologyConfig struct {
	Seed int64
	// Trunks is the number of main rivers.
	Trunks int
	// TributariesPerTrunk is the number of tributaries feeding each trunk.
	TributariesPerTrunk int
	// PointsPerCurve is the polyline resolution.
	PointsPerCurve int
	// Region bounds the network; zero value uses the default Region.
	Region geom.Envelope
	// SRS names the CRS written via hasSRSName; default TX83NCF.
	SRS string
}

func (c *HydrologyConfig) defaults() {
	if c.Trunks == 0 {
		c.Trunks = 2
	}
	if c.TributariesPerTrunk == 0 {
		c.TributariesPerTrunk = 6
	}
	if c.PointsPerCurve == 0 {
		c.PointsPerCurve = 8
	}
	if c.Region.Empty || c.Region.Area() == 0 {
		c.Region = Region
	}
	if c.SRS == "" {
		c.SRS = geom.TX83NCF
	}
}

// Stream describes one generated watercourse.
type Stream struct {
	IRI      rdf.IRI
	Name     string
	Type     string // "river", "creek"
	Geometry geom.LineString
	// FlowsInto is the downstream stream IRI (empty for trunks).
	FlowsInto rdf.IRI
}

// HydrologyDataset is the generated network plus its triple encoding.
type HydrologyDataset struct {
	Store   *store.Store
	Streams []Stream
}

var streamNames = []string{
	"Trinity", "Rowlett", "Duck", "Spring", "White Rock", "Cottonwood",
	"Prairie", "Bear", "Sycamore", "Mustang", "Turtle", "Honey", "Ash",
	"Cedar", "Elm Fork", "Mountain", "Walnut", "Willow", "Panther",
	"Clear Fork", "Johnson", "Marine", "Rush", "Ten Mile", "Farmers",
}

// Hydrology generates a dendritic stream network: meandering trunk rivers
// west→east across the region, with tributaries joining them at interior
// points.
func Hydrology(cfg HydrologyConfig) *HydrologyDataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &HydrologyDataset{Store: store.New()}
	objectID := 11000

	addStream := func(s Stream) {
		objectID++
		grdf.NewFeature(ds.Store, s.IRI, HydroStream)
		ds.Store.Add(rdf.T(s.IRI, HasObjectID, rdf.NewInteger(int64(objectID))))
		ds.Store.Add(rdf.T(s.IRI, HasStreamName, rdf.NewString(s.Name)))
		ds.Store.Add(rdf.T(s.IRI, HasStreamType, rdf.NewString(s.Type)))
		if s.FlowsInto != "" {
			ds.Store.Add(rdf.T(s.IRI, FlowsInto, s.FlowsInto))
		}
		geomNode := rdf.IRI(string(s.IRI) + "_geom")
		if err := grdf.EncodeGeometry(ds.Store, geomNode, s.Geometry, cfg.SRS); err != nil {
			// geometry built by this generator is always valid
			panic(fmt.Sprintf("datagen: %v", err))
		}
		ds.Store.Add(rdf.T(s.IRI, grdf.HasGeometry, geomNode))
		ds.Streams = append(ds.Streams, s)
	}

	r := cfg.Region
	for t := 0; t < cfg.Trunks; t++ {
		// Trunk crosses the region west to east at a random latitude band.
		y0 := r.MinY + (float64(t)+0.5)*(r.Height()/float64(cfg.Trunks))
		coords := make([]geom.Coord, cfg.PointsPerCurve)
		for i := range coords {
			frac := float64(i) / float64(cfg.PointsPerCurve-1)
			coords[i] = geom.Coord{
				X: r.MinX + frac*r.Width(),
				Y: y0 + (rng.Float64()-0.5)*r.Height()*0.08,
			}
		}
		trunkLine, _ := geom.NewLineString(coords)
		trunkIRI := rdf.IRI(fmt.Sprintf("%shydro_river%d", rdf.AppNS, t+1))
		trunkName := streamNames[t%len(streamNames)] + " River"
		addStream(Stream{IRI: trunkIRI, Name: trunkName, Type: "river", Geometry: trunkLine})

		for k := 0; k < cfg.TributariesPerTrunk; k++ {
			// Join point: an interior vertex of the trunk.
			join := coords[1+rng.Intn(len(coords)-2)]
			// Source point: offset north or south of the trunk.
			dir := 1.0
			if rng.Intn(2) == 0 {
				dir = -1.0
			}
			src := geom.Coord{
				X: join.X + (rng.Float64()-0.5)*r.Width()*0.2,
				Y: join.Y + dir*(0.1+rng.Float64()*0.25)*r.Height(),
			}
			tribCoords := make([]geom.Coord, cfg.PointsPerCurve/2+2)
			for i := range tribCoords {
				frac := float64(i) / float64(len(tribCoords)-1)
				tribCoords[i] = geom.Coord{
					X: src.X + frac*(join.X-src.X) + (rng.Float64()-0.5)*r.Width()*0.01,
					Y: src.Y + frac*(join.Y-src.Y) + (rng.Float64()-0.5)*r.Height()*0.01,
				}
			}
			tribCoords[len(tribCoords)-1] = join // exact confluence
			tribLine, _ := geom.NewLineString(tribCoords)
			tribIRI := rdf.IRI(fmt.Sprintf("%shydro_creek%d_%d", rdf.AppNS, t+1, k+1))
			name := streamNames[(t*cfg.TributariesPerTrunk+k+cfg.Trunks)%len(streamNames)] + " Creek"
			addStream(Stream{
				IRI: tribIRI, Name: name, Type: "creek",
				Geometry: tribLine, FlowsInto: trunkIRI,
			})
		}
	}
	return ds
}

// ChemicalConfig tunes the chemical-site generator.
type ChemicalConfig struct {
	Seed int64
	// Sites is the number of facilities.
	Sites int
	// ChemicalsPerSite bounds the inventory size (1..N).
	ChemicalsPerSite int
	// Region bounds placement; zero uses the default Region.
	Region geom.Envelope
	// SRS names the CRS; default TX83NCF.
	SRS string
	// NearStreams, when non-nil, biases placement toward stream vertices so
	// the contamination scenario has sites in blast radius.
	NearStreams *HydrologyDataset
	// NearFraction is the fraction of sites placed near streams (default 0.5
	// when NearStreams is set).
	NearFraction float64
	// IRIPrefix is inserted into every minted IRI after the namespace
	// (e.g. "r3_" yields app:r3_chem_site001). The streaming bulk loader
	// uses it to tile many generated regions into one store without IRI
	// collisions. Empty keeps the historical IRIs.
	IRIPrefix string
}

func (c *ChemicalConfig) defaults() {
	if c.Sites == 0 {
		c.Sites = 12
	}
	if c.ChemicalsPerSite == 0 {
		c.ChemicalsPerSite = 3
	}
	if c.Region.Empty || c.Region.Area() == 0 {
		c.Region = Region
	}
	if c.SRS == "" {
		c.SRS = geom.TX83NCF
	}
	if c.NearStreams != nil && c.NearFraction == 0 {
		c.NearFraction = 0.5
	}
}

// Site describes one generated facility.
type Site struct {
	IRI      rdf.IRI
	Name     string
	SiteID   string
	Bounds   geom.Envelope
	Chemical []string
}

// ChemicalDataset is the generated facility data plus its triple encoding.
type ChemicalDataset struct {
	Store *store.Store
	Sites []Site
}

var companyWords = [][2]string{
	{"North Texas", "Energy"}, {"Collin", "Chemicals"}, {"Lone Star", "Refining"},
	{"Blackland", "Agro"}, {"Red River", "Solvents"}, {"Prairie", "Petrochem"},
	{"Trinity", "Coatings"}, {"Caddo", "Industrial"}, {"Brazos", "Polymers"},
	{"Palo Duro", "Processing"}, {"Gulf Plains", "Fertilizer"}, {"Comanche", "Materials"},
}

var chemicals = []struct{ name, code string }{
	{"Sulfuric Acid", "121NR"}, {"Anhydrous Ammonia", "208AA"},
	{"Chlorine", "017CL"}, {"Hydrochloric Acid", "332HC"},
	{"Sodium Hydroxide", "415SH"}, {"Benzene", "071BZ"},
	{"Toluene", "098TL"}, {"Methanol", "190ME"},
	{"Nitric Acid", "243NA"}, {"Hydrogen Peroxide", "377HP"},
}

// Chemicals generates the facility dataset.
func Chemicals(cfg ChemicalConfig) *ChemicalDataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ds := &ChemicalDataset{Store: store.New()}
	r := cfg.Region

	var streamVertices []geom.Coord
	if cfg.NearStreams != nil {
		for _, s := range cfg.NearStreams.Streams {
			streamVertices = append(streamVertices, s.Geometry.Coords...)
		}
	}

	for i := 0; i < cfg.Sites; i++ {
		var center geom.Coord
		if len(streamVertices) > 0 && rng.Float64() < cfg.NearFraction {
			v := streamVertices[rng.Intn(len(streamVertices))]
			center = geom.Coord{
				X: v.X + (rng.Float64()-0.5)*2000,
				Y: v.Y + (rng.Float64()-0.5)*2000,
			}
		} else {
			center = geom.Coord{
				X: r.MinX + rng.Float64()*r.Width(),
				Y: r.MinY + rng.Float64()*r.Height(),
			}
		}
		half := 200 + rng.Float64()*600 // site footprint 400–1600 ft across
		bounds := geom.EnvelopeOf(
			geom.Coord{X: center.X - half, Y: center.Y - half},
			geom.Coord{X: center.X + half, Y: center.Y + half},
		)
		words := companyWords[i%len(companyWords)]
		name := fmt.Sprintf("%s %s", words[0], words[1])
		if i >= len(companyWords) {
			name = fmt.Sprintf("%s %s %d", words[0], words[1], i/len(companyWords)+1)
		}
		siteID := fmt.Sprintf("%06d", 4000+i*17)
		iri := rdf.IRI(fmt.Sprintf("%s%schem_site%03d", rdf.AppNS, cfg.IRIPrefix, i+1))

		grdf.NewFeature(ds.Store, iri, ChemSite)
		ds.Store.Add(rdf.T(iri, HasSiteName, rdf.NewString(name)))
		ds.Store.Add(rdf.T(iri, HasSiteID, rdf.NewString(siteID)))
		ds.Store.Add(rdf.T(iri, HasContactName, rdf.NewString(contactName(rng))))
		ds.Store.Add(rdf.T(iri, HasContactPhone, rdf.NewString(
			fmt.Sprintf("972-555-%04d", rng.Intn(10000)))))
		envNode := rdf.IRI(string(iri) + "_extent")
		if err := grdf.EncodeGeometry(ds.Store, envNode, bounds, cfg.SRS); err != nil {
			panic(fmt.Sprintf("datagen: %v", err))
		}
		ds.Store.Add(rdf.T(iri, grdf.BoundedBy, envNode))

		nChem := 1 + rng.Intn(cfg.ChemicalsPerSite)
		var names []string
		info := rdf.IRI(string(iri) + "_cheminfo")
		ds.Store.Add(rdf.T(iri, HasChemicalInfo, info))
		ds.Store.Add(rdf.T(info, rdf.RDFType, ChemInfo))
		picked := rng.Perm(len(chemicals))[:nChem]
		for _, ci := range picked {
			c := chemicals[ci]
			entry := rdf.IRI(fmt.Sprintf("%s_chem%s", string(info), c.code))
			ds.Store.Add(rdf.T(info, rdf.IRI(rdf.AppNS+"chemical"), entry))
			ds.Store.Add(rdf.T(entry, rdf.RDFType, ChemRecord))
			ds.Store.Add(rdf.T(entry, HasChemName, rdf.NewString(c.name)))
			ds.Store.Add(rdf.T(entry, HasChemCode, rdf.NewString(c.code)))
			ds.Store.Add(rdf.T(entry, HasQuantityKg, rdf.NewInteger(int64(100+rng.Intn(9900)))))
			names = append(names, c.name)
		}
		ds.Sites = append(ds.Sites, Site{
			IRI: iri, Name: name, SiteID: siteID, Bounds: bounds, Chemical: names,
		})
	}
	return ds
}

var firstNames = []string{"Avery", "Jordan", "Riley", "Casey", "Morgan", "Quinn", "Harper", "Reese"}
var lastNames = []string{"Nguyen", "Garcia", "Smith", "Johnson", "Patel", "Brown", "Davis", "Walker"}

func contactName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

// WeatherConfig tunes the weather overlay generator used by the data-merge
// experiment (E7).
type WeatherConfig struct {
	Seed     int64
	Stations int
	Region   geom.Envelope
	SRS      string
}

// Weather generates weather stations with temperature/humidity readings.
func Weather(cfg WeatherConfig) *store.Store {
	if cfg.Stations == 0 {
		cfg.Stations = 5
	}
	if cfg.Region.Empty || cfg.Region.Area() == 0 {
		cfg.Region = Region
	}
	if cfg.SRS == "" {
		cfg.SRS = geom.TX83NCF
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	st := store.New()
	for i := 0; i < cfg.Stations; i++ {
		iri := rdf.IRI(fmt.Sprintf("%sweather_station%02d", rdf.AppNS, i+1))
		grdf.NewFeature(st, iri, WeatherStation)
		pos := geom.NewPoint(
			cfg.Region.MinX+rng.Float64()*cfg.Region.Width(),
			cfg.Region.MinY+rng.Float64()*cfg.Region.Height(),
		)
		posNode := rdf.IRI(string(iri) + "_geom")
		if err := grdf.EncodeGeometry(st, posNode, pos, cfg.SRS); err != nil {
			panic(fmt.Sprintf("datagen: %v", err))
		}
		st.Add(rdf.T(iri, grdf.HasGeometry, posNode))
		st.Add(rdf.T(iri, HasTemperature, rdf.NewDouble(math.Round((60+rng.Float64()*40)*10)/10)))
		st.Add(rdf.T(iri, HasHumidity, rdf.NewInteger(int64(20+rng.Intn(70)))))
	}
	return st
}

// LinkSitesToStations aggregates weather data with the chemical sites: each
// site gets a nearWeatherStation link to its closest station. This is the
// "chemical site data aggregated with weather data" merge of Section 7.1.
func LinkSitesToStations(merged *store.Store) int {
	stations := merged.SubjectsOfType(WeatherStation)
	sites := merged.SubjectsOfType(ChemSite)
	n := 0
	for _, site := range sites {
		siteGeo, _, err := grdf.GeometryOf(merged, site)
		if err != nil {
			continue
		}
		var best rdf.Term
		bestDist := math.Inf(1)
		for _, stn := range stations {
			stnGeo, _, err := grdf.GeometryOf(merged, stn)
			if err != nil {
				continue
			}
			if d := geom.Distance(siteGeo, stnGeo); d < bestDist {
				bestDist, best = d, stn
			}
		}
		if best != nil {
			merged.Add(rdf.T(site, NearStation, best))
			n++
		}
	}
	return n
}
