package datagen

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Streaming bulk load: million-triple fixtures without million-record WALs.
// The generators above build one region in memory; BulkLoad tiles many
// regions side by side and hands the triples to the store in large AddAll
// batches. Because the store's commit hook fires once per batch (one Op per
// AddAll), a durable store journals one WAL record — and at -fsync always,
// one fsync — per batch instead of per triple, which is the difference
// between seconds and hours when seeding planetary-scale fixtures.

// BulkConfig tunes the tiled bulk generator.
type BulkConfig struct {
	// Seed makes the tiling reproducible.
	Seed int64
	// Regions is the number of side-by-side region tiles (default 4).
	Regions int
	// SitesPerRegion is the facility count per tile (default 100).
	SitesPerRegion int
	// ChemicalsPerSite bounds each site's inventory (default 3).
	ChemicalsPerSite int
	// BatchSize is the AddAll batch, i.e. triples per WAL record
	// (default 5000).
	BatchSize int
}

func (c BulkConfig) withDefaults() BulkConfig {
	if c.Regions <= 0 {
		c.Regions = 4
	}
	if c.SitesPerRegion <= 0 {
		c.SitesPerRegion = 100
	}
	if c.ChemicalsPerSite <= 0 {
		c.ChemicalsPerSite = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 5000
	}
	return c
}

// StreamScenario generates cfg.Regions chemical-site tiles one at a time
// and emits their triples in batches of cfg.BatchSize. Only one region is
// in memory at once, so fixture size is bounded by the tile, not the total.
// Generation stops at the first emit error.
func StreamScenario(cfg BulkConfig, emit func([]rdf.Triple) error) error {
	cfg = cfg.withDefaults()
	batch := make([]rdf.Triple, 0, cfg.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := emit(batch)
		batch = batch[:0]
		return err
	}
	for r := 0; r < cfg.Regions; r++ {
		// Tile the default region eastward so geometries stay disjoint and
		// spatially plausible; the IRI prefix keeps the minted IRIs unique.
		offset := float64(r) * (Region.Width() + 10000)
		tile := geom.EnvelopeOf(
			geom.Coord{X: Region.MinX + offset, Y: Region.MinY},
			geom.Coord{X: Region.MaxX + offset, Y: Region.MaxY},
		)
		ds := Chemicals(ChemicalConfig{
			Seed:             cfg.Seed + int64(r),
			Sites:            cfg.SitesPerRegion,
			ChemicalsPerSite: cfg.ChemicalsPerSite,
			Region:           tile,
			IRIPrefix:        fmt.Sprintf("r%d_", r+1),
		})
		for _, t := range ds.Store.Triples() {
			batch = append(batch, t)
			if len(batch) == cfg.BatchSize {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// BulkLoad streams the tiled scenario into st via AddAll, one commit (and
// therefore one WAL record on a durable store) per batch. It returns the
// number of triples added and the number of batches committed.
func BulkLoad(st *store.Store, cfg BulkConfig) (triples, batches int, err error) {
	err = StreamScenario(cfg, func(b []rdf.Triple) error {
		triples += st.AddAll(b)
		batches++
		return nil
	})
	return triples, batches, err
}
