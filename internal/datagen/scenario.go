package datagen

import (
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// The canonical Section 7.1 water-contamination scenario: two data stores
// (hydrology topology, chemical sites), three roles with graduated access.
// Used by the contamination example, the G-SACS tests and experiments E5–E7.

// Role IRIs for the scenario.
const (
	RoleMainRepair rdf.IRI = seconto.NS + "MainRep"
	RoleHazmat     rdf.IRI = seconto.NS + "Hazmat"
	RoleEmergency  rdf.IRI = seconto.NS + "EmergencyResponse"
)

// Scenario bundles everything the contamination scenario needs.
type Scenario struct {
	Hydrology *HydrologyDataset
	Chemical  *ChemicalDataset
	// Merged is the middleware's layered view (union of both stores).
	Merged   *store.Store
	Policies *seconto.Set
}

// ScenarioConfig scales the scenario.
type ScenarioConfig struct {
	Seed   int64
	Sites  int
	Trunks int
}

// NewScenario builds the scenario datasets and the role policies:
//
//   - 'main repair' — full view of the hydrology layer, but of chemical
//     sites only the geographic extent (List 8: hasPropertyAccess
//     grdf:boundedBy).
//   - 'hazmat personnel' — stream data plus site locations and an aggregate
//     list of chemical *names* (codes, quantities and contacts suppressed).
//   - 'emergency response' — "an administrative role and requires full
//     access to the data": one full Permit over grdf:Feature (covering every
//     domain feature class through subclass reasoning) plus the inventory
//     records.
func NewScenario(cfg ScenarioConfig) *Scenario {
	hydro := Hydrology(HydrologyConfig{Seed: cfg.Seed, Trunks: cfg.Trunks})
	chem := Chemicals(ChemicalConfig{Seed: cfg.Seed, Sites: cfg.Sites, NearStreams: hydro})

	merged := store.New()
	merged.AddAll(hydro.Store.Triples())
	merged.AddAll(chem.Store.Triples())

	boundedBy := rdf.IRI(grdf.NS + "boundedBy")
	policies := &seconto.Set{Rules: []seconto.Rule{
		// main repair
		{
			ID: seconto.NS + "MainRepHydro", Subject: RoleMainRepair,
			Action: seconto.ActionView, Resource: HydroStream, Permit: true,
		},
		{
			ID: seconto.NS + "MainRepPolicy1", Subject: RoleMainRepair,
			Action: seconto.ActionView, Resource: ChemSite, Permit: true,
			Properties: []rdf.IRI{boundedBy},
		},
		// hazmat personnel
		{
			ID: seconto.NS + "HazmatHydro", Subject: RoleHazmat,
			Action: seconto.ActionView, Resource: HydroStream, Permit: true,
		},
		{
			ID: seconto.NS + "HazmatSites", Subject: RoleHazmat,
			Action: seconto.ActionView, Resource: ChemSite, Permit: true,
			Properties: []rdf.IRI{boundedBy, HasSiteName, HasChemicalInfo},
		},
		{
			ID: seconto.NS + "HazmatChemInfo", Subject: RoleHazmat,
			Action: seconto.ActionView, Resource: ChemInfo, Permit: true,
			Properties: []rdf.IRI{rdf.IRI(rdf.AppNS + "chemical")},
		},
		{
			ID: seconto.NS + "HazmatChemRecord", Subject: RoleHazmat,
			Action: seconto.ActionView, Resource: ChemRecord, Permit: true,
			Properties: []rdf.IRI{HasChemName},
		},
		// emergency response: administrative, full access
		{
			ID: seconto.NS + "EmergencyAll", Subject: RoleEmergency,
			Action: seconto.ActionView, Resource: grdf.Feature, Permit: true,
		},
		{
			ID: seconto.NS + "EmergencyChemInfo", Subject: RoleEmergency,
			Action: seconto.ActionView, Resource: ChemInfo, Permit: true,
		},
		{
			ID: seconto.NS + "EmergencyChemRecord", Subject: RoleEmergency,
			Action: seconto.ActionView, Resource: ChemRecord, Permit: true,
		},
	}}

	return &Scenario{
		Hydrology: hydro,
		Chemical:  chem,
		Merged:    merged,
		Policies:  policies,
	}
}
