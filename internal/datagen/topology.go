package datagen

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/topo"
)

// HydroTopology derives the topological view of a stream network — the
// "hydrology topology" the paper's scenario stores (NCTCOG publishes stream
// *topology*, not just geometry): one Node per distinct stream endpoint
// (sources, mouths, confluences), one Edge per watercourse, each Edge
// realized by the stream's centerline.
//
// When st is non-nil the topology is additionally encoded as GRDF triples
// using the Fig. 2 vocabulary (grdf:Node, grdf:Edge, hasStartNode,
// hasEndNode, realizedBy).
func HydroTopology(ds *HydrologyDataset, st *store.Store) (*topo.Topology, *topo.Realization, error) {
	tp := topo.New()
	real := topo.NewRealization(tp)

	nodeAt := map[geom.Coord]topo.ID{}
	nodeSeq := 0
	node := func(c geom.Coord) (topo.ID, error) {
		if id, ok := nodeAt[c]; ok {
			return id, nil
		}
		nodeSeq++
		id := topo.ID(fmt.Sprintf("hn%d", nodeSeq))
		if err := tp.AddNode(topo.Node{ID: id}); err != nil {
			return "", err
		}
		if err := real.RealizeNode(id, geom.Point{C: c}); err != nil {
			return "", err
		}
		nodeAt[c] = id
		return id, nil
	}

	for _, s := range ds.Streams {
		start := s.Geometry.Coords[0]
		end := s.Geometry.Coords[len(s.Geometry.Coords)-1]
		startID, err := node(start)
		if err != nil {
			return nil, nil, err
		}
		endID, err := node(end)
		if err != nil {
			return nil, nil, err
		}
		edgeID := topo.ID(s.IRI.LocalName())
		if err := tp.AddEdge(topo.Edge{ID: edgeID, Start: startID, End: endID}); err != nil {
			return nil, nil, err
		}
		if err := real.RealizeEdge(edgeID, s.Geometry); err != nil {
			return nil, nil, err
		}
	}

	if st != nil {
		if err := encodeHydroTopology(st, ds, tp, nodeAt); err != nil {
			return nil, nil, err
		}
	}
	return tp, real, nil
}

// encodeHydroTopology writes the derived topology as GRDF triples.
func encodeHydroTopology(st *store.Store, ds *HydrologyDataset, tp *topo.Topology, nodeAt map[geom.Coord]topo.ID) error {
	const topoNS = rdf.AppNS + "topo_"
	nodeIRI := func(id topo.ID) rdf.IRI { return rdf.IRI(topoNS + string(id)) }

	for c, id := range nodeAt {
		iri := nodeIRI(id)
		st.Add(rdf.T(iri, rdf.RDFType, grdf.TopoNode))
		// realize the node as a point
		geomNode := rdf.IRI(string(iri) + "_geom")
		if err := grdf.EncodeGeometry(st, geomNode, geom.Point{C: c}, geom.TX83NCF); err != nil {
			return err
		}
		st.Add(rdf.T(iri, grdf.RealizedBy, geomNode))
	}
	for _, s := range ds.Streams {
		edgeIRI := rdf.IRI(topoNS + s.IRI.LocalName())
		st.Add(rdf.T(edgeIRI, rdf.RDFType, grdf.TopoEdge))
		edge, ok := tp.Edge(topo.ID(s.IRI.LocalName()))
		if !ok {
			return fmt.Errorf("datagen: edge %s missing from topology", s.IRI.LocalName())
		}
		st.Add(rdf.T(edgeIRI, grdf.HasStartNode, nodeIRI(edge.Start)))
		st.Add(rdf.T(edgeIRI, grdf.HasEndNode, nodeIRI(edge.End)))
		// the edge is realized by the stream's existing geometry node
		if g, ok := st.FirstObject(s.IRI, grdf.HasGeometry); ok {
			st.Add(rdf.T(edgeIRI, grdf.RealizedBy, g))
		}
	}
	return nil
}
