package datagen

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/topo"
)

func TestHydrologyDeterministic(t *testing.T) {
	a := Hydrology(HydrologyConfig{Seed: 42})
	b := Hydrology(HydrologyConfig{Seed: 42})
	if ntriples.Format(a.Store.Graph()) != ntriples.Format(b.Store.Graph()) {
		t.Error("same seed produced different hydrology data")
	}
	c := Hydrology(HydrologyConfig{Seed: 43})
	if ntriples.Format(a.Store.Graph()) == ntriples.Format(c.Store.Graph()) {
		t.Error("different seeds produced identical data")
	}
}

func TestHydrologyStructure(t *testing.T) {
	ds := Hydrology(HydrologyConfig{Seed: 1, Trunks: 2, TributariesPerTrunk: 4})
	if len(ds.Streams) != 2+2*4 {
		t.Fatalf("streams = %d", len(ds.Streams))
	}
	rivers, creeks := 0, 0
	for _, s := range ds.Streams {
		switch s.Type {
		case "river":
			rivers++
			if s.FlowsInto != "" {
				t.Errorf("trunk %s flows into %s", s.IRI, s.FlowsInto)
			}
		case "creek":
			creeks++
			if s.FlowsInto == "" {
				t.Errorf("creek %s has no downstream", s.IRI)
			}
			// confluence: creek's last coord must be on the trunk
			last := s.Geometry.Coords[len(s.Geometry.Coords)-1]
			var trunk Stream
			for _, x := range ds.Streams {
				if x.IRI == s.FlowsInto {
					trunk = x
				}
			}
			found := false
			for _, c := range trunk.Geometry.Coords {
				if c == last {
					found = true
				}
			}
			if !found {
				t.Errorf("creek %s does not join its trunk", s.IRI)
			}
		}
		// geometry decodes from the store
		g, srs, err := grdf.GeometryOf(ds.Store, s.IRI)
		if err != nil || g.Kind() != geom.KindLineString {
			t.Errorf("stream %s geometry: %v %v", s.IRI, g, err)
		}
		if srs != geom.TX83NCF {
			t.Errorf("stream %s srs = %q", s.IRI, srs)
		}
	}
	if rivers != 2 || creeks != 8 {
		t.Errorf("rivers=%d creeks=%d", rivers, creeks)
	}
}

func TestChemicalsStructure(t *testing.T) {
	ds := Chemicals(ChemicalConfig{Seed: 7, Sites: 10})
	if len(ds.Sites) != 10 {
		t.Fatalf("sites = %d", len(ds.Sites))
	}
	ids := map[string]bool{}
	for _, s := range ds.Sites {
		if ids[s.SiteID] {
			t.Errorf("duplicate site id %s", s.SiteID)
		}
		ids[s.SiteID] = true
		if len(s.Chemical) == 0 {
			t.Errorf("site %s has no chemicals", s.IRI)
		}
		env, ok := grdf.EnvelopeOfFeature(ds.Store, s.IRI)
		if !ok || env.Area() == 0 {
			t.Errorf("site %s envelope = %+v %t", s.IRI, env, ok)
		}
		// inventory reachable and typed
		info, ok := ds.Store.FirstObject(s.IRI, HasChemicalInfo)
		if !ok {
			t.Fatalf("site %s has no chem info", s.IRI)
		}
		entries := ds.Store.Objects(info, rdf.IRI(rdf.AppNS+"chemical"))
		if len(entries) != len(s.Chemical) {
			t.Errorf("site %s entries = %d, want %d", s.IRI, len(entries), len(s.Chemical))
		}
		for _, e := range entries {
			if !ds.Store.Has(rdf.T(e, rdf.RDFType, ChemRecord)) {
				t.Errorf("entry %s not typed ChemicalRecord", e)
			}
			if _, ok := ds.Store.FirstObject(e, HasChemCode); !ok {
				t.Errorf("entry %s missing code", e)
			}
		}
	}
}

func TestChemicalsNearStreams(t *testing.T) {
	hydro := Hydrology(HydrologyConfig{Seed: 3})
	chem := Chemicals(ChemicalConfig{Seed: 3, Sites: 20, NearStreams: hydro, NearFraction: 1.0})
	// Every site center must be within 2000ft+footprint of some stream vertex.
	near := 0
	for _, s := range chem.Sites {
		center := s.Bounds.Center()
		for _, st := range hydro.Streams {
			for _, c := range st.Geometry.Coords {
				if center.Dist(c) < 3000 {
					near++
					goto next
				}
			}
		}
	next:
	}
	if near != len(chem.Sites) {
		t.Errorf("near sites = %d / %d", near, len(chem.Sites))
	}
}

func TestWeatherAndLinking(t *testing.T) {
	w := Weather(WeatherConfig{Seed: 5, Stations: 4})
	stations := w.SubjectsOfType(WeatherStation)
	if len(stations) != 4 {
		t.Fatalf("stations = %d", len(stations))
	}
	for _, s := range stations {
		if _, ok := w.FirstObject(s, HasTemperature); !ok {
			t.Errorf("station %s missing temperature", s)
		}
	}
	chem := Chemicals(ChemicalConfig{Seed: 5, Sites: 6})
	merged := chem.Store.Snapshot()
	merged.AddAll(w.Triples())
	n := LinkSitesToStations(merged)
	if n != 6 {
		t.Errorf("linked = %d", n)
	}
	for _, s := range chem.Sites {
		if _, ok := merged.FirstObject(s.IRI, NearStation); !ok {
			t.Errorf("site %s not linked", s.IRI)
		}
	}
}

func TestScenarioShape(t *testing.T) {
	sc := NewScenario(ScenarioConfig{Seed: 11, Sites: 8})
	if sc.Merged.Len() != sc.Hydrology.Store.Len()+sc.Chemical.Store.Len() {
		t.Errorf("merged = %d", sc.Merged.Len())
	}
	if len(sc.Policies.Rules) != 9 {
		t.Errorf("policies = %d", len(sc.Policies.Rules))
	}
	subjects := sc.Policies.Subjects()
	if len(subjects) != 3 {
		t.Errorf("subjects = %v", subjects)
	}
	// policies round-trip through RDF
	back, err := func() (int, error) {
		st := sc.Policies.ToGraph()
		set, err := parseViaStore(st)
		if err != nil {
			return 0, err
		}
		return len(set.Rules), nil
	}()
	if err != nil || back != 9 {
		t.Errorf("policy RDF round trip = %d, %v", back, err)
	}
}

// parseViaStore round-trips a policy graph through the seconto parser.
func parseViaStore(g *rdf.Graph) (*seconto.Set, error) {
	return seconto.Parse(store.FromGraph(g))
}

func TestGeneratedDataValidates(t *testing.T) {
	sc := NewScenario(ScenarioConfig{Seed: 99, Sites: 10})
	merged := sc.Merged.Snapshot()
	merged.AddAll(Weather(WeatherConfig{Seed: 99, Stations: 3}).Triples())
	rep := grdf.Validate(merged)
	if !rep.Valid() {
		t.Errorf("generated data has validation errors: %v", rep.Errors())
	}
	if rep.Checked == 0 {
		t.Error("no geometries checked")
	}
}

func TestHydroTopology(t *testing.T) {
	ds := Hydrology(HydrologyConfig{Seed: 5, Trunks: 2, TributariesPerTrunk: 4})
	st := ds.Store.Snapshot()
	tp, real, err := HydroTopology(ds, st)
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, _, _ := tp.Counts()
	if edges != len(ds.Streams) {
		t.Errorf("edges = %d, want %d", edges, len(ds.Streams))
	}
	// Every tributary mouth coincides with a trunk vertex, but trunk
	// endpoints are its first/last coords; tributary end nodes are interior
	// trunk vertices, so they are distinct nodes with degree >= 1.
	if nodes < len(ds.Streams) {
		t.Errorf("nodes = %d", nodes)
	}
	if errs := tp.Validate(); len(errs) != 0 {
		t.Errorf("Validate = %v", errs)
	}
	if missing := real.Complete(); len(missing) != 0 {
		t.Errorf("unrealized: %v", missing)
	}
	// Every creek edge realization has the creek's length.
	for _, s := range ds.Streams {
		c, ok := real.CurveOf(topo.ID(s.IRI.LocalName()))
		if !ok || c.Length() != s.Geometry.Length() {
			t.Errorf("edge %s realization wrong", s.IRI.LocalName())
		}
	}
	// GRDF encoding landed with the Fig. 2 vocabulary.
	if n := st.Count(nil, rdf.RDFType, grdf.TopoEdge); n != len(ds.Streams) {
		t.Errorf("grdf:Edge triples = %d", n)
	}
	if st.Count(nil, grdf.HasStartNode, nil) != len(ds.Streams) {
		t.Error("hasStartNode triples missing")
	}
	if st.Count(nil, grdf.RealizedBy, nil) == 0 {
		t.Error("realizedBy triples missing")
	}
	// data still validates
	if rep := grdf.Validate(st); !rep.Valid() {
		t.Errorf("topology encoding broke validation: %v", rep.Errors())
	}
}
