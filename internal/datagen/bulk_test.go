package datagen

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

func TestStreamScenarioBatchesAndDeterminism(t *testing.T) {
	cfg := BulkConfig{Seed: 3, Regions: 3, SitesPerRegion: 10, BatchSize: 100}
	var batches [][]rdf.Triple
	var total int
	err := StreamScenario(cfg, func(b []rdf.Triple) error {
		cp := append([]rdf.Triple(nil), b...)
		batches = append(batches, cp)
		total += len(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || len(batches) < 2 {
		t.Fatalf("total=%d batches=%d", total, len(batches))
	}
	// Every batch except the last must be exactly BatchSize.
	for i, b := range batches[:len(batches)-1] {
		if len(b) != cfg.BatchSize {
			t.Fatalf("batch %d has %d triples, want %d", i, len(b), cfg.BatchSize)
		}
	}
	// Same seed, same stream.
	var again int
	if err := StreamScenario(cfg, func(b []rdf.Triple) error {
		again += len(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if again != total {
		t.Fatalf("non-deterministic: %d then %d triples", total, again)
	}
}

func TestStreamScenarioRegionIRIsDisjoint(t *testing.T) {
	st := store.New()
	if _, _, err := BulkLoad(st, BulkConfig{Seed: 1, Regions: 2, SitesPerRegion: 5}); err != nil {
		t.Fatal(err)
	}
	sites := st.SubjectsOfType(ChemSite)
	// Two tiles of five sites each: without the IRI prefix they would
	// collide onto five subjects.
	if len(sites) != 10 {
		t.Fatalf("sites = %d, want 10 (regions must not collide)", len(sites))
	}
	var r1, r2 int
	for _, s := range sites {
		iri := string(s.(rdf.IRI))
		switch {
		case strings.Contains(iri, "r1_chem_site"):
			r1++
		case strings.Contains(iri, "r2_chem_site"):
			r2++
		}
	}
	if r1 != 5 || r2 != 5 {
		t.Fatalf("region prefixes r1=%d r2=%d, want 5/5", r1, r2)
	}
}

// TestBulkLoadBatchesWALRecords is the point of the streaming loader: a
// durable store must journal one WAL record per batch, not per triple.
func TestBulkLoadBatchesWALRecords(t *testing.T) {
	st := store.New()
	reg := obs.NewRegistry()
	dir := t.TempDir()
	repo, err := wal.Open(st, wal.Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BulkConfig{Seed: 5, Regions: 2, SitesPerRegion: 20, BatchSize: 250}
	triples, batches, err := BulkLoad(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if triples != st.Len() {
		t.Fatalf("reported %d triples, store holds %d", triples, st.Len())
	}
	if triples < 2*cfg.BatchSize {
		t.Fatalf("fixture too small to exercise batching: %d triples", triples)
	}
	var appends float64
	for _, m := range reg.Snapshot() {
		if m.Name == "grdf_wal_appends_total" {
			appends += m.Value
		}
	}
	if int(appends) != batches {
		t.Fatalf("WAL appended %v records for %d batches — batching broke", appends, batches)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must reconstruct the whole fixture from the batched
	// records.
	st2 := store.New()
	repo2, err := wal.Open(st2, wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	if st2.Len() != triples {
		t.Fatalf("recovered %d triples, want %d", st2.Len(), triples)
	}
}
