package align

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grdf"
	"repro/internal/rdf"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"EnvelopeWithTimePeriod", []string{"envelope", "with", "time", "period"}},
		{"hasCenterLineOf", []string{"has", "center", "line", "of"}},
		{"chem_site-name", []string{"chem", "site", "name"}},
		{"TopoSolid", []string{"topo", "solid"}},
		{"RootGRDFObject", []string{"root", "grdf", "object"}},
		{"", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestLexicalSimilarity(t *testing.T) {
	if s := LexicalSimilarity("Stream", "Stream", nil); s != 1 {
		t.Errorf("identical = %g", s)
	}
	if s := LexicalSimilarity("ChemSite", "chem_site", nil); s != 1 {
		t.Errorf("case/sep variants = %g", s)
	}
	if s := LexicalSimilarity("Stream", "Watercourse", nil); s > 0.5 {
		t.Errorf("unrelated = %g", s)
	}
	syn := map[string]string{"stream": "watercourse"}
	if s := LexicalSimilarity("Stream", "Watercourse", syn); s != 1 {
		t.Errorf("synonym = %g", s)
	}
	if s := LexicalSimilarity("SiteName", "NameSite", nil); s != 1 {
		t.Errorf("token order = %g (jaccard should ignore order)", s)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// buildVariant derives a domain ontology from GRDF by renaming classes.
func buildVariant(renames map[string]string) (*rdf.Graph, map[rdf.IRI]rdf.IRI) {
	const domainNS = "http://domain.example/onto#"
	src := grdf.Ontology()
	out := rdf.NewGraph()
	gold := map[rdf.IRI]rdf.IRI{}
	rename := func(iri rdf.IRI) rdf.IRI {
		local := iri.LocalName()
		if alt, ok := renames[local]; ok {
			local = alt
		}
		return rdf.IRI(domainNS + local)
	}
	for _, t := range src.Match(nil, rdf.RDFType, rdf.OWLClass) {
		iri := t.Subject.(rdf.IRI)
		ren := rename(iri)
		out.Add(rdf.T(ren, rdf.RDFType, rdf.OWLClass))
		gold[iri] = ren
		for _, s := range src.Objects(iri, rdf.RDFSSubClassOf) {
			if sup, ok := s.(rdf.IRI); ok {
				out.Add(rdf.T(ren, rdf.RDFSSubClassOf, rename(sup)))
			}
		}
	}
	return out, gold
}

func TestAlignIdenticalNames(t *testing.T) {
	variant, gold := buildVariant(nil)
	a := Align(grdf.Ontology(), variant, Options{})
	m := Evaluate(a, gold)
	if m.Precision < 0.99 || m.Recall < 0.99 {
		t.Errorf("identical rename: P=%.2f R=%.2f", m.Precision, m.Recall)
	}
}

func TestAlignWithRenamings(t *testing.T) {
	renames := map[string]string{
		"Feature":     "GeoFeature",
		"Curve":       "Arc",
		"Surface":     "Area",
		"Point":       "Location",
		"Envelope":    "BoundingBox",
		"Observation": "Measurement",
	}
	variant, gold := buildVariant(renames)
	syn := map[string]string{
		"arc": "curve", "area": "surface", "location": "point",
		"measurement": "observation", "bounding": "envelope", "box": "",
		"geo": "",
	}
	a := Align(grdf.Ontology(), variant, Options{Synonyms: syn})
	m := Evaluate(a, gold)
	if m.F1 < 0.85 {
		t.Errorf("renamed alignment F1 = %.2f (P=%.2f R=%.2f, %d/%d/%d)",
			m.F1, m.Precision, m.Recall, m.Correct, m.Found, m.Expected)
	}
}

func TestAlignOneToOne(t *testing.T) {
	variant, _ := buildVariant(nil)
	a := Align(grdf.Ontology(), variant, Options{})
	seenL := map[rdf.IRI]bool{}
	seenR := map[rdf.IRI]bool{}
	for _, p := range a.Pairs {
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("alignment not one-to-one at %v", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
		if p.Score <= 0 || p.Score > 1.0001 {
			t.Errorf("score out of range: %v", p)
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	a := &Alignment{Pairs: []Correspondence{
		{Left: "l1", Right: "r1"}, {Left: "l2", Right: "WRONG"},
	}}
	gold := map[rdf.IRI]rdf.IRI{"l1": "r1", "l2": "r2", "l3": "r3"}
	m := Evaluate(a, gold)
	if m.Correct != 1 || m.Found != 2 || m.Expected != 3 {
		t.Errorf("counts = %+v", m)
	}
	if math.Abs(m.Precision-0.5) > 1e-9 || math.Abs(m.Recall-1.0/3) > 1e-9 {
		t.Errorf("P/R = %g %g", m.Precision, m.Recall)
	}
	empty := Evaluate(&Alignment{}, map[rdf.IRI]rdf.IRI{})
	if empty.F1 != 0 {
		t.Errorf("empty F1 = %g", empty.F1)
	}
}

// Property: similarity is symmetric and bounded.
func TestQuickLexicalSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		s1 := LexicalSimilarity(a, b, nil)
		s2 := LexicalSimilarity(b, a, nil)
		return math.Abs(s1-s2) < 1e-9 && s1 >= 0 && s1 <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
