// Package align makes Section 2's related-work discussion executable: an
// ontology alignment toolkit in the spirit of Kokla & Kavouras's concept
// matching — lexical similarity (edit distance, token overlap, a synonym
// table) combined with structural similarity over the class hierarchies, and
// a greedy stable matching that yields one-to-one correspondences. GRDF
// anticipates "lower-level ontologies that belong to separate application
// domains where similar or overlapping concepts could be specified
// differently; to reconcile the deviation one can use ontology alignment
// techniques."
package align

import (
	"sort"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Correspondence links a concept of the left ontology to one of the right.
type Correspondence struct {
	Left  rdf.IRI
	Right rdf.IRI
	Score float64
}

// Alignment is a set of one-to-one correspondences.
type Alignment struct {
	Pairs []Correspondence
}

// Options weights the matchers.
type Options struct {
	// LexicalWeight scales the name-similarity contribution (default 0.7).
	LexicalWeight float64
	// StructuralWeight scales the hierarchy-similarity contribution
	// (default 0.3).
	StructuralWeight float64
	// Threshold discards correspondences scoring below it (default 0.55).
	Threshold float64
	// Synonyms maps lower-cased tokens to canonical forms, e.g.
	// {"stream": "watercourse"}.
	Synonyms map[string]string
}

func (o *Options) defaults() {
	if o.LexicalWeight == 0 && o.StructuralWeight == 0 {
		o.LexicalWeight, o.StructuralWeight = 0.7, 0.3
	}
	if o.Threshold == 0 {
		o.Threshold = 0.55
	}
}

// Concept summarises one class for matching.
type Concept struct {
	IRI rdf.IRI
	// Supers are the local names of direct superclasses.
	Supers []string
	// Label is an optional rdfs:label.
	Label string
}

// ConceptsOf extracts the owl:Class concepts of a graph.
func ConceptsOf(g *rdf.Graph) []Concept {
	var out []Concept
	for _, t := range g.Match(nil, rdf.RDFType, rdf.OWLClass) {
		iri, ok := t.Subject.(rdf.IRI)
		if !ok {
			continue
		}
		c := Concept{IRI: iri}
		for _, s := range g.Objects(iri, rdf.RDFSSubClassOf) {
			if sup, ok := s.(rdf.IRI); ok {
				c.Supers = append(c.Supers, sup.LocalName())
			}
		}
		if l, ok := g.FirstObject(iri, rdf.RDFSLabel); ok {
			if lit, ok := l.(rdf.Literal); ok {
				c.Label = lit.Value
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IRI < out[j].IRI })
	return out
}

// Align matches the concepts of the left ontology to the right one.
func Align(left, right *rdf.Graph, opts Options) *Alignment {
	opts.defaults()
	ls, rs := ConceptsOf(left), ConceptsOf(right)

	type cand struct {
		li, ri int
		score  float64
	}
	var cands []cand
	for i, l := range ls {
		for j, r := range rs {
			lex := LexicalSimilarity(l.IRI.LocalName(), r.IRI.LocalName(), opts.Synonyms)
			if l.Label != "" && r.Label != "" {
				if labelSim := LexicalSimilarity(l.Label, r.Label, opts.Synonyms); labelSim > lex {
					lex = labelSim
				}
			}
			str := structuralSimilarity(l, r, opts.Synonyms)
			score := opts.LexicalWeight*lex + opts.StructuralWeight*str
			if score >= opts.Threshold {
				cands = append(cands, cand{li: i, ri: j, score: score})
			}
		}
	}
	// Greedy stable matching: best score first, one-to-one.
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if ls[cands[a].li].IRI != ls[cands[b].li].IRI {
			return ls[cands[a].li].IRI < ls[cands[b].li].IRI
		}
		return rs[cands[a].ri].IRI < rs[cands[b].ri].IRI
	})
	usedL := map[int]bool{}
	usedR := map[int]bool{}
	out := &Alignment{}
	for _, c := range cands {
		if usedL[c.li] || usedR[c.ri] {
			continue
		}
		usedL[c.li] = true
		usedR[c.ri] = true
		out.Pairs = append(out.Pairs, Correspondence{
			Left: ls[c.li].IRI, Right: rs[c.ri].IRI, Score: c.score,
		})
	}
	sort.Slice(out.Pairs, func(i, j int) bool { return out.Pairs[i].Left < out.Pairs[j].Left })
	return out
}

// LexicalSimilarity scores two concept names in [0,1]: the maximum of
// normalized-token Jaccard and 1 - normalized Levenshtein distance, after
// canonicalizing through the synonym table.
func LexicalSimilarity(a, b string, synonyms map[string]string) float64 {
	ta := canonicalTokens(a, synonyms)
	tb := canonicalTokens(b, synonyms)
	jac := jaccard(ta, tb)
	ca := strings.Join(ta, "")
	cb := strings.Join(tb, "")
	lev := 1.0
	if len(ca)+len(cb) > 0 {
		d := levenshtein(ca, cb)
		m := max(len(ca), len(cb))
		lev = 1 - float64(d)/float64(m)
	}
	if jac > lev {
		return jac
	}
	return lev
}

func structuralSimilarity(l, r Concept, synonyms map[string]string) float64 {
	if len(l.Supers) == 0 || len(r.Supers) == 0 {
		return 0
	}
	best := 0.0
	for _, a := range l.Supers {
		for _, b := range r.Supers {
			if s := LexicalSimilarity(a, b, synonyms); s > best {
				best = s
			}
		}
	}
	return best
}

// Tokenize splits a concept name on camelCase, digits, '_', '-' and spaces.
func Tokenize(name string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, c := range runes {
		switch {
		case c == '_' || c == '-' || c == ' ' || c == '.':
			flush()
		case unicode.IsUpper(c):
			// split at lower→Upper and at Upper followed by lower inside an
			// acronym run (e.g. "GRDFObject" → "grdf", "object")
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				flush()
			}
			cur.WriteRune(c)
		default:
			cur.WriteRune(c)
		}
	}
	flush()
	return tokens
}

func canonicalTokens(name string, synonyms map[string]string) []string {
	toks := Tokenize(name)
	for i, t := range toks {
		if c, ok := synonyms[t]; ok {
			toks[i] = c
		}
	}
	sort.Strings(toks)
	return toks
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := map[string]bool{}
	for _, t := range a {
		setA[t] = true
	}
	inter, union := 0, len(setA)
	seenB := map[string]bool{}
	for _, t := range b {
		if seenB[t] {
			continue
		}
		seenB[t] = true
		if setA[t] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// levenshtein computes the edit distance with a two-row DP.
func levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Metrics reports alignment quality against a gold standard.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	Correct   int
	Found     int
	Expected  int
}

// Evaluate compares an alignment against gold pairs (left → right).
func Evaluate(a *Alignment, gold map[rdf.IRI]rdf.IRI) Metrics {
	m := Metrics{Found: len(a.Pairs), Expected: len(gold)}
	for _, p := range a.Pairs {
		if gold[p.Left] == p.Right {
			m.Correct++
		}
	}
	if m.Found > 0 {
		m.Precision = float64(m.Correct) / float64(m.Found)
	}
	if m.Expected > 0 {
		m.Recall = float64(m.Correct) / float64(m.Expected)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
