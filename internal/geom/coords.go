package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// GML coordinate codec. The paper's Lists 6–7 carry coordinates in the GML
// <coordinates> form: comma-separated tuples separated by whitespace, e.g.
// "2533822.17263276,7108248.82783879 2533901.1,7108303.4".

// ParseCoordinates parses a GML coordinates string.
func ParseCoordinates(s string) ([]Coord, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("geom: empty coordinates string")
	}
	out := make([]Coord, 0, len(fields))
	for i, f := range fields {
		parts := strings.Split(f, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("geom: tuple %d (%q) needs x,y", i, f)
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: tuple %d: bad x %q: %w", i, parts[0], err)
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: tuple %d: bad y %q: %w", i, parts[1], err)
		}
		out = append(out, Coord{X: x, Y: y})
	}
	return out, nil
}

// FormatCoordinates renders coordinates in GML form.
func FormatCoordinates(cs []Coord) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = strconv.FormatFloat(c.X, 'f', -1, 64) + "," + strconv.FormatFloat(c.Y, 'f', -1, 64)
	}
	return strings.Join(parts, " ")
}

// ParsePosList parses a GML 3 posList: whitespace-separated scalars in x y
// pairs.
func ParsePosList(s string) ([]Coord, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || len(fields)%2 != 0 {
		return nil, fmt.Errorf("geom: posList needs an even number of values, got %d", len(fields))
	}
	out := make([]Coord, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		x, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: posList value %d: %w", i, err)
		}
		y, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			return nil, fmt.Errorf("geom: posList value %d: %w", i+1, err)
		}
		out = append(out, Coord{X: x, Y: y})
	}
	return out, nil
}

// FormatPosList renders coordinates in GML 3 posList form.
func FormatPosList(cs []Coord) string {
	parts := make([]string, 0, len(cs)*2)
	for _, c := range cs {
		parts = append(parts,
			strconv.FormatFloat(c.X, 'f', -1, 64),
			strconv.FormatFloat(c.Y, 'f', -1, 64))
	}
	return strings.Join(parts, " ")
}
