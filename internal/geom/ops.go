package geom

import (
	"math"
)

// Spatial predicates and measures. These back the grdf: SPARQL filter
// functions (grdf:within, grdf:intersects, grdf:distance) and the G-SACS
// spatial policy conditions.

const eps = 1e-9

// orient returns >0 when a→b→c turns counter-clockwise, <0 clockwise, 0
// collinear.
func orient(a, b, c Coord) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether p lies on segment ab (assuming collinearity).
func onSegment(a, b, p Coord) bool {
	return math.Min(a.X, b.X)-eps <= p.X && p.X <= math.Max(a.X, b.X)+eps &&
		math.Min(a.Y, b.Y)-eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+eps
}

// SegmentsIntersect reports whether segments ab and cd share a point.
func SegmentsIntersect(a, b, c, d Coord) bool {
	o1, o2 := orient(a, b, c), orient(a, b, d)
	o3, o4 := orient(c, d, a), orient(c, d, b)
	if ((o1 > eps && o2 < -eps) || (o1 < -eps && o2 > eps)) &&
		((o3 > eps && o4 < -eps) || (o3 < -eps && o4 > eps)) {
		return true
	}
	switch {
	case math.Abs(o1) <= eps && onSegment(a, b, c):
		return true
	case math.Abs(o2) <= eps && onSegment(a, b, d):
		return true
	case math.Abs(o3) <= eps && onSegment(c, d, a):
		return true
	case math.Abs(o4) <= eps && onSegment(c, d, b):
		return true
	}
	return false
}

// pointInRing applies even-odd ray casting; boundary points count as inside.
func pointInRing(p Coord, ring []Coord) bool {
	// boundary check first
	for i := 1; i < len(ring); i++ {
		a, b := ring[i-1], ring[i]
		if math.Abs(orient(a, b, p)) <= eps && onSegment(a, b, p) {
			return true
		}
	}
	inside := false
	for i := 1; i < len(ring); i++ {
		a, b := ring[i-1], ring[i]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// PointInPolygon reports whether p lies inside poly (holes excluded,
// boundaries inclusive).
func PointInPolygon(p Coord, poly Polygon) bool {
	if !pointInRing(p, poly.Exterior.Coords) {
		return false
	}
	for _, h := range poly.Holes {
		if pointInRing(p, h.Coords) {
			// inside a hole only counts when on the hole's boundary
			onBoundary := false
			for i := 1; i < len(h.Coords); i++ {
				a, b := h.Coords[i-1], h.Coords[i]
				if math.Abs(orient(a, b, p)) <= eps && onSegment(a, b, p) {
					onBoundary = true
					break
				}
			}
			if !onBoundary {
				return false
			}
		}
	}
	return true
}

// segments yields the segment list of a coordinate chain.
func segments(cs []Coord) [][2]Coord {
	if len(cs) < 2 {
		return nil
	}
	out := make([][2]Coord, 0, len(cs)-1)
	for i := 1; i < len(cs); i++ {
		out = append(out, [2]Coord{cs[i-1], cs[i]})
	}
	return out
}

// geometrySegments extracts the boundary/line segments of any geometry.
func geometrySegments(g Geometry) [][2]Coord {
	switch v := g.(type) {
	case Point:
		return nil
	case LineString:
		return segments(v.Coords)
	case LinearRing:
		return segments(v.Coords)
	case Polygon:
		out := segments(v.Exterior.Coords)
		for _, h := range v.Holes {
			out = append(out, segments(h.Coords)...)
		}
		return out
	case Solid:
		var out [][2]Coord
		for _, p := range v.Boundary {
			out = append(out, geometrySegments(p)...)
		}
		return out
	case MultiPoint:
		return nil
	case MultiCurve:
		var out [][2]Coord
		for _, c := range v.Curves {
			out = append(out, segments(c.Coords)...)
		}
		return out
	case MultiSurface:
		var out [][2]Coord
		for _, s := range v.Surfaces {
			out = append(out, geometrySegments(s)...)
		}
		return out
	case CompositeCurve:
		var out [][2]Coord
		for _, m := range v.Members {
			out = append(out, geometrySegments(m)...)
		}
		return out
	case CompositeSurface:
		var out [][2]Coord
		for _, m := range v.Members {
			out = append(out, geometrySegments(m)...)
		}
		return out
	case Complex:
		var out [][2]Coord
		for _, m := range v.Members {
			out = append(out, geometrySegments(m)...)
		}
		return out
	case Envelope:
		if v.Empty {
			return nil
		}
		ll, ur := v.Corners()
		lr := Coord{ur.X, ll.Y}
		ul := Coord{ll.X, ur.Y}
		return segments([]Coord{ll, lr, ur, ul, ll})
	}
	return nil
}

// representativePoints extracts coordinates that can witness containment.
func representativePoints(g Geometry) []Coord {
	switch v := g.(type) {
	case Point:
		return []Coord{v.C}
	case LineString:
		return v.Coords
	case LinearRing:
		return v.Coords
	case Polygon:
		return v.Exterior.Coords
	case Solid:
		var out []Coord
		for _, p := range v.Boundary {
			out = append(out, p.Exterior.Coords...)
		}
		return out
	case MultiPoint:
		out := make([]Coord, len(v.Points))
		for i, p := range v.Points {
			out[i] = p.C
		}
		return out
	case MultiCurve:
		var out []Coord
		for _, c := range v.Curves {
			out = append(out, c.Coords...)
		}
		return out
	case MultiSurface:
		var out []Coord
		for _, s := range v.Surfaces {
			out = append(out, s.Exterior.Coords...)
		}
		return out
	case CompositeCurve:
		var out []Coord
		for _, m := range v.Members {
			out = append(out, representativePoints(m)...)
		}
		return out
	case CompositeSurface:
		var out []Coord
		for _, m := range v.Members {
			out = append(out, representativePoints(m)...)
		}
		return out
	case Complex:
		var out []Coord
		for _, m := range v.Members {
			out = append(out, representativePoints(m)...)
		}
		return out
	case Envelope:
		if v.Empty {
			return nil
		}
		ll, ur := v.Corners()
		return []Coord{ll, ur, v.Center()}
	}
	return nil
}

// containersOf lists the areal components of g (for containment tests).
func containersOf(g Geometry) []Polygon {
	switch v := g.(type) {
	case Polygon:
		return []Polygon{v}
	case MultiSurface:
		return v.Surfaces
	case CompositeSurface:
		return v.Members
	case Solid:
		return v.Boundary
	case Complex:
		var out []Polygon
		for _, m := range v.Members {
			out = append(out, containersOf(m)...)
		}
		return out
	case Envelope:
		if v.Empty {
			return nil
		}
		ll, ur := v.Corners()
		ring, err := NewLinearRing([]Coord{ll, {ur.X, ll.Y}, ur, {ll.X, ur.Y}, ll})
		if err != nil {
			return nil
		}
		return []Polygon{NewPolygon(ring)}
	}
	return nil
}

// Intersects reports whether a and b share at least one point. Envelope
// rejection runs first; then boundary-segment intersection and containment
// are tested.
func Intersects(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Envelope().IntersectsEnv(b.Envelope()) {
		return false
	}
	segsA, segsB := geometrySegments(a), geometrySegments(b)
	for _, sa := range segsA {
		for _, sb := range segsB {
			if SegmentsIntersect(sa[0], sa[1], sb[0], sb[1]) {
				return true
			}
		}
	}
	// No edge crossings: one may contain the other, or point geometries.
	for _, poly := range containersOf(a) {
		for _, p := range representativePoints(b) {
			if PointInPolygon(p, poly) {
				return true
			}
		}
	}
	for _, poly := range containersOf(b) {
		for _, p := range representativePoints(a) {
			if PointInPolygon(p, poly) {
				return true
			}
		}
	}
	// Point-point / point-line coincidence.
	if pa, ok := a.(Point); ok {
		for _, sb := range segsB {
			if math.Abs(orient(sb[0], sb[1], pa.C)) <= eps && onSegment(sb[0], sb[1], pa.C) {
				return true
			}
		}
		if pb, ok := b.(Point); ok {
			return pa.C.Dist(pb.C) <= eps
		}
	}
	if pb, ok := b.(Point); ok {
		for _, sa := range segsA {
			if math.Abs(orient(sa[0], sa[1], pb.C)) <= eps && onSegment(sa[0], sa[1], pb.C) {
				return true
			}
		}
	}
	return false
}

// Within reports whether every point of a lies inside b. b must have areal
// components (Polygon, MultiSurface, Envelope, …).
func Within(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !b.Envelope().ContainsEnv(a.Envelope()) {
		return false
	}
	containers := containersOf(b)
	if len(containers) == 0 {
		return false
	}
	pts := representativePoints(a)
	if len(pts) == 0 {
		return false
	}
	for _, p := range pts {
		inSome := false
		for _, poly := range containers {
			if PointInPolygon(p, poly) {
				inSome = true
				break
			}
		}
		if !inSome {
			return false
		}
	}
	// Edges of a must not cross container boundaries outward; for convex and
	// well-formed data the vertex test suffices, but guard against a crossing
	// edge whose endpoints are inside different components.
	if len(containers) > 1 {
		for _, sa := range geometrySegments(a) {
			mid := Coord{(sa[0].X + sa[1].X) / 2, (sa[0].Y + sa[1].Y) / 2}
			inSome := false
			for _, poly := range containers {
				if PointInPolygon(mid, poly) {
					inSome = true
					break
				}
			}
			if !inSome {
				return false
			}
		}
	}
	return true
}

// Contains reports Within(b, a).
func Contains(a, b Geometry) bool { return Within(b, a) }

// pointSegDist returns the distance from p to segment ab.
func pointSegDist(p, a, b Coord) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	proj := Coord{a.X + t*ab.X, a.Y + t*ab.Y}
	return p.Dist(proj)
}

// Distance returns the minimum Euclidean distance between a and b
// (0 when they intersect).
func Distance(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	if Intersects(a, b) {
		return 0
	}
	best := math.Inf(1)
	ptsA, ptsB := representativePoints(a), representativePoints(b)
	segsA, segsB := geometrySegments(a), geometrySegments(b)
	for _, p := range ptsA {
		for _, s := range segsB {
			best = math.Min(best, pointSegDist(p, s[0], s[1]))
		}
		for _, q := range ptsB {
			best = math.Min(best, p.Dist(q))
		}
	}
	for _, p := range ptsB {
		for _, s := range segsA {
			best = math.Min(best, pointSegDist(p, s[0], s[1]))
		}
	}
	return best
}

// Centroid returns a representative center: the mean of representative
// points (adequate for layer labelling and distance heuristics).
func Centroid(g Geometry) Coord {
	pts := representativePoints(g)
	if len(pts) == 0 {
		return Coord{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	return Coord{sx / float64(len(pts)), sy / float64(len(pts))}
}

// Buffer returns an axis-aligned envelope expanded by d in every direction —
// a cheap conservative buffer used by the incident-radius queries in the
// contamination scenario.
func Buffer(g Geometry, d float64) Envelope {
	e := g.Envelope()
	if e.Empty {
		return e
	}
	return Envelope{MinX: e.MinX - d, MinY: e.MinY - d, MaxX: e.MaxX + d, MaxY: e.MaxY + d}
}
