package geom

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ring(t *testing.T, cs ...Coord) LinearRing {
	t.Helper()
	r, err := NewLinearRing(cs)
	if err != nil {
		t.Fatalf("NewLinearRing: %v", err)
	}
	return r
}

func unitSquare(t *testing.T) Polygon {
	t.Helper()
	return NewPolygon(ring(t, Coord{0, 0}, Coord{1, 0}, Coord{1, 1}, Coord{0, 1}, Coord{0, 0}))
}

func TestEnvelopeBasics(t *testing.T) {
	e := EnvelopeOf(Coord{1, 2}, Coord{3, -1})
	if e.MinX != 1 || e.MinY != -1 || e.MaxX != 3 || e.MaxY != 2 {
		t.Errorf("EnvelopeOf = %+v", e)
	}
	if e.Width() != 2 || e.Height() != 3 || e.Area() != 6 {
		t.Errorf("W/H/A = %g %g %g", e.Width(), e.Height(), e.Area())
	}
	if c := e.Center(); c.X != 2 || c.Y != 0.5 {
		t.Errorf("Center = %v", c)
	}
	ll, ur := e.Corners()
	if ll != (Coord{1, -1}) || ur != (Coord{3, 2}) {
		t.Errorf("Corners = %v %v", ll, ur)
	}
	if !e.ContainsCoord(Coord{2, 0}) || e.ContainsCoord(Coord{5, 5}) {
		t.Error("ContainsCoord wrong")
	}
}

func TestEnvelopeEmptyIdentity(t *testing.T) {
	e := EmptyEnvelope()
	full := EnvelopeOf(Coord{1, 1})
	if got := e.Union(full); got != full {
		t.Errorf("empty Union = %+v", got)
	}
	if got := full.Union(e); got != full {
		t.Errorf("Union empty = %+v", got)
	}
	if e.IntersectsEnv(full) || full.IntersectsEnv(e) {
		t.Error("empty envelope intersects")
	}
	if e.ContainsEnv(full) || full.ContainsEnv(e) {
		t.Error("empty envelope containment wrong")
	}
	if e.Area() != 0 {
		t.Error("empty area != 0")
	}
}

func TestLineString(t *testing.T) {
	if _, err := NewLineString([]Coord{{0, 0}}); err == nil {
		t.Error("1-point LineString accepted")
	}
	l, err := NewLineString([]Coord{{0, 0}, {3, 4}, {3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Length() != 6 {
		t.Errorf("Length = %g", l.Length())
	}
	if l.StartPoint().C != (Coord{0, 0}) || l.EndPoint().C != (Coord{3, 5}) {
		t.Error("endpoints wrong")
	}
	rev := l.Reverse()
	if rev.Coords[0] != (Coord{3, 5}) || rev.Length() != 6 {
		t.Error("Reverse wrong")
	}
	if l.Dimension() != 1 || l.Kind() != KindLineString {
		t.Error("metadata wrong")
	}
}

func TestLinearRingValidation(t *testing.T) {
	if _, err := NewLinearRing([]Coord{{0, 0}, {1, 0}, {0, 0}}); err == nil {
		t.Error("too-small ring accepted")
	}
	if _, err := NewLinearRing([]Coord{{0, 0}, {1, 0}, {1, 1}, {0, 1}}); err == nil {
		t.Error("unclosed ring accepted")
	}
}

func TestRingOrientationAndArea(t *testing.T) {
	ccw := ring(t, Coord{0, 0}, Coord{1, 0}, Coord{1, 1}, Coord{0, 1}, Coord{0, 0})
	if !ccw.IsCCW() || ccw.SignedArea() != 1 {
		t.Errorf("CCW ring: IsCCW=%t area=%g", ccw.IsCCW(), ccw.SignedArea())
	}
	cw := ring(t, Coord{0, 0}, Coord{0, 1}, Coord{1, 1}, Coord{1, 0}, Coord{0, 0})
	if cw.IsCCW() || cw.SignedArea() != -1 {
		t.Errorf("CW ring: IsCCW=%t area=%g", cw.IsCCW(), cw.SignedArea())
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	outer := ring(t, Coord{0, 0}, Coord{4, 0}, Coord{4, 4}, Coord{0, 4}, Coord{0, 0})
	hole := ring(t, Coord{1, 1}, Coord{2, 1}, Coord{2, 2}, Coord{1, 2}, Coord{1, 1})
	p := NewPolygon(outer, hole)
	if p.Area() != 15 {
		t.Errorf("Area = %g", p.Area())
	}
	if !strings.Contains(p.String(), "POLYGON((") {
		t.Errorf("String = %s", p)
	}
}

func TestPointInPolygon(t *testing.T) {
	outer := ring(t, Coord{0, 0}, Coord{4, 0}, Coord{4, 4}, Coord{0, 4}, Coord{0, 0})
	hole := ring(t, Coord{1, 1}, Coord{2, 1}, Coord{2, 2}, Coord{1, 2}, Coord{1, 1})
	p := NewPolygon(outer, hole)
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{3, 3}, true},      // interior
		{Coord{1.5, 1.5}, false}, // inside hole
		{Coord{5, 5}, false},     // outside
		{Coord{0, 0}, true},      // corner
		{Coord{2, 0}, true},      // edge
		{Coord{1, 1.5}, true},    // on hole boundary
	}
	for _, c := range cases {
		if got := PointInPolygon(c.c, p); got != c.want {
			t.Errorf("PointInPolygon(%v) = %t, want %t", c.c, got, c.want)
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Coord
		want       bool
	}{
		{Coord{0, 0}, Coord{2, 2}, Coord{0, 2}, Coord{2, 0}, true},  // X cross
		{Coord{0, 0}, Coord{1, 1}, Coord{2, 2}, Coord{3, 3}, false}, // collinear apart
		{Coord{0, 0}, Coord{2, 2}, Coord{1, 1}, Coord{3, 3}, true},  // collinear overlap
		{Coord{0, 0}, Coord{1, 0}, Coord{1, 0}, Coord{2, 5}, true},  // endpoint touch
		{Coord{0, 0}, Coord{1, 0}, Coord{0, 1}, Coord{1, 1}, false}, // parallel
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: = %t, want %t", i, got, c.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	sq := unitSquare(t)
	line, _ := NewLineString([]Coord{{-1, 0.5}, {2, 0.5}}) // crosses square
	if !Intersects(sq, line) {
		t.Error("line crossing square not detected")
	}
	inside, _ := NewLineString([]Coord{{0.2, 0.2}, {0.8, 0.8}}) // fully inside
	if !Intersects(sq, inside) {
		t.Error("contained line not detected")
	}
	outside, _ := NewLineString([]Coord{{5, 5}, {6, 6}})
	if Intersects(sq, outside) {
		t.Error("far line detected")
	}
	if !Intersects(NewPoint(0.5, 0.5), sq) {
		t.Error("point in polygon not detected")
	}
	if Intersects(NewPoint(9, 9), sq) {
		t.Error("far point detected")
	}
	if !Intersects(NewPoint(0.5, 0), sq) {
		t.Error("point on boundary not detected")
	}
}

func TestWithinContains(t *testing.T) {
	big := NewPolygon(ring(t, Coord{0, 0}, Coord{10, 0}, Coord{10, 10}, Coord{0, 10}, Coord{0, 0}))
	small := NewPolygon(ring(t, Coord{2, 2}, Coord{3, 2}, Coord{3, 3}, Coord{2, 3}, Coord{2, 2}))
	if !Within(small, big) || !Contains(big, small) {
		t.Error("containment not detected")
	}
	if Within(big, small) {
		t.Error("inverted containment")
	}
	line, _ := NewLineString([]Coord{{1, 1}, {9, 9}})
	if !Within(line, big) {
		t.Error("line within polygon not detected")
	}
	if !Within(NewPoint(5, 5), big) {
		t.Error("point within polygon not detected")
	}
	crossing, _ := NewLineString([]Coord{{5, 5}, {15, 5}})
	if Within(crossing, big) {
		t.Error("crossing line reported within")
	}
}

func TestWithinEnvelopeContainer(t *testing.T) {
	env := EnvelopeOf(Coord{0, 0}, Coord{10, 10})
	if !Within(NewPoint(3, 3), env) {
		t.Error("point within envelope not detected")
	}
	if Within(NewPoint(30, 3), env) {
		t.Error("far point within envelope")
	}
}

func TestDistance(t *testing.T) {
	sq := unitSquare(t)
	if d := Distance(sq, NewPoint(3, 0.5)); math.Abs(d-2) > 1e-9 {
		t.Errorf("Distance = %g, want 2", d)
	}
	if d := Distance(sq, NewPoint(0.5, 0.5)); d != 0 {
		t.Errorf("Distance inside = %g, want 0", d)
	}
	a, _ := NewLineString([]Coord{{0, 0}, {1, 0}})
	b, _ := NewLineString([]Coord{{0, 3}, {1, 3}})
	if d := Distance(a, b); math.Abs(d-3) > 1e-9 {
		t.Errorf("line distance = %g", d)
	}
}

func TestCentroidBuffer(t *testing.T) {
	sq := unitSquare(t)
	c := Centroid(sq)
	// mean of ring vertices (0,0 appears twice): (2/5, 2/5)
	if math.Abs(c.X-0.4) > 1e-9 || math.Abs(c.Y-0.4) > 1e-9 {
		t.Errorf("Centroid = %v", c)
	}
	buf := Buffer(sq, 2)
	if buf.MinX != -2 || buf.MaxX != 3 {
		t.Errorf("Buffer = %+v", buf)
	}
}

func TestMultiAggregates(t *testing.T) {
	l1, _ := NewLineString([]Coord{{0, 0}, {1, 0}})
	l2, _ := NewLineString([]Coord{{5, 5}, {5, 7}})
	mc := MultiCurve{Curves: []LineString{l1, l2}}
	if mc.Length() != 3 {
		t.Errorf("MultiCurve length = %g", mc.Length())
	}
	if mc.Dimension() != 1 || mc.IsEmpty() {
		t.Error("MultiCurve metadata wrong")
	}
	sq := unitSquare(t)
	ms := MultiSurface{Surfaces: []Polygon{sq, sq}}
	if ms.Area() != 2 {
		t.Errorf("MultiSurface area = %g", ms.Area())
	}
	mp := MultiPoint{Points: []Point{NewPoint(0, 0), NewPoint(2, 2)}}
	if mp.Envelope().Area() != 4 {
		t.Errorf("MultiPoint envelope = %+v", mp.Envelope())
	}
}

func TestCompositeCurveContiguity(t *testing.T) {
	l1, _ := NewLineString([]Coord{{0, 0}, {1, 1}})
	l2, _ := NewLineString([]Coord{{1, 1}, {2, 0}})
	l3, _ := NewLineString([]Coord{{9, 9}, {10, 10}})
	cc, err := NewCompositeCurve(l1, l2)
	if err != nil {
		t.Fatalf("contiguous rejected: %v", err)
	}
	if _, err := NewCompositeCurve(l1, l3); err == nil {
		t.Error("non-contiguous accepted")
	}
	// nesting: composite inside composite
	l4, _ := NewLineString([]Coord{{2, 0}, {3, 0}})
	nested, err := NewCompositeCurve(cc, l4)
	if err != nil {
		t.Fatalf("nested composite rejected: %v", err)
	}
	asLine, err := nested.AsLineString()
	if err != nil {
		t.Fatal(err)
	}
	if len(asLine.Coords) != 4 {
		t.Errorf("AsLineString coords = %v", asLine.Coords)
	}
	if nested.Length() != asLine.Length() {
		t.Error("lengths disagree")
	}
}

func TestCompositeCurveRejectsNonCurve(t *testing.T) {
	if _, err := NewCompositeCurve(NewPoint(0, 0)); err == nil {
		t.Error("point member accepted")
	}
}

func TestCompositeSurfaceConnectivity(t *testing.T) {
	a := unitSquare(t)
	b := NewPolygon(ring(t, Coord{1, 0}, Coord{2, 0}, Coord{2, 1}, Coord{1, 1}, Coord{1, 0})) // shares edge vertices with a
	c := NewPolygon(ring(t, Coord{9, 9}, Coord{10, 9}, Coord{10, 10}, Coord{9, 10}, Coord{9, 9}))
	if _, err := NewCompositeSurface(a, b); err != nil {
		t.Errorf("connected rejected: %v", err)
	}
	if _, err := NewCompositeSurface(a, c); err == nil {
		t.Error("disconnected accepted")
	}
	cs, _ := NewCompositeSurface(a, b)
	if cs.Area() != 2 {
		t.Errorf("Area = %g", cs.Area())
	}
}

func TestComplexMixed(t *testing.T) {
	l, _ := NewLineString([]Coord{{0, 0}, {1, 1}})
	cx := Complex{Members: []Geometry{NewPoint(5, 5), l, unitSquare(t)}}
	if cx.Dimension() != 2 {
		t.Errorf("Dimension = %d", cx.Dimension())
	}
	if cx.Envelope().MaxX != 5 {
		t.Errorf("Envelope = %+v", cx.Envelope())
	}
}

func TestSolid(t *testing.T) {
	sq := unitSquare(t)
	s := Solid{Boundary: []Polygon{sq, sq, sq, sq, sq, sq}}
	if s.SurfaceArea() != 6 {
		t.Errorf("SurfaceArea = %g", s.SurfaceArea())
	}
	if s.Dimension() != 3 || s.IsEmpty() {
		t.Error("Solid metadata wrong")
	}
}

func TestParseFormatCoordinates(t *testing.T) {
	// The exact string from List 6 of the paper.
	cs, err := ParseCoordinates("2533822.17263276,7108248.82783879 2533900.5,7108300.25")
	if err != nil {
		t.Fatalf("ParseCoordinates: %v", err)
	}
	if len(cs) != 2 || cs[0].X != 2533822.17263276 {
		t.Errorf("cs = %v", cs)
	}
	round, err := ParseCoordinates(FormatCoordinates(cs))
	if err != nil || len(round) != 2 || round[0] != cs[0] || round[1] != cs[1] {
		t.Errorf("round trip = %v, %v", round, err)
	}
	for _, bad := range []string{"", "1", "a,b", "1,b"} {
		if _, err := ParseCoordinates(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestParseFormatPosList(t *testing.T) {
	cs, err := ParsePosList("1 2 3 4")
	if err != nil || len(cs) != 2 || cs[1] != (Coord{3, 4}) {
		t.Fatalf("ParsePosList = %v, %v", cs, err)
	}
	if FormatPosList(cs) != "1 2 3 4" {
		t.Errorf("FormatPosList = %q", FormatPosList(cs))
	}
	for _, bad := range []string{"", "1 2 3", "x y"} {
		if _, err := ParsePosList(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestCRSTransformRoundTrip(t *testing.T) {
	reg := NewRegistry()
	orig := Coord{2533822.17, 7108248.83}
	m, err := reg.Transform(orig, TX83NCF, TX83NCM)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := reg.Transform(m, TX83NCM, TX83NCF)
	if err != nil {
		t.Fatalf("Transform back: %v", err)
	}
	if math.Abs(back.X-orig.X) > 1e-6 || math.Abs(back.Y-orig.Y) > 1e-6 {
		t.Errorf("round trip %v -> %v -> %v", orig, m, back)
	}
	// ft -> m conversion shrinks values by ~3.28
	refFt, _ := reg.Transform(orig, TX83NCF, ReferenceCRS)
	refM, _ := reg.Transform(m, TX83NCM, ReferenceCRS)
	if math.Abs(refFt.X-refM.X) > 1e-6 || math.Abs(refFt.Y-refM.Y) > 1e-6 {
		t.Errorf("reference frames disagree: %v vs %v", refFt, refM)
	}
}

func TestCRSUnknown(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Transform(Coord{}, "nope", ReferenceCRS); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := reg.Transform(Coord{}, ReferenceCRS, "nope"); err == nil {
		t.Error("unknown target accepted")
	}
	if len(reg.Names()) < 3 {
		t.Errorf("Names = %v", reg.Names())
	}
	if _, ok := reg.Lookup(TX83NCF); !ok {
		t.Error("Lookup failed")
	}
}

func TestAffineInvertCompose(t *testing.T) {
	a := Affine{A: 2, B: 0, Tx: 5, C: 0, D: 3, Ty: -1}
	inv, err := a.Invert()
	if err != nil {
		t.Fatal(err)
	}
	c := Coord{7, 11}
	round := inv.Apply(a.Apply(c))
	if math.Abs(round.X-c.X) > 1e-9 || math.Abs(round.Y-c.Y) > 1e-9 {
		t.Errorf("invert round trip = %v", round)
	}
	if _, err := (Affine{}).Invert(); err == nil {
		t.Error("singular inverted")
	}
	id := a.Compose(inv)
	got := id.Apply(c)
	if math.Abs(got.X-c.X) > 1e-9 || math.Abs(got.Y-c.Y) > 1e-9 {
		t.Errorf("compose identity = %v", got)
	}
}

// Property: a point transformed between any two registered CRSs and back
// returns to its origin.
func TestQuickCRSRoundTrip(t *testing.T) {
	reg := NewRegistry()
	names := reg.Names()
	f := func(xRaw, yRaw int32, i, j uint8) bool {
		from := names[int(i)%len(names)]
		to := names[int(j)%len(names)]
		c := Coord{float64(xRaw) / 100, float64(yRaw) / 100}
		m, err := reg.Transform(c, from, to)
		if err != nil {
			return false
		}
		back, err := reg.Transform(m, to, from)
		if err != nil {
			return false
		}
		return math.Abs(back.X-c.X) < 1e-5 && math.Abs(back.Y-c.Y) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: envelope union is commutative and contains both inputs.
func TestQuickEnvelopeUnion(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3 int16) bool {
		e1 := EnvelopeOf(Coord{float64(x1), float64(y1)}, Coord{float64(x2), float64(y2)})
		e2 := EnvelopeOf(Coord{float64(x3), float64(y3)})
		u1 := e1.Union(e2)
		u2 := e2.Union(e1)
		return u1 == u2 && u1.ContainsEnv(e1) && u1.ContainsEnv(e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimplifyCoords(t *testing.T) {
	// collinear middle points vanish
	line := []Coord{{X: 0, Y: 0}, {X: 1, Y: 0.001}, {X: 2, Y: -0.001}, {X: 3, Y: 0}}
	out := SimplifyCoords(line, 0.01)
	if len(out) != 2 || out[0] != line[0] || out[1] != line[3] {
		t.Errorf("Simplify = %v", out)
	}
	// a significant detour survives
	detour := []Coord{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 0}}
	out = SimplifyCoords(detour, 0.5)
	if len(out) != 3 {
		t.Errorf("detour simplified away: %v", out)
	}
	// zero tolerance is identity
	out = SimplifyCoords(line, 0)
	if len(out) != len(line) {
		t.Errorf("tol=0 changed input: %v", out)
	}
}

func TestSimplifyLineStringProperty(t *testing.T) {
	// Every original point must lie within tol of the simplified chain.
	l, _ := NewLineString([]Coord{
		{X: 0, Y: 0}, {X: 1, Y: 0.4}, {X: 2, Y: -0.2}, {X: 3, Y: 0.6},
		{X: 4, Y: 0}, {X: 5, Y: 3}, {X: 6, Y: 0},
	})
	const tol = 0.5
	s := l.Simplify(tol)
	if len(s.Coords) >= len(l.Coords) {
		t.Errorf("no reduction: %d -> %d", len(l.Coords), len(s.Coords))
	}
	for _, p := range l.Coords {
		best := math.Inf(1)
		for i := 1; i < len(s.Coords); i++ {
			d := pointSegDist(p, s.Coords[i-1], s.Coords[i])
			if d < best {
				best = d
			}
		}
		if best > tol+1e-9 {
			t.Errorf("point %v is %g from simplified chain (tol %g)", p, best, tol)
		}
	}
}

func TestSimplifyRingAndPolygon(t *testing.T) {
	ring, _ := NewLinearRing([]Coord{
		{X: 0, Y: 0}, {X: 2, Y: 0.01}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0},
	})
	s := ring.Simplify(0.1)
	if len(s.Coords) != 5 {
		t.Errorf("ring simplify = %v", s.Coords)
	}
	if s.Coords[0] != s.Coords[len(s.Coords)-1] {
		t.Error("ring opened by simplification")
	}
	// over-aggressive tolerance: original preserved rather than collapsing
	tiny := ring.Simplify(1e9)
	if len(tiny.Coords) < 4 {
		t.Errorf("ring collapsed: %v", tiny.Coords)
	}
	poly := NewPolygon(ring, ring)
	sp := poly.Simplify(0.1)
	if len(sp.Holes) != 1 {
		t.Errorf("holes = %d", len(sp.Holes))
	}
}

// TestGeometryMetadataMatrix sweeps Kind/Dimension/IsEmpty/String/Envelope
// across every geometry type.
func TestGeometryMetadataMatrix(t *testing.T) {
	l1, _ := NewLineString([]Coord{{0, 0}, {1, 1}})
	l2, _ := NewLineString([]Coord{{1, 1}, {2, 0}})
	r := ring(t, Coord{0, 0}, Coord{1, 0}, Coord{1, 1}, Coord{0, 1}, Coord{0, 0})
	poly := NewPolygon(r)
	cc, _ := NewCompositeCurve(l1, l2)
	cs, _ := NewCompositeSurface(poly)
	cases := []struct {
		g    Geometry
		kind Kind
		dim  int
		str  string
	}{
		{NewPoint(1, 2), KindPoint, 0, "POINT(1 2)"},
		{l1, KindLineString, 1, "LINESTRING(0 0, 1 1)"},
		{r, KindLinearRing, 1, "LINEARRING(0 0, 1 0, 1 1, 0 1, 0 0)"},
		{poly, KindPolygon, 2, "POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))"},
		{Solid{Boundary: []Polygon{poly}}, KindSolid, 3, "SOLID(1 faces)"},
		{MultiPoint{Points: []Point{NewPoint(0, 0)}}, KindMultiPoint, 0, "MULTIPOINT(1)"},
		{MultiCurve{Curves: []LineString{l1}}, KindMultiCurve, 1, "MULTICURVE(1)"},
		{MultiSurface{Surfaces: []Polygon{poly}}, KindMultiSurface, 2, "MULTISURFACE(1)"},
		{cc, KindCompositeCurve, 1, "COMPOSITECURVE(2)"},
		{cs, KindCompositeSurface, 2, "COMPOSITESURFACE(1)"},
		{Complex{Members: []Geometry{poly}}, KindComplex, 2, "COMPLEX(1)"},
		{EnvelopeOf(Coord{0, 0}, Coord{1, 1}), KindEnvelope, 2, "ENVELOPE(0 0, 1 1)"},
	}
	for _, c := range cases {
		if c.g.Kind() != c.kind {
			t.Errorf("%s: Kind = %v", c.str, c.g.Kind())
		}
		if c.g.Dimension() != c.dim {
			t.Errorf("%s: Dimension = %d, want %d", c.str, c.g.Dimension(), c.dim)
		}
		if c.g.IsEmpty() {
			t.Errorf("%s: IsEmpty = true", c.str)
		}
		if c.g.String() != c.str {
			t.Errorf("String = %q, want %q", c.g.String(), c.str)
		}
		if c.g.Envelope().Empty {
			t.Errorf("%s: empty envelope", c.str)
		}
	}
	if !(MultiPoint{}).IsEmpty() || !(Complex{}).IsEmpty() || !(Solid{}).IsEmpty() ||
		!(MultiCurve{}).IsEmpty() || !(MultiSurface{}).IsEmpty() ||
		!(CompositeCurve{}).IsEmpty() || !(CompositeSurface{}).IsEmpty() {
		t.Error("zero aggregates not empty")
	}
	if (Complex{}).Dimension() != 0 {
		t.Error("empty complex dimension")
	}
	if s := EmptyEnvelope().String(); s != "ENVELOPE EMPTY" {
		t.Errorf("empty envelope string = %q", s)
	}
}

// TestSpatialOpsAcrossKinds drives Intersects/Within/Distance through every
// geometry kind so the segment/point extraction paths are all exercised.
func TestSpatialOpsAcrossKinds(t *testing.T) {
	r := ring(t, Coord{0, 0}, Coord{10, 0}, Coord{10, 10}, Coord{0, 10}, Coord{0, 0})
	big := NewPolygon(r)
	l1, _ := NewLineString([]Coord{{1, 1}, {2, 2}})
	l2, _ := NewLineString([]Coord{{2, 2}, {3, 1}})
	cc, _ := NewCompositeCurve(l1, l2)
	inner := ring(t, Coord{1, 1}, Coord{2, 1}, Coord{2, 2}, Coord{1, 2}, Coord{1, 1})
	cs, _ := NewCompositeSurface(NewPolygon(inner))
	solid := Solid{Boundary: []Polygon{NewPolygon(inner)}}
	kinds := []Geometry{
		NewPoint(5, 5),
		l1,
		inner,
		NewPolygon(inner),
		MultiPoint{Points: []Point{NewPoint(3, 3), NewPoint(4, 4)}},
		MultiCurve{Curves: []LineString{l1, l2}},
		MultiSurface{Surfaces: []Polygon{NewPolygon(inner)}},
		cc,
		cs,
		Complex{Members: []Geometry{NewPoint(6, 6), l2}},
		solid,
		EnvelopeOf(Coord{1, 1}, Coord{2, 2}),
	}
	for _, g := range kinds {
		if !Within(g, big) {
			t.Errorf("%s not within big square", g.Kind())
		}
		if !Intersects(g, big) {
			t.Errorf("%s does not intersect big square", g.Kind())
		}
		if d := Distance(g, big); d != 0 {
			t.Errorf("%s distance = %g", g.Kind(), d)
		}
		far := NewPoint(1000, 1000)
		if Intersects(g, far) {
			t.Errorf("%s intersects far point", g.Kind())
		}
		if d := Distance(g, far); d <= 0 || math.IsInf(d, 1) {
			t.Errorf("%s far distance = %g", g.Kind(), d)
		}
	}
	// nil / empty guards
	if Intersects(nil, big) || Within(nil, big) || Contains(big, nil) {
		t.Error("nil geometry matched")
	}
	if !math.IsInf(Distance(nil, big), 1) {
		t.Error("nil distance finite")
	}
}

func TestTransformAll(t *testing.T) {
	reg := NewRegistry()
	in := []Coord{{0, 0}, {328.083333, 328.083333}}
	out, err := reg.TransformAll(in, TX83NCF, TX83NCM)
	if err != nil || len(out) != 2 {
		t.Fatalf("TransformAll = %v, %v", out, err)
	}
	if _, err := reg.TransformAll(in, "nope", TX83NCM); err == nil {
		t.Error("unknown CRS accepted")
	}
}
