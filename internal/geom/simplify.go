package geom

// Douglas–Peucker polyline simplification. GIS pipelines (including the
// clearinghouse data the paper's scenario draws on) routinely generalize
// stream centerlines before display or coarse analysis; Simplify provides
// the standard algorithm with a distance tolerance.

// SimplifyCoords reduces a coordinate chain with the Douglas–Peucker
// algorithm: every removed point lies within tol of the simplified chain.
// Endpoints are always kept. tol <= 0 returns the input unchanged.
func SimplifyCoords(cs []Coord, tol float64) []Coord {
	if tol <= 0 || len(cs) <= 2 {
		out := make([]Coord, len(cs))
		copy(out, cs)
		return out
	}
	keep := make([]bool, len(cs))
	keep[0], keep[len(cs)-1] = true, true
	dpMark(cs, 0, len(cs)-1, tol, keep)
	out := make([]Coord, 0, len(cs))
	for i, k := range keep {
		if k {
			out = append(out, cs[i])
		}
	}
	return out
}

// dpMark marks the points to keep between indexes lo and hi (exclusive
// interior) using recursion on the farthest-point split.
func dpMark(cs []Coord, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxDist, maxIdx := -1.0, -1
	for i := lo + 1; i < hi; i++ {
		d := pointSegDist(cs[i], cs[lo], cs[hi])
		if d > maxDist {
			maxDist, maxIdx = d, i
		}
	}
	if maxDist <= tol {
		return // everything between lo and hi collapses onto the segment
	}
	keep[maxIdx] = true
	dpMark(cs, lo, maxIdx, tol, keep)
	dpMark(cs, maxIdx, hi, tol, keep)
}

// Simplify generalizes a LineString; the result always has at least two
// points.
func (l LineString) Simplify(tol float64) LineString {
	return LineString{Coords: SimplifyCoords(l.Coords, tol)}
}

// Simplify generalizes a ring, preserving closure. If simplification would
// collapse the ring below 4 coordinates the original is returned.
func (r LinearRing) Simplify(tol float64) LinearRing {
	out := SimplifyCoords(r.Coords, tol)
	if len(out) < 4 || out[0] != out[len(out)-1] {
		return LinearRing{Coords: append([]Coord(nil), r.Coords...)}
	}
	return LinearRing{Coords: out}
}

// Simplify generalizes a polygon's rings. Holes that collapse are dropped.
func (p Polygon) Simplify(tol float64) Polygon {
	out := Polygon{Exterior: p.Exterior.Simplify(tol)}
	for _, h := range p.Holes {
		s := h.Simplify(tol)
		if len(s.Coords) >= 4 {
			out.Holes = append(out.Holes, s)
		}
	}
	return out
}
