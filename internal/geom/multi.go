package geom

import (
	"fmt"
)

// The paper distinguishes three multipart forms (Section 5):
//
//   - Multi: "composed of the same base type and there is no stipulation as
//     to their mutual relationship … does not allow nesting."
//   - Composite: "similar to Multi type except the individual parts have to
//     be contiguous and nesting is allowed."
//   - Complex: "allows arbitrary combination of the types."

// MultiPoint is an unordered collection of points.
type MultiPoint struct {
	Points []Point
}

func (MultiPoint) Kind() Kind { return KindMultiPoint }

func (m MultiPoint) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m.Points {
		e = e.Union(p.Envelope())
	}
	return e
}

func (m MultiPoint) IsEmpty() bool  { return len(m.Points) == 0 }
func (MultiPoint) Dimension() int   { return 0 }
func (m MultiPoint) String() string { return fmt.Sprintf("MULTIPOINT(%d)", len(m.Points)) }

// MultiCurve is a flat enumeration of curves (no nesting, no contiguity
// requirement).
type MultiCurve struct {
	Curves []LineString
}

func (MultiCurve) Kind() Kind { return KindMultiCurve }

func (m MultiCurve) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, c := range m.Curves {
		e = e.Union(c.Envelope())
	}
	return e
}

func (m MultiCurve) IsEmpty() bool  { return len(m.Curves) == 0 }
func (MultiCurve) Dimension() int   { return 1 }
func (m MultiCurve) String() string { return fmt.Sprintf("MULTICURVE(%d)", len(m.Curves)) }

// Length sums the member lengths.
func (m MultiCurve) Length() float64 {
	sum := 0.0
	for _, c := range m.Curves {
		sum += c.Length()
	}
	return sum
}

// MultiSurface is a flat enumeration of surfaces.
type MultiSurface struct {
	Surfaces []Polygon
}

func (MultiSurface) Kind() Kind { return KindMultiSurface }

func (m MultiSurface) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, s := range m.Surfaces {
		e = e.Union(s.Envelope())
	}
	return e
}

func (m MultiSurface) IsEmpty() bool  { return len(m.Surfaces) == 0 }
func (MultiSurface) Dimension() int   { return 2 }
func (m MultiSurface) String() string { return fmt.Sprintf("MULTISURFACE(%d)", len(m.Surfaces)) }

// Area sums the member areas.
func (m MultiSurface) Area() float64 {
	sum := 0.0
	for _, s := range m.Surfaces {
		sum += s.Area()
	}
	return sum
}

// CompositeCurve is a chain of contiguous curves: each member must start
// where the previous one ends. Members may themselves be composites
// ("nesting is allowed"), which NewCompositeCurve flattens for the
// contiguity check.
type CompositeCurve struct {
	Members []Geometry // LineString or CompositeCurve
}

// NewCompositeCurve validates contiguity of the flattened member chain.
func NewCompositeCurve(members ...Geometry) (CompositeCurve, error) {
	cc := CompositeCurve{Members: members}
	flat, err := cc.Flatten()
	if err != nil {
		return CompositeCurve{}, err
	}
	for i := 1; i < len(flat); i++ {
		prev := flat[i-1].Coords[len(flat[i-1].Coords)-1]
		next := flat[i].Coords[0]
		if prev != next {
			return CompositeCurve{}, fmt.Errorf(
				"geom: CompositeCurve members %d and %d are not contiguous (%v != %v)",
				i-1, i, prev, next)
		}
	}
	return cc, nil
}

// Flatten expands nested composites to a flat list of LineStrings.
func (c CompositeCurve) Flatten() ([]LineString, error) {
	var out []LineString
	for _, m := range c.Members {
		switch v := m.(type) {
		case LineString:
			out = append(out, v)
		case CompositeCurve:
			inner, err := v.Flatten()
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		default:
			return nil, fmt.Errorf("geom: CompositeCurve cannot contain %s", m.Kind())
		}
	}
	return out, nil
}

func (CompositeCurve) Kind() Kind { return KindCompositeCurve }

func (c CompositeCurve) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, m := range c.Members {
		e = e.Union(m.Envelope())
	}
	return e
}

func (c CompositeCurve) IsEmpty() bool  { return len(c.Members) == 0 }
func (CompositeCurve) Dimension() int   { return 1 }
func (c CompositeCurve) String() string { return fmt.Sprintf("COMPOSITECURVE(%d)", len(c.Members)) }

// Length sums the flattened member lengths.
func (c CompositeCurve) Length() float64 {
	flat, err := c.Flatten()
	if err != nil {
		return 0
	}
	sum := 0.0
	for _, l := range flat {
		sum += l.Length()
	}
	return sum
}

// AsLineString concatenates the flattened chain into one curve.
func (c CompositeCurve) AsLineString() (LineString, error) {
	flat, err := c.Flatten()
	if err != nil {
		return LineString{}, err
	}
	if len(flat) == 0 {
		return LineString{}, fmt.Errorf("geom: empty CompositeCurve")
	}
	coords := append([]Coord(nil), flat[0].Coords...)
	for _, seg := range flat[1:] {
		coords = append(coords, seg.Coords[1:]...)
	}
	return NewLineString(coords)
}

// CompositeSurface is a set of surfaces required to be connected: every
// member must share at least one boundary vertex with some earlier member.
type CompositeSurface struct {
	Members []Polygon
}

// NewCompositeSurface validates connectivity.
func NewCompositeSurface(members ...Polygon) (CompositeSurface, error) {
	for i := 1; i < len(members); i++ {
		connected := false
		for j := 0; j < i && !connected; j++ {
			if sharesVertex(members[i], members[j]) {
				connected = true
			}
		}
		if !connected {
			return CompositeSurface{}, fmt.Errorf("geom: CompositeSurface member %d is disconnected", i)
		}
	}
	return CompositeSurface{Members: members}, nil
}

func sharesVertex(a, b Polygon) bool {
	set := map[Coord]struct{}{}
	for _, c := range a.Exterior.Coords {
		set[c] = struct{}{}
	}
	for _, c := range b.Exterior.Coords {
		if _, ok := set[c]; ok {
			return true
		}
	}
	return false
}

func (CompositeSurface) Kind() Kind { return KindCompositeSurface }

func (c CompositeSurface) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, m := range c.Members {
		e = e.Union(m.Envelope())
	}
	return e
}

func (c CompositeSurface) IsEmpty() bool { return len(c.Members) == 0 }
func (CompositeSurface) Dimension() int  { return 2 }
func (c CompositeSurface) String() string {
	return fmt.Sprintf("COMPOSITESURFACE(%d)", len(c.Members))
}

// Area sums member areas.
func (c CompositeSurface) Area() float64 {
	sum := 0.0
	for _, m := range c.Members {
		sum += m.Area()
	}
	return sum
}

// Complex is an arbitrary combination of geometries of any kind ("the atomic
// parts of a Complex type can be Multi type, Composite type and even Complex
// type").
type Complex struct {
	Members []Geometry
}

func (Complex) Kind() Kind { return KindComplex }

func (c Complex) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, m := range c.Members {
		e = e.Union(m.Envelope())
	}
	return e
}

func (c Complex) IsEmpty() bool { return len(c.Members) == 0 }

// Dimension returns the maximum member dimension.
func (c Complex) Dimension() int {
	d := 0
	for _, m := range c.Members {
		if md := m.Dimension(); md > d {
			d = md
		}
	}
	return d
}

func (c Complex) String() string { return fmt.Sprintf("COMPLEX(%d)", len(c.Members)) }
