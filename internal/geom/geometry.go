// Package geom is the computational-geometry substrate under GRDF's geometry
// model (Section 5 of the paper). It provides the concrete shape types the
// ontology's classes denote — Point, Curve (LineString), Surface (Polygon),
// Solid and their Multi/Composite/Complex aggregates plus Ring and Envelope —
// together with the predicates and measures the SPARQL spatial filter
// functions and the topology realization layer need.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Coord is a 2-D coordinate in some CRS. GRDF's sample data (hydrology
// streams, chemical-site bounding boxes) is planar; elevation travels as
// feature properties when needed.
type Coord struct {
	X, Y float64
}

func (c Coord) String() string { return fmt.Sprintf("%g,%g", c.X, c.Y) }

// Sub returns the component-wise difference c - d.
func (c Coord) Sub(d Coord) Coord { return Coord{c.X - d.X, c.Y - d.Y} }

// Dist returns the Euclidean distance to d.
func (c Coord) Dist(d Coord) float64 { return math.Hypot(c.X-d.X, c.Y-d.Y) }

// Kind enumerates geometry types, mirroring the classes of the GRDF geometry
// ontology.
type Kind string

const (
	KindPoint            Kind = "Point"
	KindLineString       Kind = "LineString" // GRDF Curve
	KindLinearRing       Kind = "LinearRing" // GRDF Ring
	KindPolygon          Kind = "Polygon"    // GRDF Surface
	KindSolid            Kind = "Solid"
	KindMultiPoint       Kind = "MultiPoint"
	KindMultiCurve       Kind = "MultiCurve"
	KindMultiSurface     Kind = "MultiSurface"
	KindCompositeCurve   Kind = "CompositeCurve"
	KindCompositeSurface Kind = "CompositeSurface"
	KindComplex          Kind = "Complex"
	KindEnvelope         Kind = "Envelope"
)

// Geometry is the interface every shape implements.
type Geometry interface {
	// Kind reports the geometry type.
	Kind() Kind
	// Envelope returns the minimal axis-aligned bounding box (the paper's
	// 'isBoundedBy' rectangle).
	Envelope() Envelope
	// IsEmpty reports whether the geometry carries no coordinates.
	IsEmpty() bool
	// Dimension returns the topological dimension: 0, 1, 2 or 3.
	Dimension() int
	// String renders a WKT-like textual form.
	String() string
}

// Envelope is an axis-aligned bounding box ("an imaginary bounding box that
// is the minimum area occupied by the feature").
type Envelope struct {
	MinX, MinY, MaxX, MaxY float64
	// Empty marks the zero envelope; a fresh Envelope{} with Empty=true adds
	// nothing to unions.
	Empty bool
}

// EmptyEnvelope returns the identity for Extend/Union.
func EmptyEnvelope() Envelope { return Envelope{Empty: true} }

// EnvelopeOf builds the envelope of a coordinate set.
func EnvelopeOf(cs ...Coord) Envelope {
	e := EmptyEnvelope()
	for _, c := range cs {
		e = e.ExtendCoord(c)
	}
	return e
}

// Kind implements Geometry.
func (Envelope) Kind() Kind { return KindEnvelope }

// Envelope implements Geometry.
func (e Envelope) Envelope() Envelope { return e }

// IsEmpty implements Geometry.
func (e Envelope) IsEmpty() bool { return e.Empty }

// Dimension implements Geometry.
func (Envelope) Dimension() int { return 2 }

func (e Envelope) String() string {
	if e.Empty {
		return "ENVELOPE EMPTY"
	}
	return fmt.Sprintf("ENVELOPE(%g %g, %g %g)", e.MinX, e.MinY, e.MaxX, e.MaxY)
}

// ExtendCoord grows the envelope to cover c.
func (e Envelope) ExtendCoord(c Coord) Envelope {
	if e.Empty {
		return Envelope{MinX: c.X, MinY: c.Y, MaxX: c.X, MaxY: c.Y}
	}
	return Envelope{
		MinX: math.Min(e.MinX, c.X), MinY: math.Min(e.MinY, c.Y),
		MaxX: math.Max(e.MaxX, c.X), MaxY: math.Max(e.MaxY, c.Y),
	}
}

// Union returns the smallest envelope covering both.
func (e Envelope) Union(o Envelope) Envelope {
	if e.Empty {
		return o
	}
	if o.Empty {
		return e
	}
	return Envelope{
		MinX: math.Min(e.MinX, o.MinX), MinY: math.Min(e.MinY, o.MinY),
		MaxX: math.Max(e.MaxX, o.MaxX), MaxY: math.Max(e.MaxY, o.MaxY),
	}
}

// IntersectsEnv reports whether the two boxes overlap (boundaries touch
// counts as intersecting).
func (e Envelope) IntersectsEnv(o Envelope) bool {
	if e.Empty || o.Empty {
		return false
	}
	return e.MinX <= o.MaxX && o.MinX <= e.MaxX && e.MinY <= o.MaxY && o.MinY <= e.MaxY
}

// ContainsCoord reports whether c lies inside or on the boundary.
func (e Envelope) ContainsCoord(c Coord) bool {
	return !e.Empty && c.X >= e.MinX && c.X <= e.MaxX && c.Y >= e.MinY && c.Y <= e.MaxY
}

// ContainsEnv reports whether o lies entirely within e.
func (e Envelope) ContainsEnv(o Envelope) bool {
	if e.Empty || o.Empty {
		return false
	}
	return o.MinX >= e.MinX && o.MaxX <= e.MaxX && o.MinY >= e.MinY && o.MaxY <= e.MaxY
}

// Width returns MaxX - MinX.
func (e Envelope) Width() float64 {
	if e.Empty {
		return 0
	}
	return e.MaxX - e.MinX
}

// Height returns MaxY - MinY.
func (e Envelope) Height() float64 {
	if e.Empty {
		return 0
	}
	return e.MaxY - e.MinY
}

// Area returns the box area.
func (e Envelope) Area() float64 { return e.Width() * e.Height() }

// Center returns the box midpoint.
func (e Envelope) Center() Coord {
	return Coord{(e.MinX + e.MaxX) / 2, (e.MinY + e.MaxY) / 2}
}

// Corners returns the lower-left and upper-right corners, the two
// coordinates GRDF's Envelope class carries.
func (e Envelope) Corners() (Coord, Coord) {
	return Coord{e.MinX, e.MinY}, Coord{e.MaxX, e.MaxY}
}

// Point is a 0-dimensional geometry ("the most basic and indecomposable form
// of geometry").
type Point struct {
	C Coord
}

// NewPoint returns the point (x, y).
func NewPoint(x, y float64) Point { return Point{C: Coord{x, y}} }

func (Point) Kind() Kind           { return KindPoint }
func (p Point) Envelope() Envelope { return EnvelopeOf(p.C) }
func (Point) IsEmpty() bool        { return false }
func (Point) Dimension() int       { return 0 }
func (p Point) String() string     { return fmt.Sprintf("POINT(%g %g)", p.C.X, p.C.Y) }

// LineString is a 1-dimensional curve through two or more anchor points
// (GRDF's Curve: "a one-dimensional form that is defined in terms of anchor
// points").
type LineString struct {
	Coords []Coord
}

// NewLineString validates that at least two anchor points are present.
func NewLineString(cs []Coord) (LineString, error) {
	if len(cs) < 2 {
		return LineString{}, fmt.Errorf("geom: LineString needs >= 2 points, got %d", len(cs))
	}
	return LineString{Coords: cs}, nil
}

func (LineString) Kind() Kind { return KindLineString }

func (l LineString) Envelope() Envelope { return EnvelopeOf(l.Coords...) }
func (l LineString) IsEmpty() bool      { return len(l.Coords) == 0 }
func (LineString) Dimension() int       { return 1 }

func (l LineString) String() string {
	return "LINESTRING(" + coordList(l.Coords) + ")"
}

// Length returns the polyline length.
func (l LineString) Length() float64 {
	sum := 0.0
	for i := 1; i < len(l.Coords); i++ {
		sum += l.Coords[i].Dist(l.Coords[i-1])
	}
	return sum
}

// Reverse returns the curve traversed backwards.
func (l LineString) Reverse() LineString {
	out := make([]Coord, len(l.Coords))
	for i, c := range l.Coords {
		out[len(l.Coords)-1-i] = c
	}
	return LineString{Coords: out}
}

// StartPoint returns the first anchor point.
func (l LineString) StartPoint() Point { return Point{C: l.Coords[0]} }

// EndPoint returns the last anchor point.
func (l LineString) EndPoint() Point { return Point{C: l.Coords[len(l.Coords)-1]} }

// LinearRing is a closed LineString (GRDF's Ring, "similar to Multi type
// except it is restricted to have straight-lines or curves in its content
// model"). First and last coordinates must coincide.
type LinearRing struct {
	Coords []Coord
}

// NewLinearRing validates closure and minimum size (4 coords incl. repeat).
func NewLinearRing(cs []Coord) (LinearRing, error) {
	if len(cs) < 4 {
		return LinearRing{}, fmt.Errorf("geom: LinearRing needs >= 4 points, got %d", len(cs))
	}
	if cs[0] != cs[len(cs)-1] {
		return LinearRing{}, fmt.Errorf("geom: LinearRing not closed: %v != %v", cs[0], cs[len(cs)-1])
	}
	return LinearRing{Coords: cs}, nil
}

func (LinearRing) Kind() Kind           { return KindLinearRing }
func (r LinearRing) Envelope() Envelope { return EnvelopeOf(r.Coords...) }
func (r LinearRing) IsEmpty() bool      { return len(r.Coords) == 0 }
func (LinearRing) Dimension() int       { return 1 }
func (r LinearRing) String() string     { return "LINEARRING(" + coordList(r.Coords) + ")" }

// SignedArea returns the shoelace area: positive when counter-clockwise.
func (r LinearRing) SignedArea() float64 {
	sum := 0.0
	for i := 0; i < len(r.Coords)-1; i++ {
		a, b := r.Coords[i], r.Coords[i+1]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// IsCCW reports counter-clockwise orientation (the paper's "positive
// (clockwise) negative (counter-clockwise)" face orientation corresponds to
// the sign of this area).
func (r LinearRing) IsCCW() bool { return r.SignedArea() > 0 }

// Polygon is a 2-dimensional surface with an exterior ring and optional
// interior rings (holes). It realizes GRDF's Surface class.
type Polygon struct {
	Exterior LinearRing
	Holes    []LinearRing
}

// NewPolygon builds a polygon from a validated exterior and holes.
func NewPolygon(ext LinearRing, holes ...LinearRing) Polygon {
	return Polygon{Exterior: ext, Holes: holes}
}

func (Polygon) Kind() Kind           { return KindPolygon }
func (p Polygon) Envelope() Envelope { return p.Exterior.Envelope() }
func (p Polygon) IsEmpty() bool      { return p.Exterior.IsEmpty() }
func (Polygon) Dimension() int       { return 2 }

func (p Polygon) String() string {
	var sb strings.Builder
	sb.WriteString("POLYGON((")
	sb.WriteString(coordList(p.Exterior.Coords))
	sb.WriteString(")")
	for _, h := range p.Holes {
		sb.WriteString(",(")
		sb.WriteString(coordList(h.Coords))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// Area returns the polygon area (exterior minus holes).
func (p Polygon) Area() float64 {
	a := math.Abs(p.Exterior.SignedArea())
	for _, h := range p.Holes {
		a -= math.Abs(h.SignedArea())
	}
	return a
}

// Solid is a 3-dimensional shape. As in GRDF ("solid does not have its own
// composite types; it relies on two-dimensional classes to construct the
// shape"), it is described by its boundary surfaces.
type Solid struct {
	Boundary []Polygon
}

func (Solid) Kind() Kind { return KindSolid }

func (s Solid) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range s.Boundary {
		e = e.Union(p.Envelope())
	}
	return e
}

func (s Solid) IsEmpty() bool  { return len(s.Boundary) == 0 }
func (Solid) Dimension() int   { return 3 }
func (s Solid) String() string { return fmt.Sprintf("SOLID(%d faces)", len(s.Boundary)) }

// SurfaceArea sums the boundary surface areas.
func (s Solid) SurfaceArea() float64 {
	sum := 0.0
	for _, p := range s.Boundary {
		sum += p.Area()
	}
	return sum
}

func coordList(cs []Coord) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%g %g", c.X, c.Y)
	}
	return strings.Join(parts, ", ")
}
