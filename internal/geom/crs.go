package geom

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Coordinate Reference System support. GRDF's CRS type "is used to reference
// the decimal values of a geometric object that represent the position of
// the object on the Earth"; the sample data uses a Texas state-plane-like
// projected system (srsName ".../TX83-NCF"). We model a CRS as a named
// planar system with an affine relationship to a common reference frame, so
// features from stores using different systems can be aggregated — a
// concrete instance of the heterogeneity problem the paper opens with.

// CRS describes one coordinate reference system.
type CRS struct {
	// Name is the srsName URI fragment identifying the system.
	Name string
	// Description is free-form documentation.
	Description string
	// toRef maps local coordinates into the shared reference frame.
	toRef Affine
}

// Affine is a 2-D affine transform: x' = A*x + B*y + Tx, y' = C*x + D*y + Ty.
type Affine struct {
	A, B, Tx float64
	C, D, Ty float64
}

// IdentityAffine returns the identity transform.
func IdentityAffine() Affine { return Affine{A: 1, D: 1} }

// Apply transforms a coordinate.
func (t Affine) Apply(c Coord) Coord {
	return Coord{
		X: t.A*c.X + t.B*c.Y + t.Tx,
		Y: t.C*c.X + t.D*c.Y + t.Ty,
	}
}

// Invert returns the inverse transform.
func (t Affine) Invert() (Affine, error) {
	det := t.A*t.D - t.B*t.C
	if math.Abs(det) < 1e-12 {
		return Affine{}, fmt.Errorf("geom: affine transform is singular")
	}
	inv := Affine{
		A: t.D / det, B: -t.B / det,
		C: -t.C / det, D: t.A / det,
	}
	inv.Tx = -(inv.A*t.Tx + inv.B*t.Ty)
	inv.Ty = -(inv.C*t.Tx + inv.D*t.Ty)
	return inv, nil
}

// Compose returns the transform "t then u".
func (t Affine) Compose(u Affine) Affine {
	return Affine{
		A: u.A*t.A + u.B*t.C, B: u.A*t.B + u.B*t.D, Tx: u.A*t.Tx + u.B*t.Ty + u.Tx,
		C: u.C*t.A + u.D*t.C, D: u.C*t.B + u.D*t.D, Ty: u.C*t.Tx + u.D*t.Ty + u.Ty,
	}
}

// Registry holds named CRS definitions and answers transformation requests.
type Registry struct {
	mu   sync.RWMutex
	defs map[string]CRS
}

// NewRegistry returns a registry preloaded with the systems the GRDF
// examples use:
//
//   - "urn:grdf:crs:reference"  — the shared frame (identity)
//   - "http://grdf.org/crs/TX83-NCF" — a Texas NC state-plane-like system
//     (feet, offset origin), standing in for the paper's TX83-NCF
//   - "http://grdf.org/crs/TX83-NCF-m" — the same system in meters
func NewRegistry() *Registry {
	r := &Registry{defs: make(map[string]CRS)}
	r.Register(CRS{
		Name:        ReferenceCRS,
		Description: "shared planar reference frame",
		toRef:       IdentityAffine(),
	})
	// State-plane-like: feet with a large false origin.
	const ftPerM = 3.28083333
	r.Register(CRS{
		Name:        TX83NCF,
		Description: "Texas 1983 North Central, US survey feet (synthetic stand-in)",
		toRef: Affine{
			A: 1 / ftPerM, D: 1 / ftPerM,
			Tx: -2500000 / ftPerM, Ty: -7000000 / ftPerM,
		},
	})
	r.Register(CRS{
		Name:        TX83NCM,
		Description: "Texas 1983 North Central, meters (synthetic stand-in)",
		toRef: Affine{
			A: 1, D: 1,
			Tx: -2500000 / ftPerM, Ty: -7000000 / ftPerM,
		},
	})
	return r
}

// Well-known CRS names.
const (
	ReferenceCRS = "urn:grdf:crs:reference"
	TX83NCF      = "http://grdf.org/crs/TX83-NCF"
	TX83NCM      = "http://grdf.org/crs/TX83-NCF-m"
)

// Register installs or replaces a CRS definition.
func (r *Registry) Register(c CRS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defs[c.Name] = c
}

// Lookup returns the named CRS.
func (r *Registry) Lookup(name string) (CRS, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.defs[name]
	return c, ok
}

// Names returns all registered CRS names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.defs))
	for n := range r.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Transform converts a coordinate from one system to another.
func (r *Registry) Transform(c Coord, from, to string) (Coord, error) {
	if from == to {
		return c, nil
	}
	r.mu.RLock()
	src, okS := r.defs[from]
	dst, okD := r.defs[to]
	r.mu.RUnlock()
	if !okS {
		return Coord{}, fmt.Errorf("geom: unknown CRS %q", from)
	}
	if !okD {
		return Coord{}, fmt.Errorf("geom: unknown CRS %q", to)
	}
	inv, err := dst.toRef.Invert()
	if err != nil {
		return Coord{}, fmt.Errorf("geom: CRS %q: %w", to, err)
	}
	return src.toRef.Compose(inv).Apply(c), nil
}

// TransformAll converts a coordinate slice.
func (r *Registry) TransformAll(cs []Coord, from, to string) ([]Coord, error) {
	out := make([]Coord, len(cs))
	for i, c := range cs {
		t, err := r.Transform(c, from, to)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
