package geoxacml

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/rdf"
)

func scenarioPolicies() *PolicySet {
	return &PolicySet{Rules: []Rule{
		{ID: "mr-hydro", Subject: "mainrep", Action: "view",
			Resource: datagen.HydroStream, Effect: Permit},
		// Object granularity forces an all-or-nothing choice for sites: the
		// paper's point. Granting access exposes everything.
		{ID: "mr-sites", Subject: "mainrep", Action: "view",
			Resource: datagen.ChemSite, Effect: Permit},
		{ID: "public-deny", Subject: "public", Action: "view",
			Resource: datagen.ChemSite, Effect: Deny},
	}}
}

func TestEvaluateBasics(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 4, Sites: 5})
	ps := scenarioPolicies()
	site := sc.Chemical.Sites[0].IRI
	if got := ps.Evaluate("mainrep", "view", site, sc.Merged); got != Permit {
		t.Errorf("Evaluate = %v", got)
	}
	if got := ps.Evaluate("public", "view", site, sc.Merged); got != Deny {
		t.Errorf("public = %v", got)
	}
	if got := ps.Evaluate("nobody", "view", site, sc.Merged); got != NotApplicable {
		t.Errorf("nobody = %v", got)
	}
	if got := ps.Evaluate("mainrep", "delete", site, sc.Merged); got != NotApplicable {
		t.Errorf("wrong action = %v", got)
	}
	// instance-level rule
	ps2 := &PolicySet{Rules: []Rule{{
		ID: "one", Subject: "x", Action: "view", Resource: site, Effect: Permit,
	}}}
	if got := ps2.Evaluate("x", "view", site, sc.Merged); got != Permit {
		t.Errorf("instance rule = %v", got)
	}
	if got := ps2.Evaluate("x", "view", sc.Chemical.Sites[1].IRI, sc.Merged); got != NotApplicable {
		t.Errorf("other instance = %v", got)
	}
}

func TestCombiningAlgorithms(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 4, Sites: 3})
	site := sc.Chemical.Sites[0].IRI
	rules := []Rule{
		{ID: "p", Subject: "r", Action: "view", Resource: datagen.ChemSite, Effect: Permit},
		{ID: "d", Subject: "r", Action: "view", Resource: datagen.ChemSite, Effect: Deny},
	}
	if got := (&PolicySet{Rules: rules, Algorithm: DenyOverrides}).Evaluate("r", "view", site, sc.Merged); got != Deny {
		t.Errorf("DenyOverrides = %v", got)
	}
	if got := (&PolicySet{Rules: rules, Algorithm: PermitOverrides}).Evaluate("r", "view", site, sc.Merged); got != Permit {
		t.Errorf("PermitOverrides = %v", got)
	}
	if got := (&PolicySet{Rules: rules, Algorithm: FirstApplicable}).Evaluate("r", "view", site, sc.Merged); got != Permit {
		t.Errorf("FirstApplicable = %v", got)
	}
}

func TestSpatialScope(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 4, Sites: 6})
	bounds := sc.Chemical.Sites[0].Bounds
	scope := geom.EnvelopeOf(
		geom.Coord{X: bounds.MinX - 10, Y: bounds.MinY - 10},
		geom.Coord{X: bounds.MaxX + 10, Y: bounds.MaxY + 10},
	)
	ps := &PolicySet{Rules: []Rule{{
		ID: "scoped", Subject: "r", Action: "view",
		Resource: datagen.ChemSite, Effect: Permit, Scope: &scope,
	}}}
	if got := ps.Evaluate("r", "view", sc.Chemical.Sites[0].IRI, sc.Merged); got != Permit {
		t.Errorf("in-scope = %v", got)
	}
	out := 0
	for _, s := range sc.Chemical.Sites[1:] {
		if ps.Evaluate("r", "view", s.IRI, sc.Merged) == NotApplicable {
			out++
		}
	}
	if out != len(sc.Chemical.Sites)-1 {
		t.Errorf("out-of-scope NotApplicable = %d", out)
	}
}

func TestViewExposesWholeObject(t *testing.T) {
	// The critique made executable: a Permit on ChemSite exposes contacts,
	// codes and quantities — everything.
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 4, Sites: 5})
	ps := scenarioPolicies()
	view := ps.View("mainrep", "view", sc.Merged)
	if view.Count(nil, datagen.HasContactPhone, nil) == 0 {
		t.Error("object-level permit hid contacts (should over-expose)")
	}
	if view.Count(nil, datagen.HasSiteName, nil) == 0 {
		t.Error("site names missing")
	}
	// denial hides the whole object
	viewPub := ps.View("public", "view", sc.Merged)
	if viewPub.Count(nil, datagen.HasSiteName, nil) != 0 {
		t.Error("deny leaked site data")
	}
}

func TestMergeBreaksSyntacticMatching(t *testing.T) {
	// After aggregation the sites arrive under a new subclass; without
	// reasoning the class-targeted policies stop matching (fail closed).
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 4, Sites: 5})
	merged := sc.Merged.Snapshot()
	newClass := rdf.IRI(rdf.AppNS + "MonitoredChemSite")
	merged.Add(rdf.T(newClass, rdf.RDFSSubClassOf, datagen.ChemSite))
	for _, s := range sc.Chemical.Sites {
		merged.RemoveMatching(s.IRI, rdf.RDFType, datagen.ChemSite)
		merged.Add(rdf.T(s.IRI, rdf.RDFType, newClass))
	}
	ps := scenarioPolicies()
	for _, s := range sc.Chemical.Sites {
		if got := ps.Evaluate("mainrep", "view", s.IRI, merged); got != NotApplicable {
			t.Errorf("site %s after merge = %v (syntactic matcher should fail)", s.IRI, got)
		}
	}
	view := ps.View("mainrep", "view", merged)
	if view.Count(nil, datagen.HasSiteName, nil) != 0 {
		t.Error("merged sites still visible despite class rename")
	}
}

func TestEffectString(t *testing.T) {
	if Permit.String() != "Permit" || Deny.String() != "Deny" || NotApplicable.String() != "NotApplicable" {
		t.Error("Effect.String wrong")
	}
}
