// Package geoxacml implements the baseline the paper argues against: a
// GeoXACML-style access-control evaluator. Section 7: "it views geographic
// resources as objects that can be associated with either a class or
// instance of the class. As such, it is unable to provide a fine-grain
// access control. For instance, consider granting access to a Building
// object to a user. The conferred privilege is going to allow a user to
// access all the Building properties…"
//
// The implementation is faithful to that critique in two deliberate ways:
//
//  1. Object granularity. A Permit exposes every property of the matched
//     resource; there is no property-level condition language.
//  2. Syntactic matching. Targets match a resource's directly asserted
//     class or its exact instance IRI — no ontology reasoning. When sources
//     are aggregated and instances arrive under new subclasses, the policies
//     silently stop matching (the data-merge failure of Section 7.1).
//
// Spatial conditions (GeoXACML's actual strength) are supported as envelope
// scopes so the baseline is not a strawman on that axis.
package geoxacml

import (
	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Effect is a XACML rule effect.
type Effect uint8

const (
	// NotApplicable means no rule matched.
	NotApplicable Effect = iota
	// Permit grants access to the whole object.
	Permit
	// Deny refuses access.
	Deny
)

func (e Effect) String() string {
	switch e {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	default:
		return "NotApplicable"
	}
}

// Rule is one XACML rule.
type Rule struct {
	ID      string
	Subject string // role identifier
	Action  string // e.g. "view"
	// Resource targets a class (matched against directly asserted rdf:type)
	// or an instance IRI (exact match).
	Resource rdf.IRI
	Effect   Effect
	// Scope optionally restricts the rule to resources whose geometry lies
	// within the envelope.
	Scope *geom.Envelope
}

// CombiningAlgorithm resolves conflicts between matching rules.
type CombiningAlgorithm uint8

const (
	// DenyOverrides: any matching Deny wins.
	DenyOverrides CombiningAlgorithm = iota
	// PermitOverrides: any matching Permit wins.
	PermitOverrides
	// FirstApplicable: document order decides.
	FirstApplicable
)

// PolicySet is an ordered rule collection with a combining algorithm.
type PolicySet struct {
	Rules     []Rule
	Algorithm CombiningAlgorithm
}

// Evaluate runs the request (subject, action, resource) against the policy
// set over the given data store.
func (ps *PolicySet) Evaluate(subject, action string, resource rdf.Term, data *store.Store) Effect {
	var effects []Effect
	for _, r := range ps.Rules {
		if r.Subject != subject || r.Action != action {
			continue
		}
		if !ruleMatches(r, resource, data) {
			continue
		}
		if ps.Algorithm == FirstApplicable {
			return r.Effect
		}
		effects = append(effects, r.Effect)
	}
	if len(effects) == 0 {
		return NotApplicable
	}
	switch ps.Algorithm {
	case PermitOverrides:
		for _, e := range effects {
			if e == Permit {
				return Permit
			}
		}
		return Deny
	default: // DenyOverrides
		for _, e := range effects {
			if e == Deny {
				return Deny
			}
		}
		return Permit
	}
}

func ruleMatches(r Rule, resource rdf.Term, data *store.Store) bool {
	matched := r.Resource.Equal(resource)
	if !matched {
		// directly asserted types only — no subclass reasoning
		for _, ty := range data.Objects(resource, rdf.RDFType) {
			if ty.Equal(r.Resource) {
				matched = true
				break
			}
		}
	}
	if !matched {
		return false
	}
	if r.Scope != nil {
		g, _, err := grdf.GeometryOf(data, resource)
		if err != nil || !geom.Within(g, *r.Scope) {
			return false
		}
	}
	return true
}

// View materializes the subject's view: all triples of every permitted
// resource (object granularity — this is exactly the over-exposure the GRDF
// paper criticizes), nothing of denied or unmatched resources.
func (ps *PolicySet) View(subject, action string, data *store.Store) *store.Store {
	view := store.New()
	seen := map[string]struct{}{}
	data.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		k := t.Subject.String()
		if _, dup := seen[k]; dup {
			return true
		}
		seen[k] = struct{}{}
		return true
	})
	var resources []rdf.Term
	data.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		resources = append(resources, t.Subject)
		return true
	})
	done := map[string]struct{}{}
	for _, res := range resources {
		k := res.String()
		if _, dup := done[k]; dup {
			continue
		}
		done[k] = struct{}{}
		if ps.Evaluate(subject, action, res, data) != Permit {
			continue
		}
		var include func(node rdf.Term)
		includeSeen := map[string]struct{}{}
		include = func(node rdf.Term) {
			nk := node.String()
			if _, dup := includeSeen[nk]; dup {
				return
			}
			includeSeen[nk] = struct{}{}
			for _, t := range data.Match(node, nil, nil) {
				view.Add(t)
				if t.Object.Kind() == rdf.KindBlank {
					include(t.Object)
				}
			}
		}
		include(res)
	}
	return view
}
