// Contamination walks through the paper's Section 7.1 scenario end to end:
//
//  1. Two data stores — hydrology topology (NCTCOG-style) and chemical
//     facilities (E-Plan-style) — are generated and merged into the
//     middleware's layered view.
//
//  2. The incident site is located, the affected stream identified, and the
//     chemical sites within the incident radius found with a spatial join.
//
//  3. Three responder roles query the same middleware and get three
//     different, policy-filtered views:
//     - 'main repair'        — site extents only (List 8's policy),
//     - 'hazmat personnel'   — locations plus an aggregate chemical list,
//     - 'emergency response' — full access.
//
//     go run ./examples/contamination
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/rdf"
	"repro/internal/seconto"
)

func main() {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 7, Sites: 12})
	fmt.Printf("middleware layered view: %d triples (%d hydrology + %d chemical)\n\n",
		sc.Merged.Len(), sc.Hydrology.Store.Len(), sc.Chemical.Store.Len())

	// --- incident analysis (unrestricted, the middleware's own view) --------
	incident := sc.Hydrology.Streams[1] // a creek
	fmt.Printf("incident: contamination reported on %s (%s)\n", incident.Name, incident.IRI)

	// Which sites discharge within 1 mile (5280 ft) of the affected creek?
	pairs, err := grdf.SpatialJoin(sc.Merged, datagen.HydroStream, datagen.ChemSite, 5280)
	if err != nil {
		log.Fatal(err)
	}
	affected := map[rdf.Term]float64{}
	for _, p := range pairs {
		if p.A.Equal(incident.IRI) {
			affected[p.B] = p.Distance
		}
	}
	fmt.Printf("sites within 1 mile of the creek: %d\n", len(affected))
	var ordered []rdf.Term
	for s := range affected {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return affected[ordered[i]] < affected[ordered[j]] })
	for _, s := range ordered {
		name, _ := sc.Merged.FirstObject(s, datagen.HasSiteName)
		fmt.Printf("  %-28s %6.0f ft\n", lit(name), affected[s])
	}

	// --- the G-SACS middleware ----------------------------------------------
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	engine := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner, CacheSize: 16})

	show := func(roleName string, role rdf.IRI) {
		fmt.Printf("\n=== role: %s ===\n", roleName)
		view := engine.View(role, seconto.ActionView)
		fmt.Printf("filtered view: %d of %d triples\n", view.Len(), sc.Merged.Len())

		// What the role sees of the first affected site.
		if len(ordered) == 0 {
			return
		}
		site := ordered[0]
		acc := engine.Decide(role, seconto.ActionView, site)
		fmt.Printf("nearest site %s:\n", site.(rdf.IRI).LocalName())
		if !acc.Allowed {
			fmt.Println("  access denied")
			return
		}
		if env, ok := grdf.EnvelopeOfFeature(view, site); ok {
			c := env.Center()
			fmt.Printf("  extent center: %.0f,%.0f (%.0f x %.0f ft)\n",
				c.X, c.Y, env.Width(), env.Height())
		} else {
			fmt.Println("  extent: hidden")
		}
		if name, ok := view.FirstObject(site, datagen.HasSiteName); ok {
			fmt.Printf("  site name: %s\n", lit(name))
		} else {
			fmt.Println("  site name: hidden")
		}
		// Aggregate chemical list via a SPARQL query over the filtered view.
		res, err := engine.Query(role, seconto.ActionView, `
SELECT DISTINCT ?chem WHERE {
  ?site app:hasChemicalInfo ?info .
  ?info app:chemical ?rec .
  ?rec app:hasChemName ?chem .
} ORDER BY ?chem`)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Bindings) == 0 {
			fmt.Println("  chemicals: hidden")
		} else {
			fmt.Printf("  aggregate chemical list (%d):", len(res.Bindings))
			for _, b := range res.Bindings {
				fmt.Printf(" %s;", lit(b["chem"]))
			}
			fmt.Println()
		}
		// Codes/quantities/contacts stay hidden except for emergency response.
		codes, _ := engine.Query(role, seconto.ActionView,
			`SELECT ?c WHERE { ?rec app:hasChemCode ?c }`)
		contacts, _ := engine.Query(role, seconto.ActionView,
			`SELECT ?p WHERE { ?s app:hasContactPhone ?p }`)
		fmt.Printf("  chemical codes visible: %d, contacts visible: %d\n",
			len(codes.Bindings), len(contacts.Bindings))
	}

	show("main repair", datagen.RoleMainRepair)
	show("hazmat personnel", datagen.RoleHazmat)
	show("emergency response", datagen.RoleEmergency)

	// Spatially scoped policy: a field team cleared only for the incident
	// radius.
	fmt.Println("\n=== spatially scoped policy (incident radius only) ===")
	incidentEnv := geom.Buffer(mustGeometry(sc, incident.IRI), 5280)
	fieldRole := rdf.IRI(seconto.NS + "FieldTeam")
	scoped := &seconto.Set{Rules: append(sc.Policies.Rules, seconto.Rule{
		ID: seconto.NS + "FieldScoped", Subject: fieldRole,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: true,
		Properties:   []rdf.IRI{rdf.IRI(grdf.NS + "boundedBy"), datagen.HasSiteName},
		SpatialScope: &incidentEnv,
	})}
	scopedEngine := gsacs.New(scoped, sc.Merged, gsacs.Options{Reasoner: reasoner})
	visible := 0
	for _, s := range sc.Chemical.Sites {
		if scopedEngine.Decide(fieldRole, seconto.ActionView, s.IRI).Allowed {
			visible++
		}
	}
	fmt.Printf("field team sees %d of %d sites (those inside the incident envelope)\n",
		visible, len(sc.Chemical.Sites))
}

func lit(t rdf.Term) string {
	if l, ok := t.(rdf.Literal); ok {
		return l.Value
	}
	if t == nil {
		return "?"
	}
	return t.String()
}

func mustGeometry(sc *datagen.Scenario, iri rdf.IRI) geom.Geometry {
	g, _, err := grdf.GeometryOf(sc.Merged, iri)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
