// Alignment shows how a domain ontology with its own vocabulary is matched
// onto GRDF's mid-level concepts (Section 2: "to reconcile the deviation one
// can use ontology alignment techniques based on semantics similarity or NLP
// methods"). A municipal GIS ontology names things differently — BoundingBox
// for Envelope, Arc for Curve — and the lexical+structural matcher recovers
// the correspondences.
//
//	go run ./examples/alignment
package main

import (
	"fmt"
	"log"

	"repro/internal/align"
	"repro/internal/grdf"
	"repro/internal/turtle"
)

// A municipal GIS ontology: same shape as parts of GRDF, different names.
const cityOntology = `
@prefix city: <http://city.example/gis#> .
city:GISObject a owl:Class .
city:GeoFeature a owl:Class ; rdfs:subClassOf city:GISObject .
city:Shape a owl:Class ; rdfs:subClassOf city:GISObject .
city:Location a owl:Class ; rdfs:subClassOf city:Shape .
city:Arc a owl:Class ; rdfs:subClassOf city:Shape .
city:Area a owl:Class ; rdfs:subClassOf city:Shape .
city:BoundingBox a owl:Class ; rdfs:subClassOf city:GISObject .
city:Measurement a owl:Class ; rdfs:subClassOf city:GeoFeature .
city:ParcelMap a owl:Class ; rdfs:subClassOf city:GISObject .
`

func main() {
	cityGraph, err := turtle.ParseString(cityOntology)
	if err != nil {
		log.Fatal(err)
	}

	// Domain knowledge: the city's vocabulary in GRDF terms.
	synonyms := map[string]string{
		"location":    "point",
		"arc":         "curve",
		"area":        "surface",
		"bounding":    "envelope",
		"box":         "",
		"measurement": "observation",
		"geo":         "",
		"shape":       "geometry",
		"gis":         "grdf",
	}

	a := align.Align(grdf.Ontology(), cityGraph, align.Options{
		Synonyms:  synonyms,
		Threshold: 0.6,
	})

	fmt.Println("correspondences (GRDF concept -> city concept):")
	for _, p := range a.Pairs {
		fmt.Printf("  %-28s -> %-24s score %.2f\n",
			p.Left.LocalName(), p.Right.LocalName(), p.Score)
	}
	fmt.Printf("\n%d of %d city concepts aligned onto GRDF\n",
		len(a.Pairs), len(align.ConceptsOf(cityGraph)))
	fmt.Println("unmatched city concepts keep their own semantics (e.g. ParcelMap is city-specific)")
}
