// Observations exercises the paper's Section 3.3 types end to end: a water
// quality sensor on a stream produces Observations (themselves Features), a
// Coverage captures its temperature series, and the monitoring program's
// validity is described with an EnvelopeWithTimePeriod — the List 3
// construct whose two time positions the reasoner's cardinality check
// enforces.
//
//	go run ./examples/observations
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
)

func main() {
	st := store.New()

	// The monitored stream.
	stream := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"rowlettCreek"), rdf.IRI(rdf.AppNS+"HydroStream"))
	line, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 900, Y: 350}, {X: 2100, Y: 800}})
	if _, err := grdf.SetGeometry(st, stream, line, geom.TX83NCF); err != nil {
		log.Fatal(err)
	}

	// pH observations over one morning.
	base := time.Date(2008, 4, 7, 6, 0, 0, 0, time.UTC)
	for i, ph := range []float64{7.1, 7.0, 6.4, 5.9} {
		obs := grdf.NewObservation(st,
			rdf.IRI(fmt.Sprintf("%sobs%d", rdf.AppNS, i+1)),
			stream, base.Add(time.Duration(i)*time.Hour))
		grdf.SetObservationValue(st, obs, ph, "http://grdf.org/uom/ph")
	}

	recs, err := grdf.ObservationsOf(st, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pH observations (sorted by time):")
	for _, r := range recs {
		marker := ""
		if r.Value < 6.5 {
			marker = "  <- acidification event"
		}
		fmt.Printf("  %s  pH %.1f%s\n", r.At.Format("15:04"), r.Value, marker)
	}

	// A temperature coverage for the same sensor.
	cov := grdf.NewCoverage(st, rdf.IRI(rdf.AppNS+"tempSeries"), stream)
	for i, c := range []float64{18.2, 19.0, 20.4, 22.1} {
		grdf.AddCoverageSample(st, cov, base.Add(time.Duration(i)*time.Hour), c, "http://grdf.org/uom/celsius")
	}
	samples, err := grdf.CoverageSamples(st, cov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntemperature coverage: %d samples, %.1f°C → %.1f°C\n",
		len(samples), samples[0].Value, samples[len(samples)-1].Value)

	// Monitoring-program extent: where and when the program applies.
	env := geom.EnvelopeOf(geom.Coord{X: -100, Y: -100}, geom.Coord{X: 2200, Y: 900})
	program := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"monitoringProgram"), grdf.Feature)
	node, err := grdf.SetEnvelopeWithTimePeriod(st, program, env, geom.TX83NCF,
		time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2008, 12, 31, 0, 0, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}
	from, to, err := grdf.TimePeriodOf(st, node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmonitoring program valid %s .. %s over %.0f x %.0f ft\n",
		from.Format("2006-01-02"), to.Format("2006-01-02"), env.Width(), env.Height())

	// The ontology's List 3 restriction holds on this data.
	data := st.Snapshot()
	data.AddGraph(grdf.Ontology())
	m, stats := owl.Materialize(data)
	fmt.Printf("\nreasoning: %d inferred triples, %d consistency violations\n",
		stats.Inferred, len(owl.Check(m)))

	// Observations are features (inferred), so feature-level queries see them.
	eng := grdf.NewEngine(m)
	res, err := eng.Query(`SELECT (COUNT(?f) AS ?n) WHERE { ?f a grdf:Feature }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grdf:Feature instances (incl. observations): %s\n",
		res.Bindings[0]["n"].(rdf.Literal).Value)

	// Validation gives the dataset a clean bill.
	rep := grdf.Validate(st)
	fmt.Printf("validation: %d geometries checked, %d errors\n", rep.Checked, len(rep.Errors()))
}
