// Aggregation demonstrates the paper's motivating use case: two agencies
// store related intelligence in different formats and coordinate systems —
// a movement-tracking system publishing GML and an incident-records system
// publishing GRDF Turtle in a different CRS. GRDF's data model plus CRS
// normalization and OWL reasoning let one query span both ("a lot of
// intelligence data can be extracted or inferred by combining the data from
// the two applications, but the difference in formats gets in the way of
// such aggregation").
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/gml"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Source A: vehicle sightings as a GML feature collection, coordinates in
// TX83-NCF feet.
const sightingsGML = `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
  <gml:featureMember>
    <app:Sighting gml:id="sighting1">
      <app:vehiclePlate>TX-4482</app:vehiclePlate>
      <app:observedAt>2008-04-07T09:30:00Z</app:observedAt>
      <app:location>
        <gml:Point srsName="http://grdf.org/crs/TX83-NCF">
          <gml:coordinates>2533950,7108310</gml:coordinates>
        </gml:Point>
      </app:location>
    </app:Sighting>
  </gml:featureMember>
  <gml:featureMember>
    <app:Sighting gml:id="sighting2">
      <app:vehiclePlate>TX-9031</app:vehiclePlate>
      <app:observedAt>2008-04-07T11:10:00Z</app:observedAt>
      <app:location>
        <gml:Point srsName="http://grdf.org/crs/TX83-NCF">
          <gml:coordinates>2554000,7131000</gml:coordinates>
        </gml:Point>
      </app:location>
    </app:Sighting>
  </gml:featureMember>
</gml:FeatureCollection>`

// Source B: incident records in GRDF Turtle, coordinates in METERS
// (TX83-NCF-m) — same world, different format AND different CRS.
const incidentsTurtle = `
@prefix app: <http://grdf.org/app#> .
app:incident7 a app:IncidentRecord ;
    app:caseNumber "2008-0417" ;
    app:summary "warehouse break-in" ;
    grdf:hasGeometry app:incident7_geom .
app:incident7_geom a grdf:Point ;
    grdf:coordinates "772359.0,2166604.0" ;
    grdf:hasSRSName "http://grdf.org/crs/TX83-NCF-m" .
app:incident9 a app:IncidentRecord ;
    app:caseNumber "2008-0522" ;
    app:summary "fuel theft" ;
    grdf:hasGeometry app:incident9_geom .
app:incident9_geom a grdf:Point ;
    grdf:coordinates "762000.0,2160000.0" ;
    grdf:hasSRSName "http://grdf.org/crs/TX83-NCF-m" .
`

func main() {
	// Ingest source A (GML → GRDF).
	colA, err := gml.ParseString(sightingsGML)
	if err != nil {
		log.Fatal(err)
	}
	storeA := store.New()
	if _, err := gml.ToGRDF(storeA, colA, rdf.AppNS); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source A (GML, feet):      %d triples\n", storeA.Len())

	// Ingest source B (Turtle).
	graphB, err := turtle.ParseString(incidentsTurtle)
	if err != nil {
		log.Fatal(err)
	}
	storeB := store.FromGraph(graphB)
	fmt.Printf("source B (Turtle, meters): %d triples\n", storeB.Len())

	// Aggregate: merge, normalize every geometry to meters, materialize
	// inferences so both domain classes become grdf:Feature.
	res, err := grdf.Aggregate([]grdf.Source{
		{Name: "sightings", Store: storeA},
		{Name: "incidents", Store: storeB},
	}, grdf.AggregateOptions{
		TargetCRS: geom.TX83NCM,
		Registry:  geom.NewRegistry(),
		Reason:    true,
		Ontology:  grdf.Ontology(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated view:           %d triples (%d geometries re-projected, %d inferred)\n\n",
		res.Merged.Len(), res.Rewritten, res.Inferred)

	// A cross-domain query that neither source could answer alone: incidents
	// within 500 m of any vehicle sighting, regardless of origin format.
	eng := grdf.NewEngine(res.Merged)
	out, err := eng.Query(`
SELECT ?case ?plate WHERE {
  ?incident a app:IncidentRecord .
  ?incident app:caseNumber ?case .
  ?sighting a app:Sighting .
  ?sighting app:vehiclePlate ?plate .
  FILTER(grdf:distance(?incident, ?sighting) < 500)
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("incidents within 500 m of a sighting (cross-source spatial join):")
	for _, b := range out.Bindings {
		fmt.Printf("  case %s near vehicle %s\n",
			b["case"].(rdf.Literal).Value, b["plate"].(rdf.Literal).Value)
	}

	// Inference dividend: everything is now a grdf:Feature, so generic
	// GRDF-level tooling applies to both domains at once.
	features, err := eng.Query(`SELECT ?f WHERE { ?f a grdf:Feature }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngrdf:Feature instances after reasoning: %d (sightings + incidents)\n",
		len(features.Bindings))

	// Provenance: keep each source in its own named graph and ask which
	// graph a fact came from with a GRAPH pattern.
	ds := store.NewDataset()
	ds.SetGraph(rdf.IRI("http://grdf.org/graph/sightings"), storeA)
	ds.SetGraph(rdf.IRI("http://grdf.org/graph/incidents"), storeB)
	dsEng := sparql.NewDatasetEngine(ds)
	prov, err := dsEng.Query(`
SELECT ?g ?plateOrCase WHERE {
  { GRAPH ?g { ?s app:vehiclePlate ?plateOrCase } }
  UNION
  { GRAPH ?g { ?s app:caseNumber ?plateOrCase } }
} ORDER BY ?g ?plateOrCase`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-source provenance (named graphs):")
	for _, b := range prov.Bindings {
		fmt.Printf("  %-40s %s\n", b["g"].(rdf.IRI).LocalName(), b["plateOrCase"].(rdf.Literal).Value)
	}
}
