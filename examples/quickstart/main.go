// Quickstart: create GRDF features, attach geometry, serialize to Turtle and
// RDF/XML, and query them with SPARQL including a spatial filter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/store"
	"repro/internal/turtle"
)

func main() {
	st := store.New()

	// A city park: a polygon feature.
	ring, err := geom.NewLinearRing([]geom.Coord{
		{X: 0, Y: 0}, {X: 400, Y: 0}, {X: 400, Y: 300}, {X: 0, Y: 300}, {X: 0, Y: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	park := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"centralPark"), rdf.IRI(rdf.AppNS+"Park"))
	st.Add(rdf.T(park, rdf.RDFSLabel, rdf.NewString("Central Park")))
	if _, err := grdf.SetGeometry(st, park, geom.NewPolygon(ring), geom.TX83NCM); err != nil {
		log.Fatal(err)
	}

	// A fountain inside the park and a depot outside it: point features.
	fountain := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"fountain"), rdf.IRI(rdf.AppNS+"Landmark"))
	st.Add(rdf.T(fountain, rdf.RDFSLabel, rdf.NewString("Memorial Fountain")))
	if _, err := grdf.SetGeometry(st, fountain, geom.NewPoint(200, 150), geom.TX83NCM); err != nil {
		log.Fatal(err)
	}
	depot := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"depot"), rdf.IRI(rdf.AppNS+"Landmark"))
	st.Add(rdf.T(depot, rdf.RDFSLabel, rdf.NewString("Rail Depot")))
	if _, err := grdf.SetGeometry(st, depot, geom.NewPoint(2000, 2000), geom.TX83NCM); err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- Turtle serialization ---")
	if err := turtle.Write(os.Stdout, st.Graph(), nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- RDF/XML serialization (the paper's format) ---")
	if err := rdfxml.Write(os.Stdout, st.Graph(), nil); err != nil {
		log.Fatal(err)
	}

	// Query: which landmarks lie within the park? The grdf:within filter
	// resolves feature geometries automatically.
	fmt.Println("\n--- SPARQL: landmarks within the park ---")
	eng := grdf.NewEngine(st)
	res, err := eng.Query(`
SELECT ?label WHERE {
  ?lm a app:Landmark .
  ?lm rdfs:label ?label .
  FILTER(grdf:within(?lm, app:centralPark))
}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range res.Bindings {
		fmt.Printf("  %s\n", b["label"])
	}

	// Distances via the grdf:distance function.
	fmt.Println("\n--- SPARQL: landmark distances to the park ---")
	res, err = eng.Query(`
SELECT ?lm ?label WHERE {
  ?lm a app:Landmark .
  ?lm rdfs:label ?label .
  FILTER(grdf:distance(?lm, app:centralPark) >= 0)
} ORDER BY ?label`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range res.Bindings {
		g1, _, _ := grdf.GeometryOf(st, b["lm"])
		parkGeo, _, _ := grdf.GeometryOf(st, park)
		fmt.Printf("  %-20s %.1f m\n", b["label"].(rdf.Literal).Value, geom.Distance(g1, parkGeo))
	}
}
