package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// validFlags is a baseline configuration that must pass validation; each
// test case perturbs one field.
func validFlags() flagConfig {
	return flagConfig{
		addr: ":8080", sites: 12, cache: 32, auditCap: 256, logLevel: "info",
		queryTimeout: 30 * time.Second, drainTimeout: 10 * time.Second,
		maxBodyBytes: 1 << 20, fsync: "always",
		fsyncInterval: 50 * time.Millisecond, snapshotEvery: 10000,
		commitBatch:   128,
		sourceTimeout: 2 * time.Second, breakerThresh: 5, retryMax: 3,
		sloLatency: 100 * time.Millisecond, sloAvail: 0.999,
		admissionOn: true, maxQueue: 128, queueDeadline: 100 * time.Millisecond,
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(validFlags()); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	cases := map[string]func(*flagConfig){
		"empty addr":              func(c *flagConfig) { c.addr = "" },
		"policies without data":   func(c *flagConfig) { c.policyFile = "p.ttl" },
		"data without policies":   func(c *flagConfig) { c.dataFile = "d.ttl" },
		"zero sites":              func(c *flagConfig) { c.sites = 0 },
		"negative cache":          func(c *flagConfig) { c.cache = -1 },
		"negative audit":          func(c *flagConfig) { c.auditCap = -1 },
		"bogus log level":         func(c *flagConfig) { c.logLevel = "verbose" },
		"negative query timeout":  func(c *flagConfig) { c.queryTimeout = -time.Second },
		"zero drain timeout":      func(c *flagConfig) { c.drainTimeout = 0 },
		"negative body cap":       func(c *flagConfig) { c.maxBodyBytes = -1 },
		"bogus fsync policy":      func(c *flagConfig) { c.fsync = "sometimes" },
		"zero fsync interval":     func(c *flagConfig) { c.fsyncInterval = 0 },
		"negative snapshot-every": func(c *flagConfig) { c.snapshotEvery = -1 },
		"fsync without data-dir":  func(c *flagConfig) { c.fsync = "off" },
		"zero commit max batch":   func(c *flagConfig) { c.commitBatch = 0 },
		"negative commit delay":   func(c *flagConfig) { c.commitDelay = -time.Millisecond },
		"zero source timeout":     func(c *flagConfig) { c.sources = []string{"http://p"}; c.sourceTimeout = 0 },
		"zero breaker threshold":  func(c *flagConfig) { c.sources = []string{"http://p"}; c.breakerThresh = 0 },
		"zero retry max":          func(c *flagConfig) { c.sources = []string{"http://p"}; c.retryMax = 0 },
		"zero slo latency":        func(c *flagConfig) { c.sloLatency = 0 },
		"slo availability 1":      func(c *flagConfig) { c.sloAvail = 1 },
		"negative slo avail":      func(c *flagConfig) { c.sloAvail = -0.5 },
		"follow with data-dir": func(c *flagConfig) {
			c.follow = "http://leader:8080"
			c.dataDir = "/tmp/x"
		},
		"follow with sources": func(c *flagConfig) {
			c.follow = "http://leader:8080"
			c.sources = []string{"http://p"}
		},
		"follow with router": func(c *flagConfig) {
			c.follow = "http://leader:8080"
			c.router = true
		},
		"follow with negative lag": func(c *flagConfig) {
			c.follow = "http://leader:8080"
			c.maxReplicaLag = -time.Second
		},
		"router without sources":         func(c *flagConfig) { c.router = true },
		"retain-min-seq without datadir": func(c *flagConfig) { c.retainMinSeq = 10 },
		"negative max-queue":             func(c *flagConfig) { c.maxQueue = -1 },
		"zero queue deadline":            func(c *flagConfig) { c.queueDeadline = 0 },
	}
	for name, mutate := range cases {
		c := validFlags()
		mutate(&c)
		if err := validateFlags(c); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}

	// Valid variants that must NOT be rejected.
	ok := validFlags()
	ok.dataDir = "/tmp/x"
	ok.fsync = "interval"
	if err := validateFlags(ok); err != nil {
		t.Errorf("data-dir with interval fsync rejected: %v", err)
	}
	ok = validFlags()
	ok.dataFile, ok.policyFile = "d.ttl", "p.ttl"
	ok.sites = 0 // irrelevant when data files are given
	if err := validateFlags(ok); err != nil {
		t.Errorf("custom dataset with zero sites rejected: %v", err)
	}
	ok = validFlags()
	ok.follow = "http://leader:8080"
	ok.maxReplicaLag = 5 * time.Second
	if err := validateFlags(ok); err != nil {
		t.Errorf("plain follower rejected: %v", err)
	}
	ok = validFlags()
	ok.router = true
	ok.sources = []string{"http://replica1:8081", "http://replica2:8082"}
	if err := validateFlags(ok); err != nil {
		t.Errorf("router over replicas rejected: %v", err)
	}
	ok = validFlags()
	ok.dataDir = "/tmp/x"
	ok.retainMinSeq = 42
	if err := validateFlags(ok); err != nil {
		t.Errorf("manual retention floor on a durable leader rejected: %v", err)
	}
	ok = validFlags()
	ok.admissionOn = false
	ok.maxQueue = -1
	ok.queueDeadline = 0
	if err := validateFlags(ok); err != nil {
		t.Errorf("admission knobs irrelevant when admission is off: %v", err)
	}
}

// --- crash-recovery integration test -------------------------------------

func buildServerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsacs-server-test")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDurableServer launches the binary against dataDir and waits for the
// readiness transition (503 recovering -> 200 ok on /healthz).
func startDurableServer(t *testing.T, bin, dataDir string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-data-dir", dataDir, "-fsync", "always",
		"-sites", "3", "-seed", "7", "-audit", "64", "-cache", "0",
		"-snapshot-every", "0",
		"-writer-role", "Writer",
	)
	var logBuf bytes.Buffer
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote -addr-file; logs:\n%s", logBuf.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready; logs:\n%s", logBuf.String())
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, &logBuf
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// queryRows runs a SELECT and returns the result rows.
func queryRows(t *testing.T, base, role, q string) []map[string]string {
	t.Helper()
	resp, err := http.Get(base + "/v1/query?role=" + role + "&q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var parsed struct {
		Results []map[string]string `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatalf("query decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d", resp.StatusCode)
	}
	return parsed.Results
}

// TestCrashRecoverySIGKILL is the acceptance scenario: populate a durable
// server over HTTP, SIGKILL it (no drain, no clean close), restart it on the
// same directory, and verify every acknowledged mutation — and the audit
// trail accounting for it — survived.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	bin := buildServerBinary(t)
	dataDir := filepath.Join(t.TempDir(), "repo")

	cmd, base, logs := startDurableServer(t, bin, dataDir)

	// Find a scenario feature to write to.
	rows := queryRows(t, base, "Writer", "SELECT ?s WHERE { ?s a <http://grdf.org/app#ChemSite> }")
	if len(rows) == 0 {
		t.Fatalf("no ChemSite rows; logs:\n%s", logs.String())
	}
	site := strings.Trim(rows[0]["s"], "<>")

	// Ack a handful of inserts with -fsync always: each one is durable the
	// moment the 200 comes back.
	const notes = 5
	for i := 0; i < notes; i++ {
		body := fmt.Sprintf("<%s> <http://example.org/crashNote> \"note-%d\" .", site, i)
		resp, err := http.Post(base+"/v1/insert?role=Writer", "application/n-triples",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d = %d %s; logs:\n%s", i, resp.StatusCode, b.String(), logs.String())
		}
	}

	// Crash: SIGKILL, no drain, no Close. Anything not fsynced is gone —
	// the acked inserts must not be.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2, logs2 := startDurableServer(t, bin, dataDir)
	rows = queryRows(t, base2, "Writer",
		"SELECT ?o WHERE { <"+site+"> <http://example.org/crashNote> ?o }")
	if len(rows) != notes {
		t.Fatalf("recovered %d/%d acked inserts; logs:\n%s", len(rows), notes, logs2.String())
	}

	// The audit trail survived alongside the data it accounts for.
	resp, err := http.Get(base2 + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var audit struct {
		Total   int `json:"total"`
		Entries []struct {
			Subject string `json:"subject"`
			Action  string `json:"action"`
			Allowed bool   `json:"allowed"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&audit); err != nil {
		t.Fatal(err)
	}
	writerMods := 0
	for _, e := range audit.Entries {
		if strings.HasSuffix(e.Subject, "Writer") && strings.HasSuffix(e.Action, "Modify") && e.Allowed {
			writerMods++
		}
	}
	if writerMods < notes {
		t.Errorf("audit trail holds %d Writer Modify entries, want >= %d (total %d)",
			writerMods, notes, audit.Total)
	}
}

// TestServerRecoveringHealthz: the server binds before recovery and reports
// "recovering" on /healthz rather than refusing connections.
func TestServerRecoveringHealthz(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real server binary")
	}
	bin := buildServerBinary(t)
	// A fresh directory recovers fast, so the window is tiny; accept either
	// "recovering" or "ok" but require a well-formed answer immediately
	// after the address is published.
	_, base, _ := startDurableServer(t, bin, filepath.Join(t.TempDir(), "repo"))
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
}

// TestValidateFlagsExitCode drives the real binary with a bad flag
// combination and checks the fail-fast behaviour: exit code 2 and a usage
// message on stderr.
func TestValidateFlagsExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real server binary")
	}
	bin := buildServerBinary(t)
	cmd := exec.Command(bin, "-fsync", "sometimes", "-data-dir", t.TempDir())
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if err == nil {
		t.Fatalf("bad -fsync accepted; output:\n%s", out)
	}
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2; output:\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("-fsync")) || !bytes.Contains(out, []byte("Usage")) {
		t.Errorf("usage error not printed:\n%s", out)
	}
}
