// Command gsacs-server runs the Fig. 3 secure-GRDF middleware over the
// Section 7.1 scenario (or user-supplied data and policies) and serves the
// G-SACS HTTP API:
//
//	GET /healthz      status, triple count, cache and audit stats
//	GET /metrics      Prometheus text exposition of the whole stack
//	GET /roles
//	GET /ontologies
//	GET /view?role=MainRep[&format=ntriples]
//	GET /resource?role=Hazmat&iri=<feature-iri>
//	GET /query?role=Hazmat&q=<sparql>
//	GET /audit
//	POST /insert, /delete, /update   authorized mutations (N-Triples bodies)
//
// Every response carries an X-Trace-Id header; the same ID appears on every
// structured (JSON, stderr) log line the request produced.
//
// With -data-dir the ontology repository is durable: every authorized
// mutation is journaled to a write-ahead log before it is acknowledged,
// the state is periodically checkpointed into checksummed snapshots, and a
// restart recovers to exactly the acknowledged state (see README "Durability
// & crash recovery"). The server starts listening immediately and answers
// 503 {"code":"recovering"} on every route except /healthz and /metrics
// until recovery completes. On the first start against an empty directory
// the initial dataset (scenario or -data file) is seeded through the log.
//
// With -source the server federates /v1/query across the local engine and
// one or more peer G-SACS servers, with per-source retries, circuit
// breakers and graceful degradation (see README "Federation & fault
// tolerance"). SIGINT/SIGTERM drain in-flight requests for up to
// -drain-timeout before exit, then close the log cleanly.
//
// A durable server (-data-dir) is also a replication leader: followers pull
// its WAL over GET /v1/wal/stream and bootstrap from GET /v1/wal/snapshot.
// With -follow the server runs as a read replica instead: it replicates the
// leader's state, serves reads, answers every mutation with 421 and a
// Location header naming the leader, and gates its readiness on replication
// lag (-max-replica-lag) — /healthz flips to 503 "lagging" whenever the
// replica cannot prove itself caught up within the bound (see README
// "Replication & failover"). -router serves /v1/query purely by fanning out
// across -source replicas, with no local engine in the merge.
//
// Usage:
//
//	gsacs-server -addr :8080                       # built-in scenario
//	gsacs-server -data world.ttl -policies p.ttl   # custom dataset
//	gsacs-server -data-dir /var/lib/gsacs -fsync always   # durable repository
//	gsacs-server -pprof -log-level debug           # profiling + verbose logs
//	gsacs-server -source http://peer1:8080 -source-timeout 2s \
//	             -breaker-threshold 5 -retry-max 3 # federated front-end
//	gsacs-server -follow http://leader:8080 -max-replica-lag 5s  # read replica
//	gsacs-server -router -source http://replica1:8081 \
//	             -source http://replica2:8082       # replica-only query router
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/buildinfo"
	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/workload"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/turtle"
	"repro/internal/wal"
)

// sourceList collects repeated -source flags.
type sourceList []string

func (s *sourceList) String() string { return strings.Join(*s, ",") }
func (s *sourceList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*s = append(*s, part)
		}
	}
	return nil
}

// flagConfig carries every flag value through validation, so the whole
// configuration is checked up front and bad combinations fail fast with a
// usage error instead of surfacing minutes later at first use.
type flagConfig struct {
	addr          string
	addrFile      string
	dataFile      string
	policyFile    string
	sites         int
	cache         int
	auditCap      int
	logLevel      string
	queryTimeout  time.Duration
	drainTimeout  time.Duration
	maxBodyBytes  int64
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	snapshotEvery int
	commitBatch   int
	commitDelay   time.Duration
	writerRole    string
	sources       []string
	sourceTimeout time.Duration
	breakerThresh int
	retryMax      int
	traceBuffer   int
	slowQuery     time.Duration
	sloLatency    time.Duration
	sloAvail      float64
	follow        string
	maxReplicaLag time.Duration
	router        bool
	retainMinSeq  uint64
	admissionOn   bool
	maxQueue      int
	queueDeadline time.Duration
	workloadTopK  int
	profileRing   int
	profileWindow time.Duration
	profileEvery  time.Duration
	clusterOn     bool
}

// validateFlags rejects inconsistent or out-of-range configurations. It is a
// pure function so the matrix is unit-testable.
func validateFlags(c flagConfig) error {
	if c.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if c.dataFile == "" && c.policyFile != "" {
		return fmt.Errorf("-policies requires -data")
	}
	if c.dataFile != "" && c.policyFile == "" {
		return fmt.Errorf("-data requires -policies")
	}
	if c.dataFile == "" && c.sites < 1 {
		return fmt.Errorf("-sites must be at least 1 when using the built-in scenario")
	}
	if c.cache < 0 {
		return fmt.Errorf("-cache must be non-negative")
	}
	if c.auditCap < 0 {
		return fmt.Errorf("-audit must be non-negative")
	}
	switch strings.ToLower(c.logLevel) {
	case "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("-log-level must be debug, info, warn or error (got %q)", c.logLevel)
	}
	if c.queryTimeout < 0 {
		return fmt.Errorf("-query-timeout must be non-negative")
	}
	if c.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive")
	}
	if c.maxBodyBytes < 0 {
		return fmt.Errorf("-max-body-bytes must be non-negative")
	}
	if _, err := wal.ParseFsyncPolicy(c.fsync); err != nil {
		return fmt.Errorf("-fsync: %v", err)
	}
	if c.fsyncInterval <= 0 {
		return fmt.Errorf("-fsync-interval must be positive")
	}
	if c.snapshotEvery < 0 {
		return fmt.Errorf("-snapshot-every must be non-negative (0 disables automatic snapshots)")
	}
	if c.dataDir == "" && c.fsync != "always" {
		return fmt.Errorf("-fsync has no effect without -data-dir")
	}
	if c.commitBatch < 1 {
		return fmt.Errorf("-commit-max-batch must be at least 1")
	}
	if c.commitDelay < 0 {
		return fmt.Errorf("-commit-max-delay must be non-negative")
	}
	if len(c.sources) > 0 {
		if c.sourceTimeout <= 0 {
			return fmt.Errorf("-source-timeout must be positive")
		}
		if c.breakerThresh < 1 {
			return fmt.Errorf("-breaker-threshold must be at least 1")
		}
		if c.retryMax < 1 {
			return fmt.Errorf("-retry-max must be at least 1")
		}
	}
	if c.follow != "" {
		if c.dataDir != "" {
			return fmt.Errorf("-follow runs a read replica; -data-dir would fork the leader's durable history")
		}
		if len(c.sources) > 0 || c.router {
			return fmt.Errorf("-follow cannot be combined with -source or -router; run the router as its own process")
		}
		if c.maxReplicaLag < 0 {
			return fmt.Errorf("-max-replica-lag must be non-negative (0 disables the lag gate)")
		}
	}
	if c.router && len(c.sources) == 0 {
		return fmt.Errorf("-router requires at least one -source replica to route to")
	}
	if c.retainMinSeq > 0 && c.dataDir == "" {
		return fmt.Errorf("-wal-retain-min-seq has no effect without -data-dir")
	}
	if c.traceBuffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative (0 disables trace retention)")
	}
	if c.slowQuery < 0 {
		return fmt.Errorf("-slow-query-threshold must be non-negative (0 disables the slow-query log)")
	}
	if c.sloLatency <= 0 {
		return fmt.Errorf("-slo-latency must be positive")
	}
	if c.sloAvail <= 0 || c.sloAvail >= 1 {
		return fmt.Errorf("-slo-availability must be in (0, 1), e.g. 0.999")
	}
	if c.admissionOn {
		if c.maxQueue < 0 {
			return fmt.Errorf("-max-queue must be non-negative (0 disables queueing)")
		}
		if c.queueDeadline <= 0 {
			return fmt.Errorf("-queue-deadline must be positive")
		}
	}
	if c.workloadTopK < 0 {
		return fmt.Errorf("-workload-topk must be non-negative (0 disables workload introspection)")
	}
	if c.profileRing < 0 {
		return fmt.Errorf("-profile-ring must be non-negative (0 disables continuous profiling)")
	}
	if c.profileRing > 0 {
		if c.profileWindow <= 0 {
			return fmt.Errorf("-profile-cpu-window must be positive")
		}
		if c.profileEvery < 0 {
			return fmt.Errorf("-profile-every must be non-negative (0 = burn-triggered captures only)")
		}
	}
	if c.clusterOn && len(c.sources) == 0 {
		return fmt.Errorf("-cluster requires at least one -source peer to roll up")
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (integration-test port discovery)")
	dataFile := flag.String("data", "", "Turtle data file (empty = built-in contamination scenario)")
	policyFile := flag.String("policies", "", "Turtle policy file (List 8 layout); requires -data")
	sites := flag.Int("sites", 12, "scenario size when using built-in data")
	seed := flag.Int64("seed", 7, "scenario seed when using built-in data")
	cache := flag.Int("cache", 32, "query cache entries (0 disables)")
	auditCap := flag.Int("audit", 256, "audit trail capacity (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, error")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request SPARQL evaluation deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "in-flight request drain window on SIGINT/SIGTERM")
	maxBodyBytes := flag.Int64("max-body-bytes", 1<<20, "request body cap on /insert, /delete and /update (0 disables)")

	dataDir := flag.String("data-dir", "", "durable repository directory (empty = in-memory only; mutations are lost on exit)")
	fsyncMode := flag.String("fsync", "always", "WAL durability: always (fsync per mutation), interval (batched), off")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "flush period under -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 10000, "WAL records between automatic snapshots (0 disables)")
	commitMaxBatch := flag.Int("commit-max-batch", 128, "max mutations fused into one group commit (1 disables batching)")
	commitMaxDelay := flag.Duration("commit-max-delay", 500*time.Microsecond, "straggler-gathering window before a group commit fsyncs; only spent while concurrent writers are in flight (0 = fuse only naturally queued writers)")
	writerRole := flag.String("writer-role", "", "grant this role full View/Modify/Delete over grdf:Feature (write-path testing)")

	var sources sourceList
	flag.Var(&sources, "source", "peer G-SACS base URL to federate /v1/query across (repeatable or comma-separated)")
	sourceTimeout := flag.Duration("source-timeout", 2*time.Second, "per-attempt deadline against each federated source")
	breakerOff := flag.Bool("breaker-off", false, "disable the per-source circuit breakers")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a source's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open time before a half-open probe")
	retryMax := flag.Int("retry-max", 3, "attempts per source per request (1 disables retries)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff before the first retry")

	follow := flag.String("follow", "", "run as a read replica of this leader base URL (replicates its WAL; mutations answer 421 pointing at the leader)")
	maxReplicaLag := flag.Duration("max-replica-lag", 5*time.Second, "replica staleness bound: readiness flips to 503 \"lagging\" when the follower cannot prove itself caught up within this window (0 disables)")
	router := flag.Bool("router", false, "federate /v1/query across -source replicas only, with no local engine in the merge")
	walRetainMinSeq := flag.Uint64("wal-retain-min-seq", 0, "manual WAL GC retention floor: never delete segments holding records at or after this sequence (0 = active follower positions alone drive retention)")

	traceBuffer := flag.Int("trace-buffer", 256, "completed traces retained for /v1/traces (0 disables retention; spans still feed explain=analyze and the slow-query log)")
	slowQuery := flag.Duration("slow-query-threshold", 0, "log the full span tree of any request slower than this (0 disables)")
	sloLatency := flag.Duration("slo-latency", 100*time.Millisecond, "p99 latency objective tracked by /v1/slo and grdf_slo_* metrics")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective (fraction of requests that must not 5xx)")
	admissionOn := flag.Bool("admission", true, "adaptive admission control: shed load with 429 + Retry-After instead of queueing unboundedly")
	maxQueue := flag.Int("max-queue", 128, "per-class admission queue bound (0 disables queueing; over-limit arrivals shed immediately)")
	queueDeadline := flag.Duration("queue-deadline", 100*time.Millisecond, "longest a request may wait for an admission slot before it is shed")
	priorityHeader := flag.String("priority-header", "X-Priority", "request header carrying the client priority tier (high/normal/low)")
	workloadTopK := flag.Int("workload-topk", 256, "query fingerprints tracked for /v1/queries (0 disables workload introspection)")
	profileRing := flag.Int("profile-ring", 8, "profile captures retained for /v1/profiles (0 disables continuous profiling)")
	profileCPUWindow := flag.Duration("profile-cpu-window", 2*time.Second, "CPU profiling window per capture")
	profileEvery := flag.Duration("profile-every", 0, "periodic capture cadence (0 = burn-triggered captures only)")
	clusterOn := flag.Bool("cluster", false, "mount the /v1/cluster fleet rollup over the -source peers")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "gsacs-server")
		return
	}

	cfg := flagConfig{
		addr: *addr, addrFile: *addrFile, dataFile: *dataFile, policyFile: *policyFile,
		sites: *sites, cache: *cache, auditCap: *auditCap, logLevel: *logLevel,
		queryTimeout: *queryTimeout, drainTimeout: *drainTimeout, maxBodyBytes: *maxBodyBytes,
		dataDir: *dataDir, fsync: *fsyncMode, fsyncInterval: *fsyncInterval,
		snapshotEvery: *snapshotEvery, writerRole: *writerRole,
		commitBatch: *commitMaxBatch, commitDelay: *commitMaxDelay,
		sources: sources, sourceTimeout: *sourceTimeout,
		breakerThresh: *breakerThreshold, retryMax: *retryMax,
		traceBuffer: *traceBuffer, slowQuery: *slowQuery,
		sloLatency: *sloLatency, sloAvail: *sloAvail,
		follow: *follow, maxReplicaLag: *maxReplicaLag,
		router: *router, retainMinSeq: *walRetainMinSeq,
		admissionOn: *admissionOn, maxQueue: *maxQueue, queueDeadline: *queueDeadline,
		workloadTopK: *workloadTopK, profileRing: *profileRing,
		profileWindow: *profileCPUWindow, profileEvery: *profileEvery,
		clusterOn: *clusterOn,
	}
	if err := validateFlags(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))
	reg := obs.NewRegistry()
	buildinfo.Register(reg)
	tracer := obs.NewTracer(*traceBuffer).Instrument(reg)
	if *slowQuery > 0 {
		tracer.SetSlowQueryLog(*slowQuery, logger)
	}

	seedData, policies, err := loadDataset(*dataFile, *policyFile, *sites, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
		os.Exit(1)
	}
	if *writerRole != "" {
		role := appendWriterRole(policies, *writerRole)
		logger.Info("writer role granted full access over grdf:Feature", "role", string(role))
	}

	// Durable mode builds the engine over an empty store and recovers into it
	// asynchronously; follower mode builds it over an empty store that the
	// replication loop fills; in-memory mode serves the loaded dataset
	// directly.
	var engine *gsacs.Engine
	var ready atomic.Bool
	var repoPtr atomic.Pointer[wal.Repository]
	var leaderPtr atomic.Pointer[repl.Leader]
	durable := *dataDir != ""
	following := *follow != ""
	if durable || following {
		st := store.New().Instrument(reg)
		engine = gsacs.New(policies, st, gsacs.Options{CacheSize: *cache, Metrics: reg})
		if following {
			if *auditCap > 0 {
				engine.EnableAudit(*auditCap)
			}
			// A replica's serving gate is its replication state (bootstrapped,
			// within the lag bound), not the durable-recovery probe.
			ready.Store(true)
		}
	} else {
		seedData.Instrument(reg)
		engine = gsacs.New(policies, seedData, gsacs.Options{
			Reasoner:  newReasoner(seedData, reg),
			CacheSize: *cache,
			Metrics:   reg,
		})
		if *auditCap > 0 {
			engine.EnableAudit(*auditCap)
		}
		ready.Store(true)
	}

	// Group-commit tuning applies to the data store regardless of durability:
	// in-memory mode still batches generation publications under write load.
	engine.Data().SetCommitBatching(*commitMaxBatch, *commitMaxDelay)

	ontoRepo := gsacs.NewOntoRepository()
	ontoRepo.Register("grdf", grdf.Ontology())
	ontoRepo.Register("seconto", seconto.Ontology())

	slo := obs.NewSLOEngine(obs.SLOConfig{
		LatencyTarget:      *sloLatency,
		AvailabilityTarget: *sloAvail,
	})
	opts := []gsacs.ServerOption{gsacs.WithMetrics(reg), gsacs.WithLogger(logger),
		gsacs.WithQueryTimeout(*queryTimeout), gsacs.WithMaxBodyBytes(*maxBodyBytes),
		gsacs.WithReadiness(ready.Load), gsacs.WithTracer(tracer), gsacs.WithSLO(slo)}
	if *workloadTopK > 0 {
		opts = append(opts, gsacs.WithWorkload(workload.New(workload.Config{
			Capacity: *workloadTopK,
			Registry: reg,
			Logger:   logger,
		})))
	}
	var profiler *prof.Profiler
	if *profileRing > 0 {
		profiler = prof.New(prof.Config{
			Ring:      *profileRing,
			CPUWindow: *profileCPUWindow,
			Every:     *profileEvery,
			// The SLO engine's fast-burn verdict is the primary trigger: the
			// watch loop captures the collapse while it starts, not after.
			Burn:     func() bool { return !slo.Status().AvailabilityOK },
			Registry: reg,
			Logger:   logger,
		})
		profiler.Start()
		defer profiler.Stop()
		opts = append(opts, gsacs.WithProfiler(profiler))
	}
	if *admissionOn {
		// The AIMD loop defends post-admission service latency; the SLO is
		// end-to-end. Leave the queue deadline as headroom between the two so
		// an admitted request that waited its full deadline can still finish
		// inside the SLO — but never defend less than half the SLO, or a fat
		// deadline would starve the target.
		target := *sloLatency - *queueDeadline
		if target < *sloLatency/2 {
			target = *sloLatency / 2
		}
		mq := *maxQueue
		if mq == 0 {
			mq = admission.NoQueue
		}
		// An overload signal flipping on is exactly the moment whose
		// flamegraph matters: capture immediately instead of waiting for the
		// burn-watch poll.
		var onSignal func(prev, cur admission.Signal)
		if profiler != nil {
			onSignal = func(prev, cur admission.Signal) {
				if cur.FastBurnBreached && !prev.FastBurnBreached {
					profiler.Trigger("fast_burn")
				}
				if cur.Saturated && !prev.Saturated {
					profiler.Trigger("overload")
				}
			}
		}
		opts = append(opts, gsacs.WithAdmission(gsacs.AdmissionConfig{
			Controller: admission.NewController(admission.Config{
				MaxQueue:      mq,
				QueueDeadline: *queueDeadline,
				LatencyTarget: target,
				Signal:        admission.DefaultSignal(slo, reg),
				OnSignal:      onSignal,
				Metrics:       reg,
			}),
			PriorityHeader: *priorityHeader,
		}))
	}
	if *pprofOn {
		opts = append(opts, gsacs.WithPprof())
	}
	if durable {
		// The repository appears only after recovery; the closure tolerates the
		// window by answering nil, which /healthz renders as no wal block yet.
		opts = append(opts, gsacs.WithWALStatus(func() any {
			if repo := repoPtr.Load(); repo != nil {
				return repo.WALStatus()
			}
			return nil
		}))
		// A durable server is a replication leader: followers stream its WAL
		// and bootstrap from its snapshots. Like the repository, the leader
		// appears only once recovery completes.
		opts = append(opts, gsacs.WithReplLeader(leaderPtr.Load))
	}
	var follower *repl.Follower
	if following {
		f, err := repl.NewFollower(engine.Data(), repl.FollowerOptions{
			LeaderURL: *follow,
			MaxLag:    *maxReplicaLag,
			Metrics:   reg,
			Logger:    logger,
			// Every bootstrap (initial, post-fencing, post-compaction) replaces
			// the triple set wholesale; the reasoner's inferences must follow.
			OnBootstrap: func() { engine.SetReasoner(newReasoner(engine.Data(), reg)) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
			os.Exit(1)
		}
		follower = f
		opts = append(opts,
			gsacs.WithReplStatus(f.Status),
			gsacs.WithMutationRedirect(*follow))
	}
	if len(sources) > 0 {
		var members []federation.Source
		if !*router {
			// A dedicated router process carries no data of its own; anything
			// else merges its local engine into the fan-out.
			members = append(members, federation.NewLocalSource("local", engine))
		}
		for i, base := range sources {
			members = append(members,
				federation.NewRemoteSource(fmt.Sprintf("peer%d", i+1), base, nil))
		}
		fed, err := federation.New(federation.Config{
			SourceTimeout:  *sourceTimeout,
			DisableBreaker: *breakerOff,
			Breaker: federation.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
			},
			Retry: federation.RetryConfig{
				MaxAttempts: *retryMax,
				BaseDelay:   *retryBase,
			},
			Metrics: reg,
		}, members...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, gsacs.WithFederator(fed))
	}
	if *clusterOn {
		peers := make([]gsacs.ClusterPeer, 0, len(sources))
		for i, base := range sources {
			peers = append(peers, gsacs.ClusterPeer{Name: fmt.Sprintf("peer%d", i+1), Base: base})
		}
		opts = append(opts, gsacs.WithCluster(gsacs.ClusterConfig{Peers: peers}))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gsacs.NewServer(engine, ontoRepo, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Bind before recovery: clients get 503 "recovering" rather than
	// connection refused, and readiness probes can watch the transition.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gsacs-server: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	logger.Info("gsacs-server listening",
		"addr", ln.Addr().String(),
		"durable", durable,
		"follow", *follow,
		"router", *router,
		"policies", len(engine.Policies().Rules),
		"cache_entries", *cache,
		"audit_capacity", *auditCap,
		"pprof", *pprofOn,
		"federated_sources", len(sources),
		"admission", *admissionOn,
		"drain_timeout", drainTimeout.String(),
	)

	replCtx, replCancel := context.WithCancel(context.Background())
	defer replCancel()
	if follower != nil {
		go follower.Run(replCtx)
	}

	if durable {
		policy, _ := wal.ParseFsyncPolicy(*fsyncMode)
		go func() {
			if err := recoverDurable(engine, seedData, wal.Options{
				Dir:           *dataDir,
				Fsync:         policy,
				FsyncInterval: *fsyncInterval,
				SnapshotEvery: *snapshotEvery,
				Metrics:       reg,
				Logger:        logger,
			}, *auditCap, reg, logger, &repoPtr); err != nil {
				logger.Error("recovery failed; refusing to serve", "err", err.Error())
				// Exiting non-zero beats serving 503 forever: the operator
				// must decide what to do with the damaged directory.
				os.Exit(1)
			}
			// Recovery done: stand up the replication leader over the open
			// repository so followers can stream and bootstrap.
			leaderPtr.Store(repl.NewLeader(engine.Data(), repoPtr.Load(), repl.LeaderOptions{
				RetainMinSeq: *walRetainMinSeq,
				Metrics:      reg,
				Logger:       logger,
			}))
			ready.Store(true)
			logger.Info("gsacs-server ready", "triples", engine.Data().Len())
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	serveErr := serve(srv, ln, stop, *drainTimeout, logger)
	// Drain finished (or failed): stop replication first, then flush and
	// close the log so the final fsync state on disk matches what clients
	// were told.
	replCancel()
	if ld := leaderPtr.Load(); ld != nil {
		ld.Close()
	}
	if repo := repoPtr.Load(); repo != nil {
		if err := repo.Close(); err != nil {
			logger.Error("closing repository", "err", err.Error())
		}
	}
	if serveErr != nil {
		os.Exit(1)
	}
}

// recoverDurable opens the write-ahead log (replaying the durable state into
// the engine's store), seeds the initial dataset on first boot, materializes
// the reasoner over the recovered triples, and restores + re-wires the audit
// trail. The engine must not serve requests until this returns (the
// readiness gate enforces it).
func recoverDurable(engine *gsacs.Engine, seedData *store.Store, walOpts wal.Options,
	auditCap int, reg *obs.Registry, logger *slog.Logger, repoPtr *atomic.Pointer[wal.Repository]) error {
	st := engine.Data()
	repo, err := wal.Open(st, walOpts)
	if err != nil {
		return err
	}
	repoPtr.Store(repo)
	info := repo.Info()
	if st.Len() == 0 && info.RecordsReplayed == 0 && info.SnapshotSeq == 0 {
		// First boot on an empty directory: journal the initial dataset so
		// the log alone reconstructs it from here on.
		n := st.AddAll(seedData.Triples())
		logger.Info("seeded initial dataset into the durable repository", "triples", n)
	}
	engine.SetReasoner(newReasoner(st, reg))
	if auditCap > 0 {
		engine.EnableAudit(auditCap)
		if restored := engine.RestoreAudit(repo.AuditReplay()); restored > 0 {
			logger.Info("restored audit trail", "entries", restored)
		}
		engine.SetAuditPersist(repo.AppendAudit)
	}
	return nil
}

// appendWriterRole grants role (full IRI or seconto local name) permit rules
// for View, Modify and Delete over every grdf:Feature.
func appendWriterRole(p *seconto.Set, role string) rdf.IRI {
	iri := rdf.IRI(role)
	if !strings.Contains(role, "://") {
		iri = rdf.IRI(seconto.NS + role)
	}
	for _, action := range []rdf.IRI{seconto.ActionView, seconto.ActionModify, seconto.ActionDelete} {
		p.Rules = append(p.Rules, seconto.Rule{
			ID:       rdf.IRI(seconto.NS + "WriterRole" + action.LocalName()),
			Subject:  iri,
			Action:   action,
			Resource: grdf.Feature,
			Permit:   true,
		})
	}
	return iri
}

// serve runs srv on ln (nil = srv.ListenAndServe) until it fails or a signal
// arrives on stop, then drains in-flight requests for up to drain. The stop
// channel is a parameter so tests can drive the shutdown path without
// delivering real signals.
func serve(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, logger *slog.Logger) error {
	errCh := make(chan error, 1)
	go func() {
		if ln != nil {
			errCh <- srv.Serve(ln)
		} else {
			errCh <- srv.ListenAndServe()
		}
	}()
	select {
	case err := <-errCh:
		// Serve only returns on failure (or external Shutdown).
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server exited", "err", err.Error())
			return err
		}
		return nil
	case sig := <-stop:
		logger.Info("shutdown signal received, draining",
			"signal", fmt.Sprint(sig), "drain_timeout", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		start := time.Now()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain incomplete, forcing close",
				"err", err.Error(), "waited", time.Since(start).String())
			srv.Close()
			return err
		}
		logger.Info("drained cleanly", "took", time.Since(start).String())
		return nil
	}
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// loadDataset loads the initial data store and policy set: the built-in
// scenario, or user-supplied Turtle files.
func loadDataset(dataFile, policyFile string, sites int, seed int64) (*store.Store, *seconto.Set, error) {
	if dataFile == "" {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
		return sc.Merged, sc.Policies, nil
	}
	raw, err := os.ReadFile(dataFile)
	if err != nil {
		return nil, nil, err
	}
	g, err := turtle.ParseString(string(raw))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", dataFile, err)
	}
	data := store.FromGraph(g)
	if policyFile == "" {
		return nil, nil, fmt.Errorf("-data requires -policies")
	}
	praw, err := os.ReadFile(policyFile)
	if err != nil {
		return nil, nil, err
	}
	pg, err := turtle.ParseString(string(praw))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", policyFile, err)
	}
	policies, err := seconto.Parse(store.FromGraph(pg))
	if err != nil {
		return nil, nil, err
	}
	return data, policies, nil
}

// newReasoner materializes an OWL reasoner over the ontologies plus the
// store's current triples.
func newReasoner(data *store.Store, reg *obs.Registry) *owl.Reasoner {
	r := owl.NewReasoner().Instrument(reg)
	r.AddGraph(grdf.Ontology())
	r.AddGraph(seconto.Ontology())
	r.AddAll(data.Triples())
	return r
}

// buildEngine is the synchronous (in-memory) engine constructor: dataset,
// instrumentation, reasoner, engine.
func buildEngine(dataFile, policyFile string, sites int, seed int64, cache int, reg *obs.Registry) (*gsacs.Engine, error) {
	data, policies, err := loadDataset(dataFile, policyFile, sites, seed)
	if err != nil {
		return nil, err
	}
	data.Instrument(reg)
	return gsacs.New(policies, data, gsacs.Options{
		Reasoner:  newReasoner(data, reg),
		CacheSize: cache,
		Metrics:   reg,
	}), nil
}
