// Command gsacs-server runs the Fig. 3 secure-GRDF middleware over the
// Section 7.1 scenario (or user-supplied data and policies) and serves the
// G-SACS HTTP API:
//
//	GET /healthz      status, triple count, cache and audit stats
//	GET /metrics      Prometheus text exposition of the whole stack
//	GET /roles
//	GET /ontologies
//	GET /view?role=MainRep[&format=ntriples]
//	GET /resource?role=Hazmat&iri=<feature-iri>
//	GET /query?role=Hazmat&q=<sparql>
//	GET /audit
//
// Every response carries an X-Trace-Id header; the same ID appears on every
// structured (JSON, stderr) log line the request produced.
//
// Usage:
//
//	gsacs-server -addr :8080                       # built-in scenario
//	gsacs-server -data world.ttl -policies p.ttl   # custom dataset
//	gsacs-server -pprof -log-level debug           # profiling + verbose logs
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/turtle"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataFile := flag.String("data", "", "Turtle data file (empty = built-in contamination scenario)")
	policyFile := flag.String("policies", "", "Turtle policy file (List 8 layout); requires -data")
	sites := flag.Int("sites", 12, "scenario size when using built-in data")
	seed := flag.Int64("seed", 7, "scenario seed when using built-in data")
	cache := flag.Int("cache", 32, "query cache entries (0 disables)")
	auditCap := flag.Int("audit", 256, "audit trail capacity (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, error")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request SPARQL evaluation deadline (0 disables)")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))
	reg := obs.NewRegistry()

	engine, err := buildEngine(*dataFile, *policyFile, *sites, *seed, *cache, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
		os.Exit(1)
	}

	if *auditCap > 0 {
		engine.EnableAudit(*auditCap)
	}

	repo := gsacs.NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	repo.Register("seconto", seconto.Ontology())

	opts := []gsacs.ServerOption{gsacs.WithMetrics(reg), gsacs.WithLogger(logger),
		gsacs.WithQueryTimeout(*queryTimeout)}
	if *pprofOn {
		opts = append(opts, gsacs.WithPprof())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gsacs.NewServer(engine, repo, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("gsacs-server listening",
		"addr", *addr,
		"triples", engine.Data().Len(),
		"policies", len(engine.Policies().Rules),
		"cache_entries", *cache,
		"audit_capacity", *auditCap,
		"pprof", *pprofOn,
	)
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("server exited", "err", err.Error())
		os.Exit(1)
	}
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func buildEngine(dataFile, policyFile string, sites int, seed int64, cache int, reg *obs.Registry) (*gsacs.Engine, error) {
	var data *store.Store
	var policies *seconto.Set

	if dataFile == "" {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
		data, policies = sc.Merged, sc.Policies
	} else {
		raw, err := os.ReadFile(dataFile)
		if err != nil {
			return nil, err
		}
		g, err := turtle.ParseString(string(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dataFile, err)
		}
		data = store.FromGraph(g)
		if policyFile == "" {
			return nil, fmt.Errorf("-data requires -policies")
		}
		praw, err := os.ReadFile(policyFile)
		if err != nil {
			return nil, err
		}
		pg, err := turtle.ParseString(string(praw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", policyFile, err)
		}
		policies, err = seconto.Parse(store.FromGraph(pg))
		if err != nil {
			return nil, err
		}
	}

	data.Instrument(reg)
	reasoner := owl.NewReasoner().Instrument(reg)
	reasoner.AddGraph(grdf.Ontology())
	reasoner.AddGraph(seconto.Ontology())
	reasoner.AddAll(data.Triples())
	return gsacs.New(policies, data, gsacs.Options{
		Reasoner:  reasoner,
		CacheSize: cache,
		Metrics:   reg,
	}), nil
}
