// Command gsacs-server runs the Fig. 3 secure-GRDF middleware over the
// Section 7.1 scenario (or user-supplied data and policies) and serves the
// G-SACS HTTP API:
//
//	GET /healthz      status, triple count, cache and audit stats
//	GET /metrics      Prometheus text exposition of the whole stack
//	GET /roles
//	GET /ontologies
//	GET /view?role=MainRep[&format=ntriples]
//	GET /resource?role=Hazmat&iri=<feature-iri>
//	GET /query?role=Hazmat&q=<sparql>
//	GET /audit
//
// Every response carries an X-Trace-Id header; the same ID appears on every
// structured (JSON, stderr) log line the request produced.
//
// With -source the server federates /v1/query across the local engine and
// one or more peer G-SACS servers, with per-source retries, circuit
// breakers and graceful degradation (see README "Federation & fault
// tolerance"). SIGINT/SIGTERM drain in-flight requests for up to
// -drain-timeout before exit.
//
// Usage:
//
//	gsacs-server -addr :8080                       # built-in scenario
//	gsacs-server -data world.ttl -policies p.ttl   # custom dataset
//	gsacs-server -pprof -log-level debug           # profiling + verbose logs
//	gsacs-server -source http://peer1:8080 -source-timeout 2s \
//	             -breaker-threshold 5 -retry-max 3 # federated front-end
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/turtle"
)

// sourceList collects repeated -source flags.
type sourceList []string

func (s *sourceList) String() string { return strings.Join(*s, ",") }
func (s *sourceList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*s = append(*s, part)
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataFile := flag.String("data", "", "Turtle data file (empty = built-in contamination scenario)")
	policyFile := flag.String("policies", "", "Turtle policy file (List 8 layout); requires -data")
	sites := flag.Int("sites", 12, "scenario size when using built-in data")
	seed := flag.Int64("seed", 7, "scenario seed when using built-in data")
	cache := flag.Int("cache", 32, "query cache entries (0 disables)")
	auditCap := flag.Int("audit", 256, "audit trail capacity (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, error")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request SPARQL evaluation deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "in-flight request drain window on SIGINT/SIGTERM")
	maxBodyBytes := flag.Int64("max-body-bytes", 1<<20, "request body cap on /insert and /delete (0 disables)")

	var sources sourceList
	flag.Var(&sources, "source", "peer G-SACS base URL to federate /v1/query across (repeatable or comma-separated)")
	sourceTimeout := flag.Duration("source-timeout", 2*time.Second, "per-attempt deadline against each federated source")
	breakerOff := flag.Bool("breaker-off", false, "disable the per-source circuit breakers")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a source's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open time before a half-open probe")
	retryMax := flag.Int("retry-max", 3, "attempts per source per request (1 disables retries)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff before the first retry")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel))
	reg := obs.NewRegistry()

	engine, err := buildEngine(*dataFile, *policyFile, *sites, *seed, *cache, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
		os.Exit(1)
	}

	if *auditCap > 0 {
		engine.EnableAudit(*auditCap)
	}

	repo := gsacs.NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	repo.Register("seconto", seconto.Ontology())

	opts := []gsacs.ServerOption{gsacs.WithMetrics(reg), gsacs.WithLogger(logger),
		gsacs.WithQueryTimeout(*queryTimeout), gsacs.WithMaxBodyBytes(*maxBodyBytes)}
	if *pprofOn {
		opts = append(opts, gsacs.WithPprof())
	}
	if len(sources) > 0 {
		members := []federation.Source{federation.NewLocalSource("local", engine)}
		for i, base := range sources {
			members = append(members,
				federation.NewRemoteSource(fmt.Sprintf("peer%d", i+1), base, nil))
		}
		fed, err := federation.New(federation.Config{
			SourceTimeout:  *sourceTimeout,
			DisableBreaker: *breakerOff,
			Breaker: federation.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
			},
			Retry: federation.RetryConfig{
				MaxAttempts: *retryMax,
				BaseDelay:   *retryBase,
			},
			Metrics: reg,
		}, members...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, gsacs.WithFederator(fed))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gsacs.NewServer(engine, repo, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("gsacs-server listening",
		"addr", *addr,
		"triples", engine.Data().Len(),
		"policies", len(engine.Policies().Rules),
		"cache_entries", *cache,
		"audit_capacity", *auditCap,
		"pprof", *pprofOn,
		"federated_sources", len(sources),
		"drain_timeout", drainTimeout.String(),
	)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(srv, stop, *drainTimeout, logger); err != nil {
		os.Exit(1)
	}
}

// serve runs srv until it fails or a signal arrives on stop, then drains
// in-flight requests for up to drain. The stop channel is a parameter so
// tests can drive the shutdown path without delivering real signals.
func serve(srv *http.Server, stop <-chan os.Signal, drain time.Duration, logger *slog.Logger) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure (or external Shutdown).
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server exited", "err", err.Error())
			return err
		}
		return nil
	case sig := <-stop:
		logger.Info("shutdown signal received, draining",
			"signal", fmt.Sprint(sig), "drain_timeout", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		start := time.Now()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain incomplete, forcing close",
				"err", err.Error(), "waited", time.Since(start).String())
			srv.Close()
			return err
		}
		logger.Info("drained cleanly", "took", time.Since(start).String())
		return nil
	}
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func buildEngine(dataFile, policyFile string, sites int, seed int64, cache int, reg *obs.Registry) (*gsacs.Engine, error) {
	var data *store.Store
	var policies *seconto.Set

	if dataFile == "" {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
		data, policies = sc.Merged, sc.Policies
	} else {
		raw, err := os.ReadFile(dataFile)
		if err != nil {
			return nil, err
		}
		g, err := turtle.ParseString(string(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dataFile, err)
		}
		data = store.FromGraph(g)
		if policyFile == "" {
			return nil, fmt.Errorf("-data requires -policies")
		}
		praw, err := os.ReadFile(policyFile)
		if err != nil {
			return nil, err
		}
		pg, err := turtle.ParseString(string(praw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", policyFile, err)
		}
		policies, err = seconto.Parse(store.FromGraph(pg))
		if err != nil {
			return nil, err
		}
	}

	data.Instrument(reg)
	reasoner := owl.NewReasoner().Instrument(reg)
	reasoner.AddGraph(grdf.Ontology())
	reasoner.AddGraph(seconto.Ontology())
	reasoner.AddAll(data.Triples())
	return gsacs.New(policies, data, gsacs.Options{
		Reasoner:  reasoner,
		CacheSize: cache,
		Metrics:   reg,
	}), nil
}
