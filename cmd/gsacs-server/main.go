// Command gsacs-server runs the Fig. 3 secure-GRDF middleware over the
// Section 7.1 scenario (or user-supplied data and policies) and serves the
// G-SACS HTTP API:
//
//	GET /healthz
//	GET /roles
//	GET /ontologies
//	GET /view?role=MainRep[&format=ntriples]
//	GET /resource?role=Hazmat&iri=<feature-iri>
//	GET /query?role=Hazmat&q=<sparql>
//
// Usage:
//
//	gsacs-server -addr :8080                       # built-in scenario
//	gsacs-server -data world.ttl -policies p.ttl   # custom dataset
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/seconto"
	"repro/internal/store"
	"repro/internal/turtle"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataFile := flag.String("data", "", "Turtle data file (empty = built-in contamination scenario)")
	policyFile := flag.String("policies", "", "Turtle policy file (List 8 layout); requires -data")
	sites := flag.Int("sites", 12, "scenario size when using built-in data")
	seed := flag.Int64("seed", 7, "scenario seed when using built-in data")
	cache := flag.Int("cache", 32, "query cache entries (0 disables)")
	auditCap := flag.Int("audit", 256, "audit trail capacity (0 disables)")
	flag.Parse()

	engine, err := buildEngine(*dataFile, *policyFile, *sites, *seed, *cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsacs-server: %v\n", err)
		os.Exit(1)
	}

	if *auditCap > 0 {
		engine.EnableAudit(*auditCap)
	}

	repo := gsacs.NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	repo.Register("seconto", seconto.Ontology())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gsacs.NewServer(engine, repo),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("gsacs-server: %d data triples, %d policies, listening on %s",
		engine.Data().Len(), len(engine.Policies().Rules), *addr)
	log.Fatal(srv.ListenAndServe())
}

func buildEngine(dataFile, policyFile string, sites int, seed int64, cache int) (*gsacs.Engine, error) {
	var data *store.Store
	var policies *seconto.Set

	if dataFile == "" {
		sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
		data, policies = sc.Merged, sc.Policies
	} else {
		raw, err := os.ReadFile(dataFile)
		if err != nil {
			return nil, err
		}
		g, err := turtle.ParseString(string(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dataFile, err)
		}
		data = store.FromGraph(g)
		if policyFile == "" {
			return nil, fmt.Errorf("-data requires -policies")
		}
		praw, err := os.ReadFile(policyFile)
		if err != nil {
			return nil, err
		}
		pg, err := turtle.ParseString(string(praw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", policyFile, err)
		}
		policies, err = seconto.Parse(store.FromGraph(pg))
		if err != nil {
			return nil, err
		}
	}

	reasoner := gsacs.NewOWLReasoner(data, grdf.Ontology(), seconto.Ontology())
	return gsacs.New(policies, data, gsacs.Options{
		Reasoner:  reasoner,
		CacheSize: cache,
	}), nil
}
