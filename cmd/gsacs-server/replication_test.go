package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startFollowerServer launches the binary as a read replica of leaderBase
// and returns once the address file is written. Readiness is the caller's
// business: a follower is 503 until its bootstrap snapshot lands.
func startFollowerServer(t *testing.T, bin, leaderBase string, maxLag time.Duration) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	// -writer-role mirrors the leader's policy grant: policies are local
	// configuration, not replicated data, so a replica must be launched with
	// the same policy surface or its reads will be authorized differently.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-follow", leaderBase, "-max-replica-lag", maxLag.String(),
		"-sites", "3", "-seed", "7", "-cache", "0",
		"-writer-role", "Writer",
	)
	var logBuf bytes.Buffer
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start follower: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("follower never wrote -addr-file; logs:\n%s", logBuf.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, "http://" + string(b), &logBuf
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitHealth polls /healthz until it answers with want, failing on timeout.
func waitHealth(t *testing.T, base string, want int, logs *bytes.Buffer, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	last := -1
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			last = resp.StatusCode
			resp.Body.Close()
			if last == want {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("waiting for %s: /healthz stuck at %d, want %d; logs:\n%s",
		what, last, want, logs.String())
}

// noteCount counts crashNote objects on site as served by base.
func noteCount(t *testing.T, base, site string) int {
	t.Helper()
	return len(queryRows(t, base, "Writer",
		"SELECT ?o WHERE { <"+site+"> <http://example.org/crashNote> ?o }"))
}

// insertNotes acks n crashNote inserts against the leader, tagged from
// offset so successive batches stay distinguishable.
func insertNotes(t *testing.T, base, site string, offset, n int, logs *bytes.Buffer) {
	t.Helper()
	for i := 0; i < n; i++ {
		body := fmt.Sprintf("<%s> <http://example.org/crashNote> \"note-%d\" .", site, offset+i)
		resp, err := http.Post(base+"/v1/insert?role=Writer", "application/n-triples",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d = %d %s; logs:\n%s", offset+i, resp.StatusCode, b.String(), logs.String())
		}
	}
}

// TestFollowerCrashRecoverySIGKILL is the replication acceptance scenario
// with real processes: a follower replicates a durable leader, gets
// SIGKILLed mid-run and restarted, resumes, and converges with zero
// divergence; then the leader itself is SIGKILLed — the follower's
// readiness must flip to 503 once its lag exceeds the bound, and flip back
// after the leader restarts (a new epoch, so the follower re-bootstraps
// across the fence).
func TestFollowerCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server binaries")
	}
	bin := buildServerBinary(t)
	dataDir := filepath.Join(t.TempDir(), "leader-repo")
	leaderCmd, leaderBase, leaderLogs := startDurableServer(t, bin, dataDir)

	rows := queryRows(t, leaderBase, "Writer", "SELECT ?s WHERE { ?s a <http://grdf.org/app#ChemSite> }")
	if len(rows) == 0 {
		t.Fatalf("no ChemSite rows; logs:\n%s", leaderLogs.String())
	}
	site := strings.Trim(rows[0]["s"], "<>")

	const maxLag = 2 * time.Second
	followerCmd, followerBase, followerLogs := startFollowerServer(t, bin, leaderBase, maxLag)
	waitHealth(t, followerBase, http.StatusOK, followerLogs, "follower bootstrap")

	// Acked leader writes must show up on the replica.
	insertNotes(t, leaderBase, site, 0, 5, leaderLogs)
	waitFor := func(base string, want int, logs *bytes.Buffer, what string) {
		deadline := time.Now().Add(30 * time.Second)
		for noteCount(t, base, site) != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: replica has %d notes, want %d; logs:\n%s",
					what, noteCount(t, base, site), want, logs.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitFor(followerBase, 5, followerLogs, "initial replication")

	// The replica refuses writes and points at the leader.
	resp, err := http.Post(followerBase+"/v1/insert?role=Writer", "application/n-triples",
		strings.NewReader("<"+site+"> <http://example.org/crashNote> \"rogue\" ."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("replica write = %d, want 421", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leaderBase) {
		t.Fatalf("replica write Location %q does not name the leader %q", loc, leaderBase)
	}

	// Kill the follower mid-run — no drain — and write more while it is gone.
	if err := followerCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	followerCmd.Wait()
	insertNotes(t, leaderBase, site, 5, 3, leaderLogs)

	// A restarted follower bootstraps fresh and converges on everything,
	// including the writes it never saw.
	_, follower2Base, follower2Logs := startFollowerServer(t, bin, leaderBase, maxLag)
	waitHealth(t, follower2Base, http.StatusOK, follower2Logs, "follower restart")
	waitFor(follower2Base, 8, follower2Logs, "post-restart convergence")

	// Streaming still works after the restart: a live write arrives without
	// another bootstrap.
	insertNotes(t, leaderBase, site, 8, 1, leaderLogs)
	waitFor(follower2Base, 9, follower2Logs, "post-restart streaming")

	// Zero divergence: leader and replica agree on the exact note set.
	leaderRows := queryRows(t, leaderBase, "Writer",
		"SELECT ?o WHERE { <"+site+"> <http://example.org/crashNote> ?o }")
	followerRows := queryRows(t, follower2Base, "Writer",
		"SELECT ?o WHERE { <"+site+"> <http://example.org/crashNote> ?o }")
	leaderSet := map[string]bool{}
	for _, r := range leaderRows {
		leaderSet[r["o"]] = true
	}
	for _, r := range followerRows {
		if !leaderSet[r["o"]] {
			t.Fatalf("replica holds %q, absent on leader", r["o"])
		}
	}
	if len(leaderRows) != len(followerRows) {
		t.Fatalf("divergence: leader %d notes, replica %d", len(leaderRows), len(followerRows))
	}

	// Kill the leader: once the follower cannot prove itself caught up
	// within -max-replica-lag, its readiness must drop to 503.
	if err := leaderCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leaderCmd.Wait()
	waitHealth(t, follower2Base, http.StatusServiceUnavailable, follower2Logs, "lag gate to trip")

	// Restart the leader on the same directory. Its epoch changes, so the
	// follower re-bootstraps across the fence and recovers readiness —
	// except the leader now has a new port, so point a fresh follower setup
	// at it only if the address moved.
	_, leader2Base, leader2Logs := startDurableServer(t, bin, dataDir)
	if leader2Base == leaderBase {
		// Same address: the running follower reconnects and recovers on its own.
		waitHealth(t, follower2Base, http.StatusOK, follower2Logs, "follower recovery after leader restart")
		waitFor(follower2Base, 9, follower2Logs, "post-failover convergence")
	} else {
		// The ephemeral port moved, which a static -follow URL cannot chase;
		// verify recovery with a follower aimed at the new address instead.
		_, follower3Base, follower3Logs := startFollowerServer(t, bin, leader2Base, maxLag)
		waitHealth(t, follower3Base, http.StatusOK, follower3Logs, "follower of restarted leader")
		waitFor(follower3Base, 9, follower3Logs, "post-failover convergence")
	}
	_ = leader2Logs

	// The replica's /healthz carries the replication status block.
	hresp, err := http.Get(follower2Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]json.RawMessage
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["replication"]; !ok {
		t.Fatalf("follower /healthz missing replication block: %v", health)
	}
}
