package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gsacs"
)

func TestBuildEngineBuiltinScenario(t *testing.T) {
	e, err := buildEngine("", "", 5, 3, 8)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if e.Data().Len() == 0 {
		t.Error("empty scenario data")
	}
	if len(e.Policies().Rules) == 0 {
		t.Error("no policies")
	}
	// Serve it and hit an endpoint end to end.
	srv := httptest.NewServer(gsacs.NewServer(e, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/roles")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("roles = %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestBuildEngineCustomData(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.ttl")
	policyFile := filepath.Join(dir, "policies.ttl")
	os.WriteFile(dataFile, []byte(`
@prefix app: <http://grdf.org/app#> .
app:s1 a app:ChemSite ; app:hasSiteName "Plant" .
`), 0o644)
	os.WriteFile(policyFile, []byte(`
seconto:Viewer a seconto:Subject ; seconto:hasPolicy seconto:P1 .
seconto:P1 a seconto:Policy ;
    seconto:hasAction seconto:View ;
    seconto:hasPolicyDecision seconto:Permit ;
    seconto:hasResource app:ChemSite .
`), 0o644)

	e, err := buildEngine(dataFile, policyFile, 0, 0, 0)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if len(e.Policies().Rules) != 1 {
		t.Errorf("rules = %d", len(e.Policies().Rules))
	}

	// error paths
	if _, err := buildEngine(dataFile, "", 0, 0, 0); err == nil || !strings.Contains(err.Error(), "requires -policies") {
		t.Errorf("missing -policies not rejected: %v", err)
	}
	if _, err := buildEngine(filepath.Join(dir, "missing.ttl"), policyFile, 0, 0, 0); err == nil {
		t.Error("missing data file accepted")
	}
	badPol := filepath.Join(dir, "bad.ttl")
	os.WriteFile(badPol, []byte("not turtle @@"), 0o644)
	if _, err := buildEngine(dataFile, badPol, 0, 0, 0); err == nil {
		t.Error("bad policy file accepted")
	}
}
