package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gsacs"
	"repro/internal/obs"
)

func TestBuildEngineBuiltinScenario(t *testing.T) {
	e, err := buildEngine("", "", 5, 3, 8, nil)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if e.Data().Len() == 0 {
		t.Error("empty scenario data")
	}
	if len(e.Policies().Rules) == 0 {
		t.Error("no policies")
	}
	// Serve it and hit an endpoint end to end.
	srv := httptest.NewServer(gsacs.NewServer(e, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/roles")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("roles = %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestObservabilityEndToEnd drives the fully-instrumented server the same
// way main() wires it and checks the acceptance criteria: /metrics serves
// every advertised family, and the /query trace ID shows up in the logs.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, slog.LevelInfo)

	e, err := buildEngine("", "", 5, 3, 8, reg)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	e.EnableAudit(16)
	srv := httptest.NewServer(gsacs.NewServer(e, nil,
		gsacs.WithMetrics(reg), gsacs.WithLogger(logger)))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get(obs.TraceHeader)
	}

	query := "SELECT ?s WHERE { ?s a <http://grdf.org/app#ChemSite> }"
	_, traceID := get("/query?role=Hazmat&q=" + url.QueryEscape(query))
	if traceID == "" {
		t.Fatal("no trace ID on /query response")
	}
	if !strings.Contains(logBuf.String(), traceID) {
		t.Errorf("trace ID %s missing from logs:\n%s", traceID, logBuf.String())
	}

	metrics, _ := get("/metrics")
	for _, family := range []string{
		"grdf_http_request_duration_seconds_bucket",
		"grdf_http_requests_total",
		"grdf_http_in_flight_requests",
		"grdf_cache_hits_total",
		"grdf_cache_misses_total",
		"grdf_decisions_total",
		"grdf_reasoner_inferred_triples",
		"grdf_store_triples",
		"grdf_sparql_eval_duration_seconds",
		"grdf_audit_entries",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(metrics, `grdf_http_requests_total{code="200",route="/query"}`) {
		t.Errorf("per-route counter missing:\n%s", metrics)
	}

	// /healthz surfaces cache and audit stats (previously unreachable).
	health, _ := get("/healthz")
	for _, want := range []string{`"cache"`, `"hits"`, `"audit"`, `"overwritten"`, `"generation"`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %s: %s", want, health)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "bogus": slog.LevelInfo,
	} {
		if got := parseLevel(in); got != want {
			t.Errorf("parseLevel(%q) = %v", in, got)
		}
	}
}

func TestBuildEngineCustomData(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.ttl")
	policyFile := filepath.Join(dir, "policies.ttl")
	os.WriteFile(dataFile, []byte(`
@prefix app: <http://grdf.org/app#> .
app:s1 a app:ChemSite ; app:hasSiteName "Plant" .
`), 0o644)
	os.WriteFile(policyFile, []byte(`
seconto:Viewer a seconto:Subject ; seconto:hasPolicy seconto:P1 .
seconto:P1 a seconto:Policy ;
    seconto:hasAction seconto:View ;
    seconto:hasPolicyDecision seconto:Permit ;
    seconto:hasResource app:ChemSite .
`), 0o644)

	e, err := buildEngine(dataFile, policyFile, 0, 0, 0, nil)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if len(e.Policies().Rules) != 1 {
		t.Errorf("rules = %d", len(e.Policies().Rules))
	}

	// error paths
	if _, err := buildEngine(dataFile, "", 0, 0, 0, nil); err == nil || !strings.Contains(err.Error(), "requires -policies") {
		t.Errorf("missing -policies not rejected: %v", err)
	}
	if _, err := buildEngine(filepath.Join(dir, "missing.ttl"), policyFile, 0, 0, 0, nil); err == nil {
		t.Error("missing data file accepted")
	}
	badPol := filepath.Join(dir, "bad.ttl")
	os.WriteFile(badPol, []byte("not turtle @@"), 0o644)
	if _, err := buildEngine(dataFile, badPol, 0, 0, 0, nil); err == nil {
		t.Error("bad policy file accepted")
	}
}
