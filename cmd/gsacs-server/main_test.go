package main

import (
	"bytes"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gsacs"
	"repro/internal/obs"
)

func TestBuildEngineBuiltinScenario(t *testing.T) {
	e, err := buildEngine("", "", 5, 3, 8, nil)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if e.Data().Len() == 0 {
		t.Error("empty scenario data")
	}
	if len(e.Policies().Rules) == 0 {
		t.Error("no policies")
	}
	// Serve it and hit an endpoint end to end.
	srv := httptest.NewServer(gsacs.NewServer(e, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/roles")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("roles = %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestObservabilityEndToEnd drives the fully-instrumented server the same
// way main() wires it and checks the acceptance criteria: /metrics serves
// every advertised family, and the /query trace ID shows up in the logs.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, slog.LevelInfo)

	e, err := buildEngine("", "", 5, 3, 8, reg)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	e.EnableAudit(16)
	srv := httptest.NewServer(gsacs.NewServer(e, nil,
		gsacs.WithMetrics(reg), gsacs.WithLogger(logger)))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get(obs.TraceHeader)
	}

	query := "SELECT ?s WHERE { ?s a <http://grdf.org/app#ChemSite> }"
	_, traceID := get("/query?role=Hazmat&q=" + url.QueryEscape(query))
	if traceID == "" {
		t.Fatal("no trace ID on /query response")
	}
	if !strings.Contains(logBuf.String(), traceID) {
		t.Errorf("trace ID %s missing from logs:\n%s", traceID, logBuf.String())
	}

	metrics, _ := get("/metrics")
	for _, family := range []string{
		"grdf_http_request_duration_seconds_bucket",
		"grdf_http_requests_total",
		"grdf_http_in_flight_requests",
		"grdf_cache_hits_total",
		"grdf_cache_misses_total",
		"grdf_decisions_total",
		"grdf_reasoner_inferred_triples",
		"grdf_store_triples",
		"grdf_sparql_eval_duration_seconds",
		"grdf_audit_entries",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(metrics, `grdf_http_requests_total{code="200",route="/query"}`) {
		t.Errorf("per-route counter missing:\n%s", metrics)
	}

	// /healthz surfaces cache and audit stats (previously unreachable).
	health, _ := get("/healthz")
	for _, want := range []string{`"cache"`, `"hits"`, `"audit"`, `"overwritten"`, `"generation"`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %s: %s", want, health)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "bogus": slog.LevelInfo,
	} {
		if got := parseLevel(in); got != want {
			t.Errorf("parseLevel(%q) = %v", in, got)
		}
	}
}

func TestBuildEngineCustomData(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.ttl")
	policyFile := filepath.Join(dir, "policies.ttl")
	os.WriteFile(dataFile, []byte(`
@prefix app: <http://grdf.org/app#> .
app:s1 a app:ChemSite ; app:hasSiteName "Plant" .
`), 0o644)
	os.WriteFile(policyFile, []byte(`
seconto:Viewer a seconto:Subject ; seconto:hasPolicy seconto:P1 .
seconto:P1 a seconto:Policy ;
    seconto:hasAction seconto:View ;
    seconto:hasPolicyDecision seconto:Permit ;
    seconto:hasResource app:ChemSite .
`), 0o644)

	e, err := buildEngine(dataFile, policyFile, 0, 0, 0, nil)
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if len(e.Policies().Rules) != 1 {
		t.Errorf("rules = %d", len(e.Policies().Rules))
	}

	// error paths
	if _, err := buildEngine(dataFile, "", 0, 0, 0, nil); err == nil || !strings.Contains(err.Error(), "requires -policies") {
		t.Errorf("missing -policies not rejected: %v", err)
	}
	if _, err := buildEngine(filepath.Join(dir, "missing.ttl"), policyFile, 0, 0, 0, nil); err == nil {
		t.Error("missing data file accepted")
	}
	badPol := filepath.Join(dir, "bad.ttl")
	os.WriteFile(badPol, []byte("not turtle @@"), 0o644)
	if _, err := buildEngine(dataFile, badPol, 0, 0, 0, nil); err == nil {
		t.Error("bad policy file accepted")
	}
}

// waitListen blocks until addr accepts TCP connections (serve binds the
// listener asynchronously).
func waitListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("listener on %s never came up", addr)
}

// TestServeGracefulShutdown drives serve() through the signal path: an
// in-flight request must finish inside the drain window, the listener must
// stop accepting, and the shutdown must be logged as a clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("done"))
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	ln.Close() // serve() calls ListenAndServe itself; we only wanted the port

	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, slog.LevelInfo)
	stop := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(srv, nil, stop, 2*time.Second, logger) }()
	waitListen(t, srv.Addr)

	// Fire a request that blocks in the handler, then deliver the signal.
	reqErr := make(chan error, 1)
	reqBody := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		reqBody <- string(b)
		reqErr <- nil
	}()
	select {
	case <-started:
	case err := <-reqErr:
		t.Fatalf("request failed before reaching handler: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	stop <- os.Interrupt
	// Shutdown is now draining; let the in-flight handler finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	if got := <-reqBody; got != "done" {
		t.Errorf("in-flight response = %q, want done", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "shutdown signal received") ||
		!strings.Contains(logs, "drained cleanly") {
		t.Errorf("shutdown not logged:\n%s", logs)
	}
	// The listener is gone: new connections must fail.
	if _, err := http.Get("http://" + srv.Addr + "/roles"); err == nil {
		t.Error("server still accepting after shutdown")
	}
}

// TestServeDrainTimeout forces the drain window to expire with a request
// still in flight: serve must log the forced close and return the error.
func TestServeDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	ln.Close()

	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, slog.LevelInfo)
	stop := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(srv, nil, stop, 20*time.Millisecond, logger) }()
	waitListen(t, srv.Addr)

	go func() { http.Get("http://" + srv.Addr + "/hang") }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	stop <- os.Interrupt
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("serve returned nil despite an un-drainable request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain timeout")
	}
	if !strings.Contains(logBuf.String(), "drain incomplete") {
		t.Errorf("forced close not logged:\n%s", logBuf.String())
	}
}
