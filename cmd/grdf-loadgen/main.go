// Command grdf-loadgen fires an open-loop (constant-arrival-rate) Section
// 7.1 traffic mix at a live gsacs-server and reports coordinated-omission-
// corrected latency distributions with an SLO verdict.
//
// Unlike a closed-loop client, the arrival schedule never slows down when
// the server stalls: every request's latency is measured from its intended
// start on the schedule, so queueing delay is charged to the samples that
// suffered it. The exit status encodes the verdict — 0 on pass, 1 on SLO
// breach, 2 on usage errors — so CI can gate on capacity.
//
// -target accepts a comma-separated list of servers; the read arms are
// round-robined across all of them (the replicas of a replicated
// deployment), while mutations always address the first entry — list the
// leader first when the mix includes writes.
//
// Usage:
//
//	grdf-loadgen -target http://127.0.0.1:8080 -rps 500 -duration 30s
//	grdf-loadgen -target ... -sweep 250,500,1000,2000 -json report.json
//	grdf-loadgen -target ... -writer-role Writer -mix query=70,view=25,mutate=5
//	grdf-loadgen -target http://r1:8081,http://r2:8082 -rps 1000  # replica fan-out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/load"
)

// flagConfig carries every flag through validation so bad configurations
// fail fast with a usage error.
type flagConfig struct {
	target      string
	rps         float64
	duration    time.Duration
	sweep       string
	mix         string
	writerRole  string
	sloLatency  time.Duration
	sloQuantile float64
	sloAvail    float64
	maxInFlight int
	timeout     time.Duration
	seed        int64
}

// parseTargets splits a comma-separated -target list, dropping empty
// entries so a trailing comma is harmless.
func parseTargets(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSweep parses "250,500,1000" into rates.
func parseSweep(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMix parses "query=70,view=25,mutate=5" into weights. Unmentioned
// classes get weight 0; an empty string keeps the defaults.
func parseMix(s string) (query, view, mutate int, err error) {
	if strings.TrimSpace(s) == "" {
		return 0, 0, 0, nil // ScenarioArms defaults apply
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return 0, 0, 0, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		w, werr := strconv.Atoi(strings.TrimSpace(kv[1]))
		if werr != nil || w < 0 {
			return 0, 0, 0, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "query":
			query = w
		case "view":
			view = w
		case "mutate":
			mutate = w
		default:
			return 0, 0, 0, fmt.Errorf("unknown mix class %q (query, view, mutate)", kv[0])
		}
	}
	if query+view+mutate == 0 {
		return 0, 0, 0, fmt.Errorf("mix %q has zero total weight", s)
	}
	return query, view, mutate, nil
}

// validateFlags rejects inconsistent configurations; pure for testing.
func validateFlags(c flagConfig) error {
	targets := parseTargets(c.target)
	if len(targets) == 0 {
		return fmt.Errorf("-target is required")
	}
	for _, t := range targets {
		if !strings.HasPrefix(t, "http://") && !strings.HasPrefix(t, "https://") {
			return fmt.Errorf("-target entries must be http(s) URLs (got %q)", t)
		}
	}
	sweep, err := parseSweep(c.sweep)
	if err != nil {
		return fmt.Errorf("-sweep: %v", err)
	}
	if len(sweep) == 0 && c.rps <= 0 {
		return fmt.Errorf("-rps must be positive (or use -sweep)")
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be positive")
	}
	_, _, mutate, err := parseMix(c.mix)
	if err != nil {
		return fmt.Errorf("-mix: %v", err)
	}
	if mutate > 0 && c.writerRole == "" {
		return fmt.Errorf("-mix includes mutations but -writer-role is empty")
	}
	if c.sloLatency <= 0 {
		return fmt.Errorf("-slo-latency must be positive")
	}
	if c.sloQuantile <= 0 || c.sloQuantile >= 1 {
		return fmt.Errorf("-slo-quantile must be in (0, 1)")
	}
	if c.sloAvail <= 0 || c.sloAvail >= 1 {
		return fmt.Errorf("-slo-availability must be in (0, 1)")
	}
	if c.maxInFlight < 1 {
		return fmt.Errorf("-max-in-flight must be at least 1")
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive")
	}
	return nil
}

func main() {
	target := flag.String("target", "", "gsacs-server base URL(s), comma-separated; reads round-robin across all, mutations hit the first")
	rps := flag.Float64("rps", 100, "constant arrival rate (ignored with -sweep)")
	duration := flag.Duration("duration", 10*time.Second, "dispatch window per rate")
	sweep := flag.String("sweep", "", "comma-separated RPS list to sweep for max sustained throughput (e.g. 250,500,1000)")
	mix := flag.String("mix", "", "traffic weights, e.g. query=70,view=25,mutate=5 (default 70/25/5; mutate needs -writer-role)")
	writerRole := flag.String("writer-role", "", "role with write grants on the server (enables the mutate arm)")
	sloLatency := flag.Duration("slo-latency", 100*time.Millisecond, "latency objective at -slo-quantile")
	sloQuantile := flag.Float64("slo-quantile", 0.99, "quantile the latency objective applies to")
	sloAvail := flag.Float64("slo-availability", 0.999, "minimum fraction of non-error responses")
	maxInFlight := flag.Int("max-in-flight", 4096, "concurrent request cap (arrivals past it queue, and the wait is measured)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "arm-selection seed (reproducible schedules)")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file (- for stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "grdf-loadgen")
		return
	}

	cfg := flagConfig{
		target: *target, rps: *rps, duration: *duration, sweep: *sweep,
		mix: *mix, writerRole: *writerRole, sloLatency: *sloLatency,
		sloQuantile: *sloQuantile, sloAvail: *sloAvail,
		maxInFlight: *maxInFlight, timeout: *timeout, seed: *seed,
	}
	if err := validateFlags(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "grdf-loadgen: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	qw, vw, mw, _ := parseMix(*mix)
	arms, err := load.ScenarioArms(load.MixConfig{
		BaseURLs:     parseTargets(*target),
		Client:       load.NewClient(*maxInFlight, *timeout),
		QueryWeight:  qw,
		ViewWeight:   vw,
		MutateWeight: mw,
		WriterRole:   *writerRole,
		Timeout:      *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "grdf-loadgen: %v\n", err)
		os.Exit(2)
	}

	base := load.Config{
		Duration:    *duration,
		Arms:        arms,
		MaxInFlight: *maxInFlight,
		Seed:        *seed,
		SLO: load.SLO{
			Latency:      *sloLatency,
			Quantile:     *sloQuantile,
			Availability: *sloAvail,
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -json - the report owns stdout; the human summary moves to
	// stderr so the JSON stream stays parseable in a pipe.
	human := os.Stdout
	if *jsonOut == "-" {
		human = os.Stderr
	}

	rates, _ := parseSweep(*sweep)
	var report any
	pass := true
	if len(rates) > 0 {
		fmt.Fprintf(os.Stderr, "grdf-loadgen: sweeping %v rps x %s against %s\n",
			rates, duration.String(), *target)
		sw, err := load.Sweep(ctx, base, rates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grdf-loadgen: %v\n", err)
			os.Exit(2)
		}
		for _, step := range sw.Steps {
			printStep(human, step)
		}
		fmt.Fprintf(human, "max sustained: %.0f rps at p%g<=%s avail>=%g (pass=%v)\n",
			sw.MaxSustainedRPS, *sloQuantile*100, sloLatency.String(), *sloAvail, sw.Pass)
		report, pass = sw, sw.Pass
	} else {
		base.RPS = *rps
		fmt.Fprintf(os.Stderr, "grdf-loadgen: %g rps x %s against %s\n",
			*rps, duration.String(), *target)
		res, err := load.Run(ctx, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grdf-loadgen: %v\n", err)
			os.Exit(2)
		}
		rep := res.Report()
		printStep(human, rep)
		report, pass = rep, rep.SLO.Pass
	}

	// Close the loop with the server's own workload lens: its top
	// fingerprints after the run show which query shapes dominated, with
	// server-side quantiles to hold against the client-side ones above.
	printTopFingerprints(human, parseTargets(*target)[0], *timeout)

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "grdf-loadgen: encode report: %v\n", err)
			os.Exit(2)
		}
		raw = append(raw, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(raw)
		} else if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "grdf-loadgen: %v\n", err)
			os.Exit(2)
		}
	}
	if !pass {
		os.Exit(1)
	}
}

// printTopFingerprints fetches the first target's /v1/queries and prints its
// three heaviest query shapes. A server without workload introspection (404)
// or an unreachable one just skips the section — the load report stands on
// its own.
func printTopFingerprints(w *os.File, base string, timeout time.Duration) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/queries?limit=3")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var listing struct {
		Queries []struct {
			Fingerprint string  `json:"fingerprint"`
			Kind        string  `json:"kind"`
			Example     string  `json:"example"`
			Count       uint64  `json:"count"`
			Shed        uint64  `json:"shed"`
			P50Ms       float64 `json:"p50_ms"`
			P99Ms       float64 `json:"p99_ms"`
			DriftBand   string  `json:"drift_band"`
		} `json:"queries"`
		Fingerprints int `json:"fingerprints"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&listing); err != nil ||
		len(listing.Queries) == 0 {
		return
	}
	fmt.Fprintf(w, "server top fingerprints (%d tracked):\n", listing.Fingerprints)
	for _, q := range listing.Queries {
		example := q.Example
		if len(example) > 72 {
			example = example[:69] + "..."
		}
		fmt.Fprintf(w, "  %s %-9s count=%d shed=%d p50=%.2fms p99=%.2fms",
			q.Fingerprint, q.Kind, q.Count, q.Shed, q.P50Ms, q.P99Ms)
		if q.DriftBand != "" {
			fmt.Fprintf(w, " drift=%s", q.DriftBand)
		}
		fmt.Fprintf(w, "\n    %s\n", example)
	}
}

// printStep renders one run's human-readable summary line pair.
func printStep(w *os.File, r load.Report) {
	fmt.Fprintf(w, "rps target=%.0f achieved=%.1f goodput=%.1f requests=%d ok=%d degraded=%d errors=%d shed=%d (%.1f%%)\n",
		r.TargetRPS, r.AchievedRPS, r.GoodputRPS, r.Requests, r.OK, r.Degraded, r.Errors,
		r.Shed, r.ShedRate*100)
	fmt.Fprintf(w, "  corrected p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms\n",
		r.Corrected.P50Ms, r.Corrected.P90Ms, r.Corrected.P99Ms,
		r.Corrected.P999Ms, r.Corrected.MaxMs)
	fmt.Fprintf(w, "  service   p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms\n",
		r.Service.P50Ms, r.Service.P90Ms, r.Service.P99Ms,
		r.Service.P999Ms, r.Service.MaxMs)
	verdict := "PASS"
	if !r.SLO.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "  slo %s: p%g=%.2fms (target %.0fms) availability=%.4f (target %.4f)\n",
		verdict, r.SLO.LatencyQuantile*100, r.SLO.LatencyMs,
		r.SLO.LatencyTargetMs, r.SLO.Availability, r.SLO.AvailabilityTarget)
}
