package main

import (
	"testing"
	"time"
)

func validFlags() flagConfig {
	return flagConfig{
		target: "http://127.0.0.1:8080", rps: 100, duration: 10 * time.Second,
		sloLatency: 100 * time.Millisecond, sloQuantile: 0.99, sloAvail: 0.999,
		maxInFlight: 4096, timeout: 10 * time.Second, seed: 1,
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(validFlags()); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	cases := map[string]func(*flagConfig){
		"empty target":         func(c *flagConfig) { c.target = "" },
		"non-http target":      func(c *flagConfig) { c.target = "127.0.0.1:8080" },
		"zero rps no sweep":    func(c *flagConfig) { c.rps = 0 },
		"bad sweep":            func(c *flagConfig) { c.sweep = "100,banana" },
		"negative sweep":       func(c *flagConfig) { c.sweep = "-5" },
		"zero duration":        func(c *flagConfig) { c.duration = 0 },
		"bad mix entry":        func(c *flagConfig) { c.mix = "query" },
		"unknown mix class":    func(c *flagConfig) { c.mix = "delete=5" },
		"zero-weight mix":      func(c *flagConfig) { c.mix = "query=0,view=0" },
		"mutate without role":  func(c *flagConfig) { c.mix = "query=1,mutate=1" },
		"zero slo latency":     func(c *flagConfig) { c.sloLatency = 0 },
		"slo quantile 1":       func(c *flagConfig) { c.sloQuantile = 1 },
		"slo availability 0":   func(c *flagConfig) { c.sloAvail = 0 },
		"zero max in flight":   func(c *flagConfig) { c.maxInFlight = 0 },
		"zero request timeout": func(c *flagConfig) { c.timeout = 0 },
	}
	for name, mutate := range cases {
		c := validFlags()
		mutate(&c)
		if err := validateFlags(c); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}

	// Valid variants.
	ok := validFlags()
	ok.rps = 0
	ok.sweep = "250, 500,1000"
	if err := validateFlags(ok); err != nil {
		t.Errorf("sweep without rps rejected: %v", err)
	}
	ok = validFlags()
	ok.mix = "query=70,view=25,mutate=5"
	ok.writerRole = "Writer"
	if err := validateFlags(ok); err != nil {
		t.Errorf("full mix with writer rejected: %v", err)
	}
}

func TestParseSweep(t *testing.T) {
	rates, err := parseSweep(" 250,500 , 1000 ")
	if err != nil || len(rates) != 3 || rates[0] != 250 || rates[2] != 1000 {
		t.Fatalf("parseSweep = %v, %v", rates, err)
	}
	if rates, err := parseSweep(""); err != nil || rates != nil {
		t.Fatalf("empty sweep = %v, %v", rates, err)
	}
	if _, err := parseSweep("0"); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestParseMix(t *testing.T) {
	q, v, m, err := parseMix("query=70, view=25, mutate=5")
	if err != nil || q != 70 || v != 25 || m != 5 {
		t.Fatalf("parseMix = %d/%d/%d, %v", q, v, m, err)
	}
	q, v, m, err = parseMix("")
	if err != nil || q != 0 || v != 0 || m != 0 {
		t.Fatalf("empty mix = %d/%d/%d, %v", q, v, m, err)
	}
	if _, _, _, err := parseMix("query=-1"); err == nil {
		t.Fatal("negative weight accepted")
	}
}
