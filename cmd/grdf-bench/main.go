// Command grdf-bench regenerates every experiment table of the reproduction
// (E1–E21, see DESIGN.md and EXPERIMENTS.md).
//
// With -json DIR it additionally writes one machine-readable BENCH_<id>.json
// per experiment — the table cells, the wall time, and a snapshot of the
// shared obs metrics registry — so successive PRs can diff performance
// numerically instead of eyeballing rendered tables.
//
// Usage:
//
//	grdf-bench                 # run everything
//	grdf-bench -only E5,E6     # selected experiments
//	grdf-bench -sites 10,50    # override dataset sizes for E6/E9/E10
//	grdf-bench -requests 200   # workload size for E8 (cache) and E14 (federation)
//	grdf-bench -json out/      # also write out/BENCH_<id>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// benchRuntime pins the machine context a BENCH file was produced on, so a
// numeric regression can be told apart from a hardware change.
type benchRuntime struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func readBenchRuntime() benchRuntime {
	return benchRuntime{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// benchResult is the machine-readable per-experiment record.
type benchResult struct {
	Experiment *experiments.Table `json:"experiment"`
	Seconds    float64            `json:"seconds"`
	Runtime    benchRuntime       `json:"runtime"`
	Metrics    []obs.Metric       `json:"metrics,omitempty"`
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E5,E6); empty runs all")
	sites := flag.String("sites", "", "comma-separated dataset sizes for E6/E9/E10")
	requests := flag.Int("requests", 0, "workload size for E8 (cache requests), E14 (federation requests) and E15 (WAL records)")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_<id>.json output")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "grdf-bench")
		return
	}

	var sizes []int
	if *sites != "" {
		for _, part := range strings.Split(*sites, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "grdf-bench: bad -sites value %q\n", part)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	runners := []struct {
		id  string
		run func() *experiments.Table
	}{
		{"E1", experiments.E1Ontology},
		{"E2", experiments.E2Listings},
		{"E3", experiments.E3Topology},
		{"E4", experiments.E4GMLRoundTrip},
		{"E5", experiments.E5ScenarioViews},
		{"E6", func() *experiments.Table { return experiments.E6FineVsCoarse(sizes) }},
		{"E7", experiments.E7MergeEnforcement},
		{"E8", func() *experiments.Table { return experiments.E8QueryCache(*requests) }},
		{"E9", func() *experiments.Table { return experiments.E9Reasoning(sizes) }},
		{"E10", func() *experiments.Table { return experiments.E10StoreSparql(sizes) }},
		{"E11", experiments.E11Alignment},
		{"E12", experiments.E12PolicyConflicts},
		{"E13", func() *experiments.Table { return experiments.E13Planner(sizes) }},
		{"E14", func() *experiments.Table { return experiments.E14Federation(*requests) }},
		{"E15", func() *experiments.Table { return experiments.E15Durability(*requests) }},
		{"E16", func() *experiments.Table { return experiments.E16Tracing(*requests) }},
		{"E17", func() *experiments.Table { return experiments.E17Load(*requests) }},
		{"E18", func() *experiments.Table { return experiments.E18GroupCommit(*requests) }},
		{"E19", func() *experiments.Table { return experiments.E19Replication(*requests) }},
		{"E20", func() *experiments.Table { return experiments.E20Admission(*requests) }},
		{"E21", func() *experiments.Table { return experiments.E21Workload(*requests) }},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range selected {
			found := false
			for _, r := range runners {
				if r.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "grdf-bench: unknown experiment %s\n", id)
				os.Exit(2)
			}
		}
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "grdf-bench: %v\n", err)
			os.Exit(1)
		}
	}

	// One registry across every experiment run: each BENCH_*.json carries
	// the harness timing histogram as it stood when that experiment
	// finished, and the last file reflects the whole session.
	reg := obs.NewRegistry()
	buildinfo.Register(reg)
	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		start := time.Now()
		table := r.run()
		elapsed := time.Since(start)
		reg.Histogram("grdf_bench_experiment_seconds",
			"Wall time per experiment run.", nil, "experiment", r.id).
			Observe(elapsed.Seconds())
		table.Render(os.Stdout)

		if *jsonDir == "" {
			continue
		}
		out := benchResult{Experiment: table, Seconds: elapsed.Seconds(), Runtime: readBenchRuntime(), Metrics: reg.Snapshot()}
		path := filepath.Join(*jsonDir, "BENCH_"+r.id+".json")
		if err := writeJSON(path, out); err != nil {
			fmt.Fprintf(os.Stderr, "grdf-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "grdf-bench: wrote %s (%.3fs)\n", path, elapsed.Seconds())
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
