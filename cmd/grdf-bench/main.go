// Command grdf-bench regenerates every experiment table of the reproduction
// (E1–E11, see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	grdf-bench                 # run everything
//	grdf-bench -only E5,E6     # selected experiments
//	grdf-bench -sites 10,50    # override dataset sizes for E6/E9/E10
//	grdf-bench -requests 200   # cache workload size for E8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E5,E6); empty runs all")
	sites := flag.String("sites", "", "comma-separated dataset sizes for E6/E9/E10")
	requests := flag.Int("requests", 0, "request count for the E8 cache workload")
	flag.Parse()

	var sizes []int
	if *sites != "" {
		for _, part := range strings.Split(*sites, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "grdf-bench: bad -sites value %q\n", part)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	runners := []struct {
		id  string
		run func() *experiments.Table
	}{
		{"E1", experiments.E1Ontology},
		{"E2", experiments.E2Listings},
		{"E3", experiments.E3Topology},
		{"E4", experiments.E4GMLRoundTrip},
		{"E5", experiments.E5ScenarioViews},
		{"E6", func() *experiments.Table { return experiments.E6FineVsCoarse(sizes) }},
		{"E7", experiments.E7MergeEnforcement},
		{"E8", func() *experiments.Table { return experiments.E8QueryCache(*requests) }},
		{"E9", func() *experiments.Table { return experiments.E9Reasoning(sizes) }},
		{"E10", func() *experiments.Table { return experiments.E10StoreSparql(sizes) }},
		{"E11", experiments.E11Alignment},
		{"E12", experiments.E12PolicyConflicts},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range selected {
			found := false
			for _, r := range runners {
				if r.id == id {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "grdf-bench: unknown experiment %s\n", id)
				os.Exit(2)
			}
		}
	}

	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		r.run().Render(os.Stdout)
	}
}
