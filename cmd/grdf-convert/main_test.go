package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testGML = `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
  <gml:featureMember>
    <app:ChemSite gml:id="demo">
      <app:hasSiteName>Demo Plant</app:hasSiteName>
      <gml:boundedBy>
        <gml:Envelope srsName="http://grdf.org/crs/TX83-NCF">
          <gml:lowerCorner>0 0</gml:lowerCorner>
          <gml:upperCorner>100 100</gml:upperCorner>
        </gml:Envelope>
      </gml:boundedBy>
    </app:ChemSite>
  </gml:featureMember>
</gml:FeatureCollection>`

func convert(t *testing.T, doc, from, to string) string {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "in")
	out := filepath.Join(dir, "out")
	if err := os.WriteFile(in, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(from, to, in, out, "http://grdf.org/app#"); err != nil {
		t.Fatalf("run(%s->%s): %v", from, to, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestConvertGMLToEveryFormat(t *testing.T) {
	for _, to := range []string{"turtle", "rdfxml", "ntriples"} {
		out := convert(t, testGML, "gml", to)
		if !strings.Contains(out, "Demo Plant") {
			t.Errorf("gml->%s lost data:\n%s", to, out)
		}
	}
}

func TestConvertFullCycle(t *testing.T) {
	ttl := convert(t, testGML, "gml", "turtle")
	backGML := convert(t, ttl, "turtle", "gml")
	if !strings.Contains(backGML, "Demo Plant") || !strings.Contains(backGML, "lowerCorner") {
		t.Errorf("cycle lost data:\n%s", backGML)
	}
	nt := convert(t, ttl, "turtle", "ntriples")
	rdfxml := convert(t, nt, "ntriples", "rdfxml")
	if !strings.Contains(rdfxml, "Demo Plant") {
		t.Errorf("nt->rdfxml lost data:\n%s", rdfxml)
	}
}

func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in")
	os.WriteFile(in, []byte("not xml"), 0o644)
	if err := run("gml", "turtle", in, filepath.Join(dir, "o"), ""); err == nil {
		t.Error("bad input accepted")
	}
	if err := run("wat", "turtle", in, filepath.Join(dir, "o"), ""); err == nil {
		t.Error("unknown input format accepted")
	}
	os.WriteFile(in, []byte(testGML), 0o644)
	if err := run("gml", "wat", in, filepath.Join(dir, "o"), ""); err == nil {
		t.Error("unknown output format accepted")
	}
	if err := run("gml", "turtle", filepath.Join(dir, "missing"), filepath.Join(dir, "o"), ""); err == nil {
		t.Error("missing input accepted")
	}
}
