// Command grdf-convert translates between GML and GRDF serializations — the
// paper's interoperability story made into a tool.
//
// Usage:
//
//	grdf-convert -from gml -to turtle  < data.gml  > data.ttl
//	grdf-convert -from turtle -to gml  < data.ttl  > data.gml
//	grdf-convert -from rdfxml -to ntriples -in data.rdf -out data.nt
//
// Formats: gml, turtle, rdfxml, ntriples.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/gml"
	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/store"
	"repro/internal/turtle"
)

func main() {
	from := flag.String("from", "gml", "input format: gml, turtle, rdfxml, ntriples")
	to := flag.String("to", "turtle", "output format: gml, turtle, rdfxml, ntriples")
	in := flag.String("in", "-", "input file ('-' = stdin)")
	out := flag.String("out", "-", "output file ('-' = stdout)")
	ns := flag.String("ns", rdf.AppNS, "namespace for feature IRIs minted from GML ids")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "grdf-convert")
		return
	}

	if err := run(*from, *to, *in, *out, *ns); err != nil {
		fmt.Fprintf(os.Stderr, "grdf-convert: %v\n", err)
		os.Exit(1)
	}
}

func run(from, to, in, out, ns string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	// Load everything into a triple store; GML goes through the converter.
	st := store.New()
	switch from {
	case "gml":
		col, err := gml.Parse(r)
		if err != nil {
			return err
		}
		if _, err := gml.ToGRDF(st, col, ns); err != nil {
			return err
		}
	case "turtle":
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		g, err := turtle.ParseString(string(data))
		if err != nil {
			return err
		}
		st.AddGraph(g)
	case "rdfxml":
		g, err := rdfxml.Parse(r)
		if err != nil {
			return err
		}
		st.AddGraph(g)
	case "ntriples":
		g, err := ntriples.NewReader(r).ReadAll()
		if err != nil {
			return err
		}
		st.AddGraph(g)
	default:
		return fmt.Errorf("unknown input format %q", from)
	}

	switch to {
	case "gml":
		col, err := gml.FromGRDF(st, "")
		if err != nil {
			return err
		}
		return gml.Write(w, col)
	case "turtle":
		return turtle.Write(w, st.Graph(), nil)
	case "rdfxml":
		return rdfxml.Write(w, st.Graph(), nil)
	case "ntriples":
		return ntriples.Write(w, st.Graph())
	default:
		return fmt.Errorf("unknown output format %q", to)
	}
}
