package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sparql"
	"repro/internal/store"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testTTL = `
@prefix app: <http://grdf.org/app#> .
app:s1 a app:ChemSite ;
    app:hasSiteName "Plant A" ;
    grdf:hasGeometry app:s1geom .
app:s1geom a grdf:Point ;
    grdf:coordinates "5,5" .
`

func TestRunQueryOverTurtle(t *testing.T) {
	f := writeFile(t, "d.ttl", testTTL)
	if err := run([]string{f}, `SELECT ?n WHERE { ?s app:hasSiteName ?n }`, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithReasoningAndValidation(t *testing.T) {
	f := writeFile(t, "d.ttl", testTTL)
	if err := run([]string{f}, `SELECT ?f WHERE { ?f a grdf:Feature }`, true, true); err != nil {
		t.Fatalf("run with -reason -validate: %v", err)
	}
}

func TestRunValidationFailure(t *testing.T) {
	bad := writeFile(t, "bad.ttl", `
@prefix app: <http://grdf.org/app#> .
app:g a grdf:LineString ; grdf:coordinates "garbage" .
`)
	if err := run([]string{bad}, `ASK {}`, false, true); err == nil {
		t.Error("validation failure not propagated")
	}
}

func TestRunErrors(t *testing.T) {
	f := writeFile(t, "d.ttl", testTTL)
	if err := run([]string{f}, "NOT SPARQL", false, false); err == nil {
		t.Error("bad query accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.ttl")}, "ASK {}", false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, "d.unknown", "x")
	if err := run([]string{bad}, "ASK {}", false, false); err == nil {
		t.Error("unknown extension accepted")
	}
	if err := run([]string{f}, "   ", false, false); err == nil {
		t.Error("empty query accepted")
	}
}

func TestLoadQuadsFile(t *testing.T) {
	nq := writeFile(t, "d.nq", `<http://e/s> <http://e/p> "x" <http://g/one> .`)
	ds := store.NewDataset()
	if err := loadFile(ds, nq); err != nil {
		t.Fatal(err)
	}
	if len(ds.GraphNames()) != 1 {
		t.Errorf("graphs = %v", ds.GraphNames())
	}
}

func TestPrintResultForms(t *testing.T) {
	f := writeFile(t, "d.ttl", testTTL)
	var sb strings.Builder
	ds := store.NewDataset()
	if err := loadFile(ds, f); err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewDatasetEngine(ds)
	for _, q := range []string{
		`ASK { ?s app:hasSiteName ?n }`,
		`CONSTRUCT { ?s a app:Named } WHERE { ?s app:hasSiteName ?n }`,
		`DESCRIBE <http://grdf.org/app#s1>`,
		`SELECT ?n WHERE { ?s app:hasSiteName ?n }`,
	} {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := printResult(&sb, res); err != nil {
			t.Fatalf("printResult(%s): %v", q, err)
		}
	}
	out := sb.String()
	for _, want := range []string{"true", "app:Named", "Plant A", "(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
