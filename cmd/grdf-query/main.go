// Command grdf-query runs SPARQL queries (with the grdf: spatial filter
// functions) over GRDF data files.
//
// Usage:
//
//	grdf-query -data hydro.ttl -data chem.ttl -q 'SELECT ?s WHERE { ?s a app:ChemSite }'
//	grdf-query -data world.ttl -reason -q 'SELECT ?f WHERE { ?f a grdf:Feature }'
//	echo 'ASK { ... }' | grdf-query -data world.ttl
//
// Data formats are inferred from the extension: .ttl, .rdf/.xml, .nt.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/grdf"
	"repro/internal/ntriples"
	"repro/internal/owl"
	"repro/internal/rdfxml"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

type dataFiles []string

func (d *dataFiles) String() string     { return strings.Join(*d, ",") }
func (d *dataFiles) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var files dataFiles
	flag.Var(&files, "data", "data file (.ttl/.rdf/.xml/.nt); repeatable")
	query := flag.String("q", "", "SPARQL query; when empty the query is read from stdin")
	reason := flag.Bool("reason", false, "materialize OWL inferences (loads the GRDF ontology) before querying")
	validate := flag.Bool("validate", false, "validate the data against the GRDF ontology before querying")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "grdf-query")
		return
	}

	if err := run(files, *query, *reason, *validate); err != nil {
		fmt.Fprintf(os.Stderr, "grdf-query: %v\n", err)
		os.Exit(1)
	}
}

func run(files []string, query string, reason, validate bool) error {
	ds := store.NewDataset()
	st := ds.Default()
	for _, f := range files {
		if err := loadFile(ds, f); err != nil {
			return err
		}
	}
	if validate {
		rep := grdf.Validate(st)
		for _, issue := range rep.Issues {
			fmt.Fprintf(os.Stderr, "validate: %s\n", issue)
		}
		fmt.Fprintf(os.Stderr, "validate: %d geometries checked, %d errors\n",
			rep.Checked, len(rep.Errors()))
		if !rep.Valid() {
			return fmt.Errorf("validation failed")
		}
	}
	if query == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" {
		return fmt.Errorf("no query given (use -q or stdin)")
	}

	if reason {
		st.AddGraph(grdf.Ontology())
		materialized, stats := owl.Materialize(st)
		fmt.Fprintf(os.Stderr, "reasoning: %d asserted, %d inferred\n",
			stats.Asserted, stats.Inferred)
		st = materialized
	}

	// Dataset-backed engine so GRAPH patterns over .nq named graphs work;
	// spatial filters resolve against the union of all graphs.
	eng := sparql.NewDatasetEngine(ds)
	if reason {
		eng = sparql.NewEngine(st)
	}
	grdf.RegisterSpatialFuncs(eng, ds.Union())
	res, err := eng.Query(query)
	if err != nil {
		return err
	}
	return printResult(os.Stdout, res)
}

func loadFile(ds *store.Dataset, path string) error {
	st := ds.Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch ext := filepath.Ext(path); ext {
	case ".nq":
		sub, err := ntriples.ParseQuadsString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		st.AddAll(sub.Default().Triples())
		for _, name := range sub.GraphNames() {
			src, _ := sub.Graph(name, false)
			dst, _ := ds.Graph(name, true)
			dst.AddAll(src.Triples())
		}
		return nil
	case ".ttl":
		g, err := turtle.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		st.AddGraph(g)
	case ".rdf", ".xml", ".owl":
		g, err := rdfxml.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		st.AddGraph(g)
	case ".nt":
		g, err := ntriples.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		st.AddGraph(g)
	default:
		return fmt.Errorf("%s: unknown extension %q", path, ext)
	}
	return nil
}

func printResult(w io.Writer, res *sparql.Result) error {
	switch res.Kind {
	case sparql.Ask:
		_, err := fmt.Fprintf(w, "%t\n", res.Bool)
		return err
	case sparql.Construct, sparql.Describe:
		return turtle.Write(w, res.Graph, nil)
	default:
		header := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			header[i] = "?" + string(v)
		}
		fmt.Fprintln(w, strings.Join(header, "\t"))
		for _, b := range res.Bindings {
			cells := make([]string, len(res.Vars))
			for i, v := range res.Vars {
				if t, ok := b[v]; ok {
					cells[i] = t.String()
				}
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(w, "(%d rows)\n", len(res.Bindings))
		return nil
	}
}
